#!/usr/bin/env python
"""Quickstart: analyze one routine measurement with the MLP recipe.

This is the paper's core workflow in ~20 lines:

1. pick a machine model (paper Table III),
2. feed the routine's *observed bandwidth* (from CrayPat / perf / your
   own counters) and its access-pattern evidence,
3. read back the Little's-law metrics and the Figure-1 guidance.

Run:  python examples/quickstart.py
"""

from repro.core import RoutineAnalyzer
from repro.machines import get_machine


def main() -> None:
    machine = get_machine("knl")
    analyzer = RoutineAnalyzer(machine)

    # ISx's count_local_keys, as measured in paper Table IV: 233 GB/s on
    # a loaded 64-core KNL run; random accesses (the L2 hardware
    # prefetcher covers almost none of the traffic).
    report = analyzer.analyze_bandwidth_gbs(
        233.0,
        routine="count_local_keys",
        prefetch_fraction=0.05,
    )
    print(report.render())
    print()

    # The recipe points at L2 software prefetching.  Paper Table IV
    # confirms: +40% on KNL.  After applying it, re-measure and re-run:
    from repro.core import OptimizationKind, RecipeContext

    optimized = analyzer.analyze_bandwidth_gbs(
        344.0,
        routine="count_local_keys (+l2-pref)",
        prefetch_fraction=0.05,
        context=RecipeContext(
            applied=frozenset({OptimizationKind.SW_PREFETCH_L2}),
            binding_level_override=2,  # the prefetch shifted the queue
        ),
    )
    print(optimized.render())


if __name__ == "__main__":
    main()
