#!/usr/bin/env python
"""The intro case study: TMA's murky guidance vs the MLP metric on SNAP.

Runs the SNAP dim3_sweep trace through the simulator, then analyzes the
same run with both tools:

* TMA (the VTune-style baseline): splits memory-bound time into
  bandwidth/latency buckets by memory-controller occupancy and derives
  an average latency — both of which mislead exactly the way the paper
  documents (27%/23% split; "9 cycles" latency);
* the MLP recipe: one number (n_avg vs the binding MSHR file) with
  named next steps.

Also demonstrates the misleading PEBS-style load-latency counter on
streaming (hpcg-like) vs random (ISx-like) runs.

Run:  python examples/tma_vs_mlp.py
"""

from repro.experiments import (
    reproduce_intro_snap,
    reproduce_latency_counter_demo,
)


def main() -> None:
    intro = reproduce_intro_snap()
    print(intro.render())
    print()
    print(
        f"TMA verdict: {intro.tma_bandwidth_bound:.0%} bandwidth-bound vs "
        f"{intro.tma_latency_bound:.0%} latency-bound - "
        f"{'unclear' if intro.tma_guidance_is_unclear else 'clear'} guidance"
    )
    print(
        f"MLP verdict: actionable={intro.mlp_guidance_is_actionable} "
        "(names prefetch/SMT with MSHR headroom to spare)"
    )
    print()
    print(reproduce_latency_counter_demo().render())


if __name__ == "__main__":
    main()
