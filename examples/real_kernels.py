#!/usr/bin/env python
"""Run the executable mini-apps: real kernels, verified, then analyzed.

Each of the six paper applications is *implemented* at reduced scale in
``repro.apps``. This example runs every kernel, checks its numerical
result, feeds its actual address stream through the simulator, and
lets the analyzer classify it — real data structures driving the whole
pipeline, no synthetic access statistics anywhere.

Run:  python examples/real_kernels.py
"""

from repro.apps import (
    ComdApp,
    DgemmApp,
    HpcgApp,
    IsxApp,
    MinighostApp,
    PennantApp,
    SnapApp,
)
from repro.core import RoutineAnalyzer
from repro.machines import get_machine
from repro.sim import SimConfig, run_trace


def main() -> None:
    skl = get_machine("skl")
    analyzer = RoutineAnalyzer(skl)

    apps = [
        (IsxApp(keys_per_thread=2000), {}),
        (HpcgApp(n=8), {"max_rows": 300}),
        (PennantApp(), {"max_corners": 3500}),
        (ComdApp(particles=400), {}),
        (MinighostApp(), {"max_cells": 400}),
        (SnapApp(), {"max_cells": 120}),
        (DgemmApp(), {}),  # the paper's unroll-and-jam illustration
    ]
    for app, kwargs in apps:
        name = type(app).__name__.replace("App", "")
        verified = app.verify()
        trace = app.extract_trace(skl, **kwargs)
        stats = run_trace(
            trace, SimConfig(machine=skl, sim_cores=2, window_per_core=14)
        )
        report = analyzer.analyze_run(stats)
        print(f"=== {name}: kernel verified = {verified} ===")
        print(
            f"  simulated: {trace.total_accesses} accesses, "
            f"prefetch coverage {stats.memory.prefetch_fraction:.0%}, "
            f"L1/L2 MSHR occupancy {stats.avg_occupancy(1):.2f}/"
            f"{stats.avg_occupancy(2):.2f}"
        )
        print(f"  classified: {report.classification.pattern.value}, "
              f"binding L{report.decision.binding_level}, "
              f"n_avg {report.mlp.n_avg:.2f}")
        top = report.decision.top_recommendation()
        if top is not None:
            print(f"  recipe: try {top.info.name} ({top.benefit.name.lower()})")
        else:
            print("  recipe: stop")
        print()


if __name__ == "__main__":
    main()
