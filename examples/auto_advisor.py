#!/usr/bin/env python
"""The Figure-1 loop, fully automated, across all 18 case studies.

The paper applies its recipe by hand, one optimization per
measurement.  :class:`repro.core.Advisor` runs that loop to
convergence: predict the operating point, take the recipe's best
realizable recommendation, keep it if it pays, repeat until the recipe
says stop.  The trajectories it discovers match the paper's tables —
including knowing when to stop (ISx/SKL immediately; PENNANT/KNL before
4-way SMT) and finding the L2-prefetch unlock on ISx without trying
vectorization first.

Also shows the §III-H GPU advisor on three kernel archetypes.

Run:  python examples/auto_advisor.py
"""

from repro.core import Advisor
from repro.gpu import GpuAdvisor, KernelDescriptor, a100_like
from repro.machines import paper_machines
from repro.workloads import ALL_WORKLOADS


def main() -> None:
    print("=== CPU: automated recipe trajectories ===\n")
    for workload in ALL_WORKLOADS:
        for machine in paper_machines():
            result = Advisor(workload, machine).run()
            print(result.render())
        print()

    print("=== GPU: Section III-H occupancy guidance ===\n")
    advisor = GpuAdvisor(a100_like())
    kernels = [
        KernelDescriptor(
            name="register-hog (low occupancy)",
            threads_per_block=256,
            registers_per_thread=128,
            shared_mem_per_block_bytes=0,
            mlp_per_warp=2.0,
        ),
        KernelDescriptor(
            name="streaming copy (MSHRs full)",
            threads_per_block=256,
            registers_per_thread=32,
            shared_mem_per_block_bytes=0,
            mlp_per_warp=4.0,
        ),
        KernelDescriptor(
            name="scattered gather (uncoalesced)",
            threads_per_block=128,
            registers_per_thread=40,
            shared_mem_per_block_bytes=8 * 1024,
            mlp_per_warp=2.0,
            coalescing=0.25,
        ),
    ]
    for kernel in kernels:
        print(advisor.analyze(kernel).render())
        print()


if __name__ == "__main__":
    main()
