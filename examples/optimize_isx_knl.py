#!/usr/bin/env python
"""The full closed loop on ISx/KNL: measure → recipe → apply → confirm.

This example never consults the paper's numbers.  It drives the ISx
trace through the cache/MSHR simulator (the counter substrate), derives
MLP through a *measured* X-Mem profile, follows the Figure-1 recipe to
the L2-software-prefetch recommendation, applies the transform to the
trace, and re-simulates to confirm the speedup and the L1→L2 MSHR
bottleneck migration the paper validated on a cycle-level simulator.

Run:  python examples/optimize_isx_knl.py
"""

from repro.core import OptimizationKind, RecipeContext, RoutineAnalyzer
from repro.machines import get_machine
from repro.sim import SimConfig, run_trace
from repro.workloads import get_workload
from repro.workloads.base import TraceSpec
from repro.xmem import XMemConfig, characterize_machine


def main() -> None:
    knl = get_machine("knl")
    workload = get_workload("isx")
    spec = TraceSpec(threads=2, accesses_per_thread=4000)

    def simulate(steps=()):
        trace = workload.generate_trace(knl, steps=steps, spec=spec)
        cfg = SimConfig(machine=knl, sim_cores=2, window_per_core=14)
        return run_trace(trace, cfg)

    print("== step 1: characterize KNL (once per machine) ==")
    profile = characterize_machine(
        knl, XMemConfig(levels=8, accesses_per_thread=2000)
    )
    print(
        f"profile: idle {profile.idle_latency_ns:.0f} ns, "
        f"max {profile.max_measured_bw_bytes / 1e9:.0f} GB/s\n"
    )

    print("== step 2: run base ISx and analyze ==")
    base = simulate()
    analyzer = RoutineAnalyzer(knl, profile)
    report = analyzer.analyze_run(base)
    print(report.render())
    print(
        f"\nsimulator ground truth: L1 MSHRQ full {base.mshr_full_fraction(1):.0%} "
        f"of the time; L1 occ {base.avg_occupancy(1):.1f}, "
        f"L2 occ {base.avg_occupancy(2):.1f}\n"
    )

    top = report.decision.top_recommendation()
    assert top is not None and top.kind is OptimizationKind.SW_PREFETCH_L2, (
        "recipe should recommend the L2 software-prefetch shift"
    )
    print(f"== step 3: apply the recommendation ({top.info.name}) ==\n")

    optimized = simulate(steps=("l2_prefetch",))
    speedup = base.elapsed_ns / optimized.elapsed_ns
    print(
        f"speedup: {speedup:.2f}x "
        f"(paper Table IV measured 1.4x on real KNL hardware)"
    )
    print(
        f"L1 MSHRQ full: {base.mshr_full_fraction(1):.0%} -> "
        f"{optimized.mshr_full_fraction(1):.0%}"
    )
    print(
        f"L2 occupancy:  {base.avg_occupancy(2):.1f} -> "
        f"{optimized.avg_occupancy(2):.1f} "
        "(the bottleneck migrated to the larger L2 MSHR file)"
    )

    print("\n== step 4: re-analyze the optimized code ==")
    ctx = RecipeContext(applied=frozenset({OptimizationKind.SW_PREFETCH_L2}))
    report2 = analyzer.analyze_run(optimized, context=ctx)
    print(report2.render())


if __name__ == "__main__":
    main()
