#!/usr/bin/env python
"""Using the library on *your* measurements (no simulator involved).

Shows the adoption path for real systems:

1. paste ``perf stat``-style counter output (or a CSV export from any
   profiler) into the ingestion layer,
2. get per-routine MLP analyses and recipe guidance back,
3. print the machine's headroom map — the Figure-1 flowchart as a
   lookup table — so you can see where your routines sit at a glance.

Run:  python examples/ingest_measurements.py
"""

from repro.core import headroom_map, render_headroom_map
from repro.io import analyze_measurements, from_csv, from_perf_output
from repro.machines import get_machine

#: A CrayPat/likwid-style per-routine CSV export (the paper's Table IV/V
#: base measurements, as a user would record them).
CSV_EXPORT = """\
routine,bandwidth_gbs,prefetch_fraction
count_local_keys,106.9,0.05
ComputeSPMV_ref,109.9,0.80
dim3_sweep,58.2,0.45
"""

#: Raw `perf stat` output for one routine on SKL (1.35 s run).
PERF_OUTPUT = """
 Performance counter stats for './pennant leblanc.pnt':

     799,407,104      OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL
      42,105,000      OFFCORE_RESPONSE_1:PF_ANY:L3_MISS_LOCAL
  94,382,227,192      INST_RETIRED.ANY
"""


def main() -> None:
    skl = get_machine("skl")

    print("=== per-routine CSV ingestion ===\n")
    for report in analyze_measurements(skl, from_csv(CSV_EXPORT)):
        print(report.render())
        print()

    print("=== raw perf-output ingestion ===\n")
    measurement = from_perf_output(
        PERF_OUTPUT, skl, elapsed_seconds=1.35, routine="setCornerDiv"
    )
    print(
        f"parsed: {measurement.bandwidth_bytes / 1e9:.1f} GB/s, "
        f"prefetch fraction {measurement.prefetch_fraction:.0%}\n"
    )
    for report in analyze_measurements(skl, [measurement]):
        print(report.render())

    print("\n=== where routines sit: the recipe verdict map ===\n")
    print(render_headroom_map(headroom_map(skl)))


if __name__ == "__main__":
    main()
