#!/usr/bin/env python
"""Paper Figure 2: why the classic roofline misleads on ISx/KNL.

Draws (as ASCII) the KNL roofline with the paper's extra L1-MSHR
ceiling, places the base and optimized ISx points, and prints the
argument: the classic model promises big SMT headroom, the MSHR ceiling
says the core is already pinned — and L2 software prefetching is what
actually breaks through.

Run:  python examples/roofline_vs_recipe.py
"""

import math

from repro.experiments import reproduce_figure2


def ascii_roofline(fig2, width: int = 64, height: int = 18) -> str:
    """Log-log sketch of the classic roof, the ceiling, and the points."""
    xs = [x for x, _, _ in fig2.series]
    lo_x, hi_x = math.log10(min(xs)), math.log10(max(xs))
    ys = [c for _, c, _ in fig2.series] + [
        fig2.point_base.performance_gflops,
        fig2.point_optimized.performance_gflops,
    ]
    lo_y, hi_y = math.log10(min(ys) / 2), math.log10(max(ys) * 2)

    def col(x):
        return int((math.log10(x) - lo_x) / (hi_x - lo_x) * (width - 1))

    def row(y):
        return height - 1 - int(
            (math.log10(y) - lo_y) / (hi_y - lo_y) * (height - 1)
        )

    grid = [[" "] * width for _ in range(height)]
    for x, classic, extended in fig2.series:
        grid[row(classic)][col(x)] = "-"
        if extended < classic:
            grid[row(extended)][col(x)] = "."
    for label, point in (("O", fig2.point_base), ("1", fig2.point_optimized)):
        grid[row(point.performance_gflops)][col(point.intensity_flops_per_byte)] = label
    lines = ["".join(r) for r in grid]
    lines.append("-" * width)
    lines.append(
        "x: arithmetic intensity (log)   '-' classic roofline   "
        "'.' L1-MSHR ceiling   O base   1 optimized"
    )
    return "\n".join(lines)


def main() -> None:
    fig2 = reproduce_figure2()
    print(fig2.render())
    print()
    print(ascii_roofline(fig2))
    print()
    headroom = fig2.extended.roofline.headroom(fig2.point_base)
    print(
        f"classic roofline headroom for the base point: {headroom:.1f}x "
        "(misleading - 4-way SMT actually degrades performance)"
    )
    print(
        "the MSHR ceiling explains the stall and names the fix: "
        "move outstanding requests to the L2 MSHR file"
    )


if __name__ == "__main__":
    main()
