#!/usr/bin/env python
"""Characterize machines with the X-Mem substitute (paper Section IV).

The paper's method needs one artifact per machine, measured once: the
loaded-latency profile (observed memory latency at many bandwidth
levels).  This example sweeps load levels on each simulated machine,
prints the profile, and saves it as JSON for reuse — mirroring the
"computed once per processor" footnote.

Run:  python examples/characterize_machine.py [outdir]
"""

import sys
from pathlib import Path

from repro.machines import paper_machines
from repro.xmem import XMemConfig, characterize_machine


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("profiles")
    outdir.mkdir(exist_ok=True)

    for machine in paper_machines():
        print(f"characterizing {machine.describe()}")
        profile = characterize_machine(
            machine, XMemConfig(levels=10, accesses_per_thread=2500)
        )
        print(f"  {'bandwidth':>12s}  {'loaded latency':>15s}")
        for point in profile.points:
            print(
                f"  {point.bandwidth_gbs:9.1f} GB/s  {point.latency_ns:11.1f} ns"
            )
        knee = profile.latency_at(profile.max_measured_bw_bytes)
        print(
            f"  idle {profile.idle_latency_ns:.0f} ns -> saturated {knee:.0f} ns "
            f"({knee / profile.idle_latency_ns:.1f}x, "
            "the paper's '2x or more' loaded-latency effect)"
        )
        path = outdir / f"{machine.name}_profile.json"
        profile.save(path)
        print(f"  saved {path}\n")


if __name__ == "__main__":
    main()
