"""Setup shim for environments without the ``wheel`` package.

The offline test environment lacks ``wheel``, so PEP 660 editable
installs (``pip install -e .``) cannot build. ``python setup.py develop``
(or ``pip install -e . --no-build-isolation --no-use-pep517``) works with
this shim; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
