"""Executable HPCG SpMV: a real 27-point matrix, verified, traced.

Builds the actual sparse matrix HPCG uses — the 27-point finite-
difference operator on an ``n³`` grid, in CSR — runs ``ComputeSPMV_ref``
(the row-loop kernel), verifies it against a dense/numpy computation,
and extracts the kernel's real address stream: streaming reads of
``values``/``col_idx``, the gather ``x[col]`` using the *actual* column
indices (whose 27-neighbor locality is what makes HPCG
prefetcher-friendly), and the ``y[row]`` store stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..sim.trace import Trace
from .common import AddressSpace, TraceRecorder, build_trace, partition


def build_27pt_csr(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR (row_ptr, col_idx, values) of the 27-point operator on n³."""
    if n < 2:
        raise ConfigurationError("grid must be at least 2^3")
    row_ptr = [0]
    col_idx = []
    values = []
    for z in range(n):
        for y in range(n):
            for x in range(n):
                for dz in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dx in (-1, 0, 1):
                            xx, yy, zz = x + dx, y + dy, z + dz
                            if 0 <= xx < n and 0 <= yy < n and 0 <= zz < n:
                                col = (zz * n + yy) * n + xx
                                col_idx.append(col)
                                values.append(
                                    26.0 if (dx, dy, dz) == (0, 0, 0) else -1.0
                                )
                row_ptr.append(len(col_idx))
    return (
        np.asarray(row_ptr, dtype=np.int64),
        np.asarray(col_idx, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
    )


@dataclass
class HpcgApp:
    """Reduced-scale HPCG: the SpMV kernel on the real 27-point matrix."""

    n: int = 8  # grid edge (paper: 40)
    threads: int = 2
    seed: int = 7

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ConfigurationError("threads must be positive")
        self.row_ptr, self.col_idx, self.values = build_27pt_csr(self.n)
        self.rows = self.n**3
        rng = np.random.default_rng(self.seed)
        self.x = rng.standard_normal(self.rows)
        self.y = np.zeros(self.rows)

    # -- the kernel -------------------------------------------------------------

    def compute_spmv_ref(self) -> np.ndarray:
        """The reference row-loop SpMV, exactly HPCG's structure."""
        for row in range(self.rows):
            total = 0.0
            for k in range(self.row_ptr[row], self.row_ptr[row + 1]):
                total += self.values[k] * self.x[self.col_idx[k]]
            self.y[row] = total
        return self.y

    def verify(self, *, tolerance: float = 1e-9) -> bool:
        """Check the row loop against a vectorized SpMV."""
        expected = np.zeros(self.rows)
        np.add.at(
            expected,
            np.repeat(np.arange(self.rows), np.diff(self.row_ptr)),
            self.values * self.x[self.col_idx],
        )
        self.compute_spmv_ref()
        return bool(np.allclose(self.y, expected, atol=tolerance))

    # -- the address stream --------------------------------------------------------

    def extract_trace(
        self,
        machine: MachineSpec,
        *,
        max_rows: Optional[int] = None,
        fma_gap_cycles: float = 2.0,
    ) -> Trace:
        """Real per-row access stream: value/index streams + x gathers."""
        rows = self.rows if max_rows is None else min(self.rows, max_rows)
        space = AddressSpace()
        space.add("row_ptr", len(self.row_ptr), 8)
        space.add("col_idx", len(self.col_idx), 8)
        space.add("values", len(self.values), 8)
        space.add("x", self.rows, 8)
        space.add("y", self.rows, 8)

        recorders = []
        for start, end in partition(rows, self.threads):
            rec = TraceRecorder(space, default_gap=fma_gap_cycles)
            for row in range(start, end):
                rec.load("row_ptr", row, gap=1.0)
                for k in range(int(self.row_ptr[row]), int(self.row_ptr[row + 1])):
                    rec.load("values", k, gap=fma_gap_cycles)
                    rec.load("col_idx", k, gap=1.0)
                    rec.load("x", int(self.col_idx[k]), gap=1.0)
                rec.store("y", row, gap=1.0)
            recorders.append(rec)
        return build_trace(
            recorders, routine="ComputeSPMV_ref", line_bytes=machine.line_bytes
        )
