"""Executable ISx: real bucket counting with its real address stream.

Implements ``count_local_keys`` the way ISx does it — uniformly random
keys, a bucket histogram at key-granularity — and extracts the kernel's
actual memory accesses: the sequential key reads plus the
read-modify-write on ``counts[bucket_of(key)]``, whose addresses come
from the *actual keys*, not a synthetic distribution.  The optional L2
software-prefetch variant pipelines the bucket addresses ahead, exactly
as the paper's optimized code does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..sim.trace import Trace
from .common import AddressSpace, TraceRecorder, build_trace, partition


@dataclass
class IsxApp:
    """A reduced-scale ISx rank: keys, buckets, and the counting kernel.

    Parameters
    ----------
    keys_per_thread:
        Keys each thread owns (paper: 25165824; reduced here).
    buckets:
        Histogram size — large enough that bucket lines don't fit in
        cache, making the updates genuinely random-access.
    threads:
        Worker threads (= trace threads).
    seed:
        RNG seed for the uniform key distribution.
    """

    keys_per_thread: int = 4096
    buckets: int = 1 << 20
    threads: int = 2
    seed: int = 2022

    def __post_init__(self) -> None:
        if self.keys_per_thread <= 0 or self.buckets <= 0 or self.threads <= 0:
            raise ConfigurationError("ISx sizes must be positive")
        rng = np.random.default_rng(self.seed)
        self.keys = rng.integers(
            0, self.buckets, size=self.threads * self.keys_per_thread, dtype=np.int64
        )
        self.counts = np.zeros(self.buckets, dtype=np.int64)
        self._counted = False

    # -- the kernel -------------------------------------------------------------

    def count_local_keys(self) -> np.ndarray:
        """The real kernel: histogram all keys (vectorized for speed)."""
        self.counts[:] = 0
        np.add.at(self.counts, self.keys, 1)
        self._counted = True
        return self.counts

    def verify(self) -> bool:
        """Counts must sum to the number of keys (ISx's own sanity check)."""
        if not self._counted:
            self.count_local_keys()
        return int(self.counts.sum()) == len(self.keys)

    # -- the address stream --------------------------------------------------------

    def extract_trace(
        self,
        machine: MachineSpec,
        *,
        l2_prefetch: bool = False,
        prefetch_distance: int = 64,
        update_gap_cycles: float = 12.0,
    ) -> Trace:
        """The kernel's access stream, per thread, from the actual keys.

        Per key: one 8-byte sequential load from ``keys`` plus a
        load+store pair on ``counts[key]``.  The key loads mostly hit
        (8 keys per 64B line); the count updates are the random traffic
        that pins the L1 MSHR file.
        """
        space = AddressSpace()
        space.add("keys", len(self.keys), 8)
        space.add("counts", self.buckets, 8)

        recorders = []
        for start, end in partition(len(self.keys), self.threads):
            rec = TraceRecorder(space, default_gap=update_gap_cycles)
            for i in range(start, end):
                key = int(self.keys[i])
                if l2_prefetch and i + prefetch_distance < end:
                    rec.prefetch_l2("counts", int(self.keys[i + prefetch_distance]))
                rec.load("keys", i, gap=1.0)
                rec.load("counts", key, gap=update_gap_cycles)
                rec.store("counts", key, gap=1.0)
            recorders.append(rec)
        return build_trace(
            recorders, routine="count_local_keys", line_bytes=machine.line_bytes
        )
