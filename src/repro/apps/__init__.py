"""Executable mini-apps: real kernels, verified results, real traces.

One level more faithful than the statistical generators in
:mod:`repro.workloads`: these modules *run* reduced-scale versions of
the paper's applications (bucket sort, 27-point SpMV, corner gathers,
cell-list forces, a transport sweep, a 27-point stencil), verify their
numerical results, and extract the kernels' actual address streams for
the simulator.
"""

from .common import AddressSpace, TraceRecorder, build_trace, partition
from .comd_app import ComdApp
from .dgemm_app import DgemmApp
from .hpcg_app import HpcgApp, build_27pt_csr
from .isx_app import IsxApp
from .minighost_app import MinighostApp
from .pennant_app import PennantApp
from .snap_app import SnapApp

__all__ = [
    "AddressSpace",
    "ComdApp",
    "DgemmApp",
    "HpcgApp",
    "IsxApp",
    "MinighostApp",
    "PennantApp",
    "SnapApp",
    "TraceRecorder",
    "build_27pt_csr",
    "build_trace",
    "partition",
]
