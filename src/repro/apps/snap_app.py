"""Executable SNAP ``dim3_sweep``-shaped kernel: a real transport sweep.

A reduced discrete-ordinates sweep with SNAP's structure: cells are
visited in wavefront order and, per cell, a *short* inner loop over
angles updates the angular flux from the upstream cells — the
small-trip-count loops that defeat hardware-prefetch timeliness in the
paper and motivate directive-driven software prefetching.

Correctness: the sweep solves the upwinded balance equation exactly per
cell, so the result is verified against an independent recomputation in
a different traversal order (any topological order gives identical
values), plus positivity for positive sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..sim.trace import Trace
from .common import AddressSpace, TraceRecorder, build_trace, partition


@dataclass
class SnapApp:
    """A 2D sweep: nx x ny cells, nang angles, one group."""

    nx: int = 24
    ny: int = 16
    nang: int = 48
    threads: int = 2
    seed: int = 23

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nang) <= 0:
            raise ConfigurationError("sweep sizes must be positive")
        rng = np.random.default_rng(self.seed)
        self.source = rng.uniform(0.1, 1.0, size=(self.ny, self.nx))
        self.sigma = rng.uniform(0.5, 1.5, size=(self.ny, self.nx))
        self.mu = rng.uniform(0.1, 1.0, size=self.nang)
        self.eta = rng.uniform(0.1, 1.0, size=self.nang)
        self.psi = np.zeros((self.ny, self.nx, self.nang))

    def _cell_update(
        self, y: int, x: int, flux_x: np.ndarray, flux_y: np.ndarray
    ) -> np.ndarray:
        """Upwinded balance update for all angles of one cell."""
        return (self.source[y, x] + self.mu * flux_x + self.eta * flux_y) / (
            1.0 + self.sigma[y, x] + self.mu + self.eta
        )

    # -- the kernel -------------------------------------------------------------

    def dim_sweep(self) -> np.ndarray:
        """Wavefront sweep from the (0,0) corner (the traced kernel)."""
        self.psi[:] = 0.0
        for diag in range(self.ny + self.nx - 1):
            for y in range(max(0, diag - self.nx + 1), min(self.ny, diag + 1)):
                x = diag - y
                flux_x = self.psi[y, x - 1] if x > 0 else np.zeros(self.nang)
                flux_y = self.psi[y - 1, x] if y > 0 else np.zeros(self.nang)
                self.psi[y, x] = self._cell_update(y, x, flux_x, flux_y)
        return self.psi

    def verify(self) -> bool:
        """Row-major traversal (also topological) gives identical flux;
        positive sources give strictly positive flux."""
        self.dim_sweep()
        reference = np.zeros_like(self.psi)
        for y in range(self.ny):
            for x in range(self.nx):
                flux_x = reference[y, x - 1] if x > 0 else np.zeros(self.nang)
                flux_y = reference[y - 1, x] if y > 0 else np.zeros(self.nang)
                reference[y, x] = self._cell_update(y, x, flux_x, flux_y)
        return bool(
            np.allclose(self.psi, reference, atol=1e-12) and np.all(self.psi > 0)
        )

    # -- the address stream --------------------------------------------------------

    def extract_trace(
        self,
        machine: MachineSpec,
        *,
        sw_prefetch: bool = False,
        max_cells: Optional[int] = None,
    ) -> Trace:
        """Real sweep stream: per cell, a short nang-element burst.

        Loads the upstream flux vectors and stores the cell's — each a
        ``nang``-long unit-stride run too short for timely hardware
        prefetch (SNAP's paper signature).  ``sw_prefetch`` issues the
        directive-style prefetches for the *next* cell's flux ahead of
        the current burst.
        """
        space = AddressSpace()
        cells = self.ny * self.nx
        space.add("psi", cells * self.nang, 8)
        space.add("source", cells, 8)
        space.add("sigma", cells, 8)

        def flat(y: int, x: int, a: int = 0) -> int:
            return (y * self.nx + x) * self.nang + a

        # Per-thread: contiguous row blocks (SNAP's spatial decomposition).
        budget = max_cells if max_cells is not None else cells
        emitted = 0
        recorders = []
        for start, end in partition(self.ny, self.threads):
            rec = TraceRecorder(space, default_gap=3.0)
            for y in range(start, end):
                for x in range(self.nx):
                    if emitted >= budget:
                        break
                    rec.load("source", y * self.nx + x, gap=1.0)
                    rec.load("sigma", y * self.nx + x, gap=1.0)
                    if sw_prefetch and x + 1 < self.nx:
                        # Prefetch next cell's flux burst one cell ahead.
                        for a in range(0, self.nang, 8):
                            rec.prefetch_l2("psi", flat(y, x + 1, a))
                    for a in range(self.nang):
                        if x > 0:
                            rec.load("psi", flat(y, x - 1, a), gap=3.0)
                        if y > 0:
                            rec.load("psi", flat(y - 1, x, a), gap=3.0)
                        rec.store("psi", flat(y, x, a), gap=1.0)
                    emitted += 1
            recorders.append(rec)
        return build_trace(
            recorders, routine="dim3_sweep", line_bytes=machine.line_bytes
        )
