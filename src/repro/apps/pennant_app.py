"""Executable PENNANT ``setCornerDiv``: real mesh indirection, traced.

Builds an unstructured-mesh fragment the way PENNANT stores one — a
corner list with indirection arrays mapping each corner to its zone and
point — runs a ``setCornerDiv``-shaped kernel (gather point/zone data
per corner, compute, scatter-accumulate per zone), verifies the scatter
against ``np.add.at``, and extracts the loop's actual address stream.
The gathers use the *real shuffled indirection*, which is what makes
PENNANT's accesses irregular and L1-MSHR-bound in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..sim.trace import Trace
from .common import AddressSpace, TraceRecorder, build_trace, partition


@dataclass
class PennantApp:
    """A mesh fragment: zones, points, and 4 corners per zone.

    The default mesh is large enough that the per-corner gathers span
    hundreds of KiB — comfortably past the L1 — so the extracted trace
    carries PENNANT's irregular-access signature.  ``extract_trace``
    subsamples corners to keep simulator traces small.
    """

    zones: int = 30000
    threads: int = 2
    seed: int = 31

    def __post_init__(self) -> None:
        if self.zones <= 0 or self.threads <= 0:
            raise ConfigurationError("mesh sizes must be positive")
        rng = np.random.default_rng(self.seed)
        self.points = self.zones + 64
        self.corners = 4 * self.zones
        # Indirection: corner -> zone is block-structured then shuffled
        # (PENNANT's reordering after mesh generation), corner -> point
        # is effectively random at this scale.
        corner_zone = np.repeat(np.arange(self.zones), 4)
        perm = rng.permutation(self.corners)
        self.map_corner_zone = corner_zone[perm]
        self.map_corner_point = rng.integers(0, self.points, size=self.corners)
        self.point_x = rng.standard_normal(self.points)
        self.zone_x = rng.standard_normal(self.zones)
        self.zone_div = np.zeros(self.zones)

    # -- the kernel -------------------------------------------------------------

    def set_corner_div(self) -> np.ndarray:
        """Gather per corner, compute, scatter-accumulate per zone."""
        self.zone_div[:] = 0.0
        for c in range(self.corners):
            p = self.map_corner_point[c]
            z = self.map_corner_zone[c]
            contribution = self.point_x[p] - 0.25 * self.zone_x[z]
            self.zone_div[z] += contribution
        return self.zone_div

    def verify(self, *, tolerance: float = 1e-9) -> bool:
        """Check the loop against the vectorized scatter."""
        expected = np.zeros(self.zones)
        np.add.at(
            expected,
            self.map_corner_zone,
            self.point_x[self.map_corner_point]
            - 0.25 * self.zone_x[self.map_corner_zone],
        )
        self.set_corner_div()
        return bool(np.allclose(self.zone_div, expected, atol=tolerance))

    # -- the address stream --------------------------------------------------------

    def extract_trace(
        self,
        machine: MachineSpec,
        *,
        vectorized: bool = False,
        max_corners: Optional[int] = None,
    ) -> Trace:
        """Real per-corner stream: index loads + two gathers + a scatter.

        The scalar version carries the long dependence gap the compiler
        cannot break (the paper's unvectorized baseline); ``vectorized``
        shrinks it, modeling the forced gather/scatter code.
        """
        gap = 2.0 if vectorized else 8.0
        space = AddressSpace()
        space.add("map_corner_point", self.corners, 8)
        space.add("map_corner_zone", self.corners, 8)
        space.add("point_x", self.points, 8)
        space.add("zone_x", self.zones, 8)
        space.add("zone_div", self.zones, 8)

        corners = (
            self.corners if max_corners is None else min(self.corners, max_corners)
        )
        recorders = []
        for start, end in partition(corners, self.threads):
            rec = TraceRecorder(space, default_gap=gap)
            for c in range(start, end):
                rec.load("map_corner_point", c, gap=1.0)  # streaming index read
                rec.load("map_corner_zone", c, gap=1.0)
                rec.load("point_x", int(self.map_corner_point[c]), gap=gap)
                rec.load("zone_x", int(self.map_corner_zone[c]), gap=gap)
                rec.store("zone_div", int(self.map_corner_zone[c]), gap=1.0)
            recorders.append(rec)
        return build_trace(
            recorders, routine="setCornerDiv", line_bytes=machine.line_bytes
        )
