"""Shared machinery for the executable mini-apps.

Each module in :mod:`repro.apps` *implements* one paper application at
reduced scale — real data structures, verifiable numerical results —
and extracts the kernel's **actual address stream** while running it.
This is one rung more faithful than the statistical generators in
:mod:`repro.workloads`: the gather indices are the real column indices
of a real sparse matrix, the bucket addresses come from the real keys,
and so on.

Two pieces are shared:

* :class:`AddressSpace` — lays the app's arrays out in a flat virtual
  address space (region-aligned so different arrays never share cache
  lines), and turns ``(array, element_index)`` into byte addresses;
* :class:`TraceRecorder` — collects the kernel's loads/stores/prefetch
  hints in order and packages them as a simulator
  :class:`~repro.sim.trace.Trace`, partitioning work across threads
  the way the real apps partition their iteration spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..sim.trace import Access, AccessKind, ThreadTrace, Trace

#: Array regions are aligned to this boundary (keeps sets disjoint).
REGION_ALIGN = 16 * 1024 * 1024


class AddressSpace:
    """Virtual layout of an app's arrays."""

    def __init__(self) -> None:
        self._bases: Dict[str, int] = {}
        self._itemsize: Dict[str, int] = {}
        self._next_base = REGION_ALIGN  # keep address 0 unused

    def add(self, name: str, length: int, itemsize: int = 8) -> None:
        """Register an array of ``length`` elements of ``itemsize`` bytes."""
        if name in self._bases:
            raise ConfigurationError(f"array {name!r} already registered")
        if length <= 0 or itemsize <= 0:
            raise ConfigurationError("length and itemsize must be positive")
        self._bases[name] = self._next_base
        self._itemsize[name] = itemsize
        span = length * itemsize
        regions = (span + REGION_ALIGN - 1) // REGION_ALIGN + 1
        self._next_base += regions * REGION_ALIGN

    def addr(self, name: str, index: int) -> int:
        """Byte address of ``name[index]``."""
        try:
            return self._bases[name] + int(index) * self._itemsize[name]
        except KeyError:
            raise ConfigurationError(f"unknown array {name!r}") from None

    def arrays(self) -> Tuple[str, ...]:
        """Registered array names."""
        return tuple(self._bases)


class TraceRecorder:
    """Collects a kernel's access stream for one thread."""

    def __init__(self, space: AddressSpace, *, default_gap: float = 2.0) -> None:
        self.space = space
        self.default_gap = default_gap
        self._accesses: List[Access] = []

    def load(self, array: str, index: int, *, gap: Optional[float] = None) -> None:
        """Record a demand load of ``array[index]``."""
        self._accesses.append(
            Access(
                self.space.addr(array, index),
                AccessKind.LOAD,
                self.default_gap if gap is None else gap,
            )
        )

    def store(self, array: str, index: int, *, gap: Optional[float] = None) -> None:
        """Record a demand store to ``array[index]``."""
        self._accesses.append(
            Access(
                self.space.addr(array, index),
                AccessKind.STORE,
                self.default_gap if gap is None else gap,
            )
        )

    def prefetch_l2(self, array: str, index: int) -> None:
        """Record an L2-targeted software prefetch of ``array[index]``."""
        self._accesses.append(
            Access(self.space.addr(array, index), AccessKind.SWPF_L2, 0.5)
        )

    def compute(self, cycles: float) -> None:
        """Attribute ``cycles`` of work to the *next* recorded access."""
        self._pending_gap = cycles  # consumed by the next load/store

    def to_thread(self, thread_id: int) -> ThreadTrace:
        """Package the recorded stream as one thread's trace."""
        return ThreadTrace(thread_id=thread_id, accesses=tuple(self._accesses))

    def __len__(self) -> int:
        return len(self._accesses)


def build_trace(
    recorders: Sequence[TraceRecorder],
    *,
    routine: str,
    line_bytes: int,
) -> Trace:
    """Assemble per-thread recorders into a simulator trace."""
    if not recorders:
        raise ConfigurationError("need at least one recorder")
    return Trace(
        threads=tuple(rec.to_thread(i) for i, rec in enumerate(recorders)),
        routine=routine,
        line_bytes=line_bytes,
    )


def partition(n: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous [start, end) ranges splitting ``n`` items into ``parts``."""
    if parts <= 0:
        raise ConfigurationError("parts must be positive")
    base = n // parts
    rem = n % parts
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < rem else 0)
        out.append((start, start + size))
        start += size
    return out
