"""Executable MiniGhost: a real 27-point stencil, verified, traced.

Runs the ``mg_stencil_3d27pt`` kernel — each output cell is the average
of its 3×3×3 neighbourhood — on a real grid, verifies it against a
vectorized numpy computation, and extracts the loop nest's actual
address stream: for each inner-x iteration, 27 loads whose addresses
come from the real (z, y, x) offsets (nine unit-stride "plane rows" of
three consecutive elements each — the many-streams signature the
hardware prefetcher feasts on) plus the output store stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..sim.trace import Trace
from .common import AddressSpace, TraceRecorder, build_trace, partition


@dataclass
class MinighostApp:
    """Reduced-scale MiniGhost: one variable, one 27-point sweep."""

    nx: int = 24
    ny: int = 12
    nz: int = 12
    threads: int = 2
    seed: int = 13

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 3:
            raise ConfigurationError("grid must be at least 3 in each dimension")
        rng = np.random.default_rng(self.seed)
        self.grid = rng.standard_normal((self.nz, self.ny, self.nx))
        self.out = np.zeros_like(self.grid)

    def _index(self, z: int, y: int, x: int) -> int:
        """Flat element index of grid[z, y, x] (row-major, x fastest)."""
        return (z * self.ny + y) * self.nx + x

    # -- the kernel -------------------------------------------------------------

    def stencil_27pt(self) -> np.ndarray:
        """The triple loop nest, averaging each interior 3x3x3 block."""
        g = self.grid
        for z in range(1, self.nz - 1):
            for y in range(1, self.ny - 1):
                for x in range(1, self.nx - 1):
                    self.out[z, y, x] = (
                        g[z - 1 : z + 2, y - 1 : y + 2, x - 1 : x + 2].sum() / 27.0
                    )
        return self.out

    def verify(self, *, tolerance: float = 1e-12) -> bool:
        """Check against a shifted-sum vectorized stencil."""
        g = self.grid
        expected = np.zeros_like(g)
        acc = np.zeros((self.nz - 2, self.ny - 2, self.nx - 2))
        for dz in range(3):
            for dy in range(3):
                for dx in range(3):
                    acc += g[
                        dz : dz + self.nz - 2,
                        dy : dy + self.ny - 2,
                        dx : dx + self.nx - 2,
                    ]
        expected[1:-1, 1:-1, 1:-1] = acc / 27.0
        self.stencil_27pt()
        return bool(
            np.allclose(
                self.out[1:-1, 1:-1, 1:-1], expected[1:-1, 1:-1, 1:-1], atol=tolerance
            )
        )

    # -- the address stream --------------------------------------------------------

    def extract_trace(
        self,
        machine: MachineSpec,
        *,
        max_cells: Optional[int] = None,
        flop_gap_cycles: float = 1.5,
    ) -> Trace:
        """Real loop-nest access stream, z-planes partitioned by thread."""
        space = AddressSpace()
        cells = self.nx * self.ny * self.nz
        space.add("grid", cells, 8)
        space.add("out", cells, 8)

        z_interior = list(range(1, self.nz - 1))
        recorders = []
        emitted = 0
        budget = max_cells if max_cells is not None else cells
        for start, end in partition(len(z_interior), self.threads):
            rec = TraceRecorder(space, default_gap=flop_gap_cycles)
            for zi in z_interior[start:end]:
                for y in range(1, self.ny - 1):
                    for x in range(1, self.nx - 1):
                        if emitted >= budget:
                            break
                        for dz in (-1, 0, 1):
                            for dy in (-1, 0, 1):
                                for dx in (-1, 0, 1):
                                    rec.load(
                                        "grid",
                                        self._index(zi + dz, y + dy, x + dx),
                                        gap=flop_gap_cycles,
                                    )
                        rec.store("out", self._index(zi, y, x), gap=1.0)
                        emitted += 1
            recorders.append(rec)
        return build_trace(
            recorders, routine="mg_stencil_3d27pt", line_bytes=machine.line_bytes
        )
