"""Executable CoMD ``eamForce``-shaped kernel: real pair forces, traced.

A reduced molecular-dynamics force computation with CoMD's structure: a
link-cell decomposition, a per-particle loop over neighbouring cells,
and a pairwise force inside a cutoff.  Correctness is verified against
a direct O(N²) computation and Newton's third law (forces sum to ~0).

The extracted trace shows CoMD's paper signature: the positions of a
few thousand particles fit in cache, so memory accesses are rare and
the MSHR files sit near empty — the compute-bound case where every
MLP-increasing optimization has headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..sim.trace import Trace
from .common import AddressSpace, TraceRecorder, build_trace, partition


@dataclass
class ComdApp:
    """Particles in a periodic box with a link-cell neighbour search."""

    particles: int = 600
    box: float = 6.0
    cutoff: float = 1.0
    threads: int = 2
    seed: int = 17

    def __post_init__(self) -> None:
        if self.particles <= 0 or self.box <= 0 or self.cutoff <= 0:
            raise ConfigurationError("MD parameters must be positive")
        if self.cutoff > self.box / 3:
            raise ConfigurationError("cutoff too large for the box")
        rng = np.random.default_rng(self.seed)
        self.pos = rng.uniform(0.0, self.box, size=(self.particles, 3))
        self.force = np.zeros_like(self.pos)
        self.cells_per_dim = max(3, int(self.box / self.cutoff))
        self._build_cells()

    def _cell_of(self, p: int) -> Tuple[int, int, int]:
        """Cell coordinates of particle ``p``."""
        scaled = (self.pos[p] / self.box * self.cells_per_dim).astype(int)
        return tuple(np.minimum(scaled, self.cells_per_dim - 1))

    def _build_cells(self) -> None:
        self.cell_lists: Dict[Tuple[int, int, int], List[int]] = {}
        for p in range(self.particles):
            self.cell_lists.setdefault(self._cell_of(p), []).append(p)

    def _neighbors(self, p: int) -> List[int]:
        """Particles in the 27 cells around ``p``'s cell (excluding p)."""
        cx, cy, cz = self._cell_of(p)
        out: List[int] = []
        n = self.cells_per_dim
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    cell = ((cx + dx) % n, (cy + dy) % n, (cz + dz) % n)
                    out.extend(q for q in self.cell_lists.get(cell, []) if q != p)
        return out

    @staticmethod
    def _pair_force(r_vec: np.ndarray, r2: float) -> np.ndarray:
        """A short-range repulsive pair force (LJ-flavoured)."""
        inv = 1.0 / (r2 + 1e-12)
        return r_vec * (inv**4)

    def _displacement(self, p: int, q: int) -> np.ndarray:
        """Minimum-image displacement from q to p."""
        d = self.pos[p] - self.pos[q]
        d -= self.box * np.round(d / self.box)
        return d

    # -- the kernel -------------------------------------------------------------

    def eam_force(self) -> np.ndarray:
        """Cell-list force loop (the traced kernel)."""
        self.force[:] = 0.0
        cut2 = self.cutoff**2
        for p in range(self.particles):
            for q in self._neighbors(p):
                d = self._displacement(p, q)
                r2 = float(d @ d)
                if r2 < cut2:
                    self.force[p] += self._pair_force(d, r2)
        return self.force

    def verify(self, *, tolerance: float = 1e-9) -> bool:
        """Cell-list forces equal the direct O(N^2) forces; sum ~ 0."""
        self.eam_force()
        direct = np.zeros_like(self.force)
        cut2 = self.cutoff**2
        for p in range(self.particles):
            for q in range(self.particles):
                if p == q:
                    continue
                d = self._displacement(p, q)
                r2 = float(d @ d)
                if r2 < cut2:
                    direct[p] += self._pair_force(d, r2)
        if not np.allclose(self.force, direct, atol=tolerance):
            return False
        # Newton's third law over the whole (periodic) system.
        return bool(np.all(np.abs(self.force.sum(axis=0)) < 1e-6))

    # -- the address stream --------------------------------------------------------

    def extract_trace(
        self,
        machine: MachineSpec,
        *,
        vectorized: bool = False,
    ) -> Trace:
        """Real neighbour-loop stream: cached position loads, heavy math.

        The force arithmetic dominates (tens of cycles per pair), so
        the recorded gaps are large — the low-MLP signature.
        """
        pair_gap = 14.0 if vectorized else 28.0
        space = AddressSpace()
        space.add("pos", self.particles * 3, 8)
        space.add("force", self.particles * 3, 8)

        recorders = []
        for start, end in partition(self.particles, self.threads):
            rec = TraceRecorder(space, default_gap=pair_gap)
            for p in range(start, end):
                rec.load("pos", 3 * p, gap=2.0)
                for q in self._neighbors(p):
                    rec.load("pos", 3 * q, gap=pair_gap)
                rec.store("force", 3 * p, gap=2.0)
            recorders.append(rec)
        return build_trace(
            recorders, routine="eamForce", line_bytes=machine.line_bytes
        )
