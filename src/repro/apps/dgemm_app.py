"""Executable dgemm: the paper's unroll-and-jam illustration.

Section III-C: register tiling (unroll-and-jam) "is usually beneficial
when memory accesses already see a small latency due to few memory
accesses (i.e. most data fits in the higher levels of cache).
Interestingly, this situation can be inferred from a low MSHRQ
occupancy" — with dgemm as the example (cache + register tiling, after
which it becomes FLOP bound).

This module implements a small blocked matrix multiply (verified
against ``numpy.dot``), extracts the blocked kernel's address stream —
cache-resident tiles, rare memory touches, heavy FMA gaps — and lets
the tests confirm the chain: low measured occupancy → the recipe
recommends ``unroll_and_jam``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..sim.trace import Trace
from .common import AddressSpace, TraceRecorder, build_trace, partition


@dataclass
class DgemmApp:
    """C = A @ B with cache blocking (the optimized shape)."""

    n: int = 96
    block: int = 24
    threads: int = 2
    seed: int = 41

    def __post_init__(self) -> None:
        if self.n <= 0 or self.block <= 0 or self.n % self.block:
            raise ConfigurationError("n must be a positive multiple of block")
        rng = np.random.default_rng(self.seed)
        self.a = rng.standard_normal((self.n, self.n))
        self.b = rng.standard_normal((self.n, self.n))
        self.c = np.zeros((self.n, self.n))

    # -- the kernel -------------------------------------------------------------

    def blocked_gemm(self) -> np.ndarray:
        """Cache-blocked triple loop (block x block tiles)."""
        n, bs = self.n, self.block
        self.c[:] = 0.0
        for ii in range(0, n, bs):
            for kk in range(0, n, bs):
                for jj in range(0, n, bs):
                    self.c[ii : ii + bs, jj : jj + bs] += (
                        self.a[ii : ii + bs, kk : kk + bs]
                        @ self.b[kk : kk + bs, jj : jj + bs]
                    )
        return self.c

    def verify(self, *, tolerance: float = 1e-9) -> bool:
        """Blocked result equals the straight numpy product."""
        self.blocked_gemm()
        return bool(np.allclose(self.c, self.a @ self.b, atol=tolerance))

    # -- the address stream --------------------------------------------------------

    def extract_trace(
        self,
        machine: MachineSpec,
        *,
        max_tiles: Optional[int] = 8,
        fma_gap_cycles: float = 190.0,
    ) -> Trace:
        """Tile-level access stream: line-granular tile touches with
        heavy FMA gaps — the low-occupancy signature of blocked GEMM.

        Each tile multiply touches its three blocks once per line (the
        inner register-tiled loops run out of L1), so the stream is a
        handful of memory touches separated by O(block³) flops — with a
        24-element block, each loaded A-line feeds 8 x 24 x 2 = 384
        flops, i.e. ~190 cycles of FMA work per line touch.
        """
        n, bs = self.n, self.block
        space = AddressSpace()
        space.add("a", n * n, 8)
        space.add("b", n * n, 8)
        space.add("c", n * n, 8)
        line_elems = max(1, machine.line_bytes // 8)

        tiles = []
        for ii in range(0, n, bs):
            for kk in range(0, n, bs):
                for jj in range(0, n, bs):
                    tiles.append((ii, kk, jj))
        if max_tiles is not None:
            tiles = tiles[: max_tiles * self.threads]

        recorders = []
        for start, end in partition(len(tiles), self.threads):
            rec = TraceRecorder(space, default_gap=fma_gap_cycles)
            for ii, kk, jj in tiles[start:end]:
                for r in range(bs):
                    for col in range(0, bs, line_elems):
                        rec.load("a", (ii + r) * n + kk + col, gap=fma_gap_cycles)
                        rec.load("b", (kk + r) * n + jj + col, gap=fma_gap_cycles)
                for r in range(bs):
                    for col in range(0, bs, line_elems):
                        rec.store("c", (ii + r) * n + jj + col, gap=fma_gap_cycles)
            recorders.append(rec)
        return build_trace(recorders, routine="dgemm", line_bytes=machine.line_bytes)
