"""L2 stream prefetcher (plus an L1 next-line helper).

Models the behaviour the paper leans on:

* the L2 prefetcher detects **unit-stride line streams** and runs ahead
  of them by a configurable distance/degree — so streaming routines
  (HPCG, MiniGhost) are covered by prefetches and their outstanding
  requests live in the **L2** MSHR file, while random routines (ISx)
  never trigger it and stay bound by the **L1** MSHR file,
* it can track at most :attr:`StreamPrefetcher.max_streams` concurrent
  streams per core — KNL's 16-stream limit is the paper's explanation
  for HPCG's weak 4-way-SMT gain (8–10 streams per thread × 4 threads
  overflow the tracker),
* prefetch requests occupy L2 MSHRs and are dropped (not queued) when
  the file is full — they are hints, not obligations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError


@dataclass
class _Stream:
    """State of one detected (or training) stream."""

    last_line: int
    direction: int  # +1 or -1 line steps
    confidence: int = 0
    next_prefetch_line: Optional[int] = None
    last_touch_seq: int = 0


class StreamPrefetcher:
    """Per-core L2 stream prefetcher.

    Parameters
    ----------
    line_bytes:
        Cache line size (stride detection granularity).
    max_streams:
        Concurrent streams the tracker can hold (paper: 16 on KNL/SKL).
    degree:
        Prefetches issued per triggering access once a stream is live.
    distance:
        How many lines ahead of the demand stream to run.
    train_threshold:
        Consecutive same-direction line steps needed before issuing.
    enabled:
        The paper disables the hardware prefetcher to classify routines;
        mirroring that switch here.
    """

    def __init__(
        self,
        line_bytes: int,
        *,
        max_streams: int = 16,
        degree: int = 2,
        distance: int = 8,
        train_threshold: int = 2,
        enabled: bool = True,
    ) -> None:
        if line_bytes <= 0:
            raise SimulationError("line_bytes must be positive")
        if max_streams <= 0 or degree <= 0 or distance <= 0:
            raise SimulationError("prefetcher parameters must be positive")
        self.line_bytes = line_bytes
        self.max_streams = max_streams
        self.degree = degree
        self.distance = distance
        self.train_threshold = train_threshold
        self.enabled = enabled
        self._streams: Dict[int, _Stream] = {}  # keyed by 4KiB page
        self._seq = 0
        self.issued = 0
        self.dropped_no_stream_slot = 0

    @staticmethod
    def _page_of(line_addr: int) -> int:
        return line_addr >> 12

    def observe(self, line_addr: int) -> List[int]:
        """Feed one demand access (line address); returns lines to prefetch.

        The returned addresses are *candidates*: the caller (the L2
        controller in :mod:`repro.sim.hierarchy`) filters out lines that
        are already cached or in flight and drops the rest if the L2
        MSHR file is full.
        """
        if not self.enabled:
            return []
        return self._observe_one(
            self._page_of(line_addr), line_addr // self.line_bytes
        )

    def observe_batch(self, line_addrs: np.ndarray) -> List[Tuple[int, List[int]]]:
        """Feed a vector of demand line addresses in one call.

        The per-access address arithmetic (page extraction, line
        numbering) is vectorized; the stream-table transitions replay in
        order so the final tracker state and every emitted candidate are
        identical to sequential :meth:`observe` calls.  Returns
        ``(batch_index, candidates)`` pairs for exactly the accesses
        whose sequential call would return a non-empty candidate list,
        in batch order.
        """
        if not self.enabled or not len(line_addrs):
            return []
        pages = (line_addrs >> 12).tolist()
        line_nos = (line_addrs // self.line_bytes).tolist()
        triggers: List[Tuple[int, List[int]]] = []
        observe_one = self._observe_one
        for i, (page, line_no) in enumerate(zip(pages, line_nos)):
            candidates = observe_one(page, line_no)
            if candidates:
                triggers.append((i, candidates))
        return triggers

    def _observe_one(self, page: int, line_no: int) -> List[int]:
        """Table transition for one observed demand line (enabled path)."""
        self._seq += 1
        stream = self._streams.get(page)

        if stream is None:
            if len(self._streams) >= self.max_streams:
                evicted = self._evict_stale()
                if not evicted:
                    self.dropped_no_stream_slot += 1
                    return []
            self._streams[page] = _Stream(
                last_line=line_no, direction=0, confidence=0, last_touch_seq=self._seq
            )
            return []

        step = line_no - stream.last_line
        stream.last_touch_seq = self._seq
        if step == 0:
            return []  # same line again; no new information
        direction = 1 if step > 0 else -1
        if abs(step) <= 2 and direction == stream.direction:
            stream.confidence += 1
        elif abs(step) <= 2:
            stream.direction = direction
            stream.confidence = 1
        else:
            # Non-unit jump: restart training within the page.
            stream.direction = direction
            stream.confidence = 0
        stream.last_line = line_no

        if stream.confidence < self.train_threshold:
            return []

        # Live stream: issue `degree` prefetches `distance` lines ahead.
        start = stream.next_prefetch_line
        if start is None or (line_no + stream.direction * self.distance
                             ) * stream.direction > start * stream.direction:
            start = line_no + stream.direction * self.distance
        candidates = []
        for i in range(self.degree):
            target = start + stream.direction * i
            if target >= 0:
                candidates.append(target * self.line_bytes)
        stream.next_prefetch_line = start + stream.direction * self.degree
        self.issued += len(candidates)
        return candidates

    # -- snapshot/replay surface (batch-stepping miss fast path) ----------------

    def snapshot(self) -> Tuple[Dict[int, Tuple[int, int, int, Optional[int], int]], int, int, int]:
        """Copy of the full tracker state, for speculative replay.

        The batched miss path replays :meth:`observe` over a planned run
        of misses *before* committing the run; if any observation would
        emit prefetch candidates, the run is cut there and the tracker
        restored, so the emitting access trains the prefetcher through
        the scalar path instead.
        """
        return (
            {
                page: (
                    s.last_line,
                    s.direction,
                    s.confidence,
                    s.next_prefetch_line,
                    s.last_touch_seq,
                )
                for page, s in self._streams.items()
            },
            self._seq,
            self.issued,
            self.dropped_no_stream_slot,
        )

    def restore(
        self,
        snap: Tuple[Dict[int, Tuple[int, int, int, Optional[int], int]], int, int, int],
    ) -> None:
        """Reset the tracker to a :meth:`snapshot` copy."""
        streams, seq, issued, dropped = snap
        self._streams = {
            page: _Stream(
                last_line=last_line,
                direction=direction,
                confidence=confidence,
                next_prefetch_line=next_line,
                last_touch_seq=touch_seq,
            )
            for page, (
                last_line,
                direction,
                confidence,
                next_line,
                touch_seq,
            ) in streams.items()
        }
        self._seq = seq
        self.issued = issued
        self.dropped_no_stream_slot = dropped

    def observe_replay(self, line_addrs: np.ndarray) -> Optional[int]:
        """Replay observations in order; stop at the first emission.

        Returns the index of the first element whose sequential
        :meth:`observe` call would return candidates — the tracker is
        then mid-mutated (the emitting transition already ran) and the
        caller must :meth:`restore` and re-replay the shorter prefix.
        Returns None when no element emits; the tracker is then exactly
        the state sequential observes of the whole vector would leave.
        """
        if not self.enabled:
            return None
        observe_one = self._observe_one
        line_bytes = self.line_bytes
        for i, line_addr in enumerate(line_addrs.tolist()):
            if observe_one(line_addr >> 12, line_addr // line_bytes):
                return i
        return None

    def _evict_stale(self) -> bool:
        """Evict the least-recently-touched stream; False if table empty."""
        if not self._streams:
            return False
        stale_page = min(self._streams, key=lambda p: self._streams[p].last_touch_seq)
        del self._streams[stale_page]
        return True

    @property
    def active_streams(self) -> int:
        """Streams currently tracked."""
        return len(self._streams)
