"""Memory-access traces: the simulator's workload representation.

A trace is a sequence of :class:`Access` records per thread.  Each record
carries an address, a read/write flag, a *kind* (demand load/store or a
software prefetch targeting L1 or L2 — the paper's ISx optimization), and
the number of core cycles of independent work preceding it (which models
arithmetic intensity and instruction-level work between memory
operations).

Traces are deliberately compact: the workload generators in
:mod:`repro.workloads` emit a few tens of thousands of accesses that are
*statistically* faithful to each paper routine (random for ISx, many
unit-stride streams for MiniGhost/HPCG, gathers for PENNANT, sparse for
CoMD, short bursts for SNAP) rather than full program traces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from ..errors import TraceError


class AccessKind(enum.Enum):
    """What kind of memory operation an access is."""

    LOAD = "load"
    STORE = "store"
    #: Software prefetch into L1 (occupies L1 and L2 MSHRs on the way).
    SWPF_L1 = "swpf_l1"
    #: Software prefetch into L2 only (paper's ISx optimization: uses the
    #: otherwise-idle L2 MSHRs, bypassing the L1 MSHR file).
    SWPF_L2 = "swpf_l2"

    @property
    def is_prefetch(self) -> bool:
        """Is this a software-prefetch hint?"""
        return self in (AccessKind.SWPF_L1, AccessKind.SWPF_L2)

    @property
    def is_demand(self) -> bool:
        """Is this a demand load/store?"""
        return not self.is_prefetch


@dataclass(frozen=True)
class Access:
    """One memory operation in a thread's trace.

    Attributes
    ----------
    addr:
        Byte address.
    kind:
        Demand load/store or software prefetch.
    gap_cycles:
        Core cycles of independent (non-memory) work the thread performs
        before issuing this access.  Zero means back-to-back.
    """

    addr: int
    kind: AccessKind = AccessKind.LOAD
    gap_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise TraceError(f"negative address {self.addr}")
        if self.gap_cycles < 0:
            raise TraceError(f"negative gap {self.gap_cycles}")


@dataclass(frozen=True)
class ThreadTrace:
    """The ordered accesses of one hardware thread."""

    thread_id: int
    accesses: Tuple[Access, ...]

    def __post_init__(self) -> None:
        if self.thread_id < 0:
            raise TraceError("thread_id must be >= 0")
        # Count once here: demand_count used to be O(n) per *call*, and
        # analysis code calls it in ratios and per-thread loops.  The
        # class is frozen, so the cache goes through object.__setattr__.
        object.__setattr__(
            self,
            "_demand_count",
            sum(1 for a in self.accesses if a.kind.is_demand),
        )

    def __len__(self) -> int:
        return len(self.accesses)

    @property
    def demand_count(self) -> int:
        """Demand (non-prefetch) accesses (counted once at construction)."""
        return self._demand_count  # type: ignore[attr-defined, no-any-return]


@dataclass(frozen=True)
class Trace:
    """A multi-threaded access trace plus bookkeeping.

    Attributes
    ----------
    threads:
        One :class:`ThreadTrace` per hardware thread.
    routine:
        Name of the routine this trace models (per-routine analysis is
        central to the paper's method).
    line_bytes:
        Cache-line granularity the addresses were generated for; the
        hierarchy validates this against the machine.
    """

    threads: Tuple[ThreadTrace, ...]
    routine: str = "kernel"
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not self.threads:
            raise TraceError("trace must contain at least one thread")
        ids = [t.thread_id for t in self.threads]
        if len(set(ids)) != len(ids):
            raise TraceError("duplicate thread ids in trace")
        if self.line_bytes <= 0:
            raise TraceError("line_bytes must be positive")
        object.__setattr__(
            self, "_total_accesses", sum(len(t) for t in self.threads)
        )
        object.__setattr__(
            self, "_total_demand", sum(t.demand_count for t in self.threads)
        )

    @property
    def total_accesses(self) -> int:
        """All accesses across threads (counted once at construction)."""
        return self._total_accesses  # type: ignore[attr-defined, no-any-return]

    @property
    def total_demand(self) -> int:
        """All demand accesses across threads (counted once at construction)."""
        return self._total_demand  # type: ignore[attr-defined, no-any-return]


def trace_from_addresses(
    addresses_per_thread: Sequence[Sequence[int]],
    *,
    routine: str = "kernel",
    line_bytes: int = 64,
    gap_cycles: float = 0.0,
    kind: AccessKind = AccessKind.LOAD,
) -> Trace:
    """Convenience: build a read-only trace from raw address lists."""
    threads = tuple(
        ThreadTrace(
            thread_id=i,
            accesses=tuple(Access(int(a), kind, gap_cycles) for a in addrs),
        )
        for i, addrs in enumerate(addresses_per_thread)
    )
    return Trace(threads=threads, routine=routine, line_bytes=line_bytes)


def interleave_kinds(
    addresses: Iterable[int],
    pattern: Sequence[AccessKind],
    *,
    gap_cycles: float = 0.0,
) -> List[Access]:
    """Cycle ``pattern`` of kinds over ``addresses`` (e.g. load,load,store)."""
    if not pattern:
        raise TraceError("pattern must be non-empty")
    out: List[Access] = []
    for i, addr in enumerate(addresses):
        out.append(Access(int(addr), pattern[i % len(pattern)], gap_cycles))
    return out
