"""Simulated memory controller: a bandwidth-capped latency oracle.

Design (per DESIGN.md §5): the controller enforces the machine's
bandwidth ceiling by admitting one cache line per ``line_bytes /
effective_bw`` seconds, and assigns each admitted request a completion
latency taken from the machine's **calibrated loaded-latency curve** at
the controller's currently observed utilization.  Consequences:

* the characterize→analyze loop closes: the X-Mem substitute, sweeping
  injection rates against this controller, recovers exactly the curve
  the analyzer later consults;
* Little's law holds by construction *of the physics*, so the measured
  MSHR occupancy equals rate × latency — which the property tests check
  against the independently-integrated occupancy trackers;
* when MSHR-limited clients cannot keep the pipe full, utilization and
  thus latency fall, reproducing the closed-loop feedback the paper's
  Figure 2 ceiling captures.

Utilization is estimated over a sliding window of recently admitted
bytes.  Writebacks consume admission slots (bandwidth) but complete
immediately (no MSHR is held for them).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..memory.latency_model import LatencyModel
from ..units import GIGA, ns
from .engine import Engine
from .stats import MemoryStats


class MemoryController:
    """Rate-limited, curve-driven memory service.

    Parameters
    ----------
    engine:
        The event engine.
    latency_model:
        Loaded-latency curve (utilization → ns).
    peak_bw_bytes:
        Theoretical peak bandwidth of the *simulated slice* (the
        hierarchy scales socket bandwidth down to the simulated core
        count).
    achievable_fraction:
        Streams-achievable fraction; admission is capped here.
    line_bytes:
        Transfer granularity.
    stats:
        Shared :class:`MemoryStats` to update.
    window_ns:
        Sliding window for the utilization estimate.
    """

    __slots__ = (
        "engine",
        "latency_model",
        "peak_bw_bytes",
        "achievable_bw_bytes",
        "line_bytes",
        "stats",
        "window_ns",
        "slot_ns",
        "_next_free_ns",
        "_recent",
        "_recent_bytes",
        "_audit",
        "_faults",
        "_req_seq",
    )

    def __init__(
        self,
        engine: Engine,
        latency_model: LatencyModel,
        *,
        peak_bw_bytes: float,
        achievable_fraction: float,
        line_bytes: int,
        stats: MemoryStats,
        window_ns: float = 2000.0,
    ) -> None:
        if peak_bw_bytes <= 0:
            raise SimulationError("peak bandwidth must be positive")
        if not 0 < achievable_fraction <= 1:
            raise SimulationError("achievable fraction must be in (0,1]")
        self.engine = engine
        self.latency_model = latency_model
        self.peak_bw_bytes = peak_bw_bytes
        self.achievable_bw_bytes = peak_bw_bytes * achievable_fraction
        self.line_bytes = line_bytes
        self.stats = stats
        self.window_ns = window_ns
        #: ns per admitted line at the achievable-bandwidth cap.
        self.slot_ns = line_bytes / self.achievable_bw_bytes * GIGA
        self._next_free_ns = 0.0
        self._recent: Deque[Tuple[float, int]] = deque()  # (admit time, bytes)
        self._recent_bytes = 0
        #: Optional sanitizer hook (the RunSanitizer; set when armed).
        self._audit = None
        self._req_seq = 0
        # time_skew resolution mirrors MshrFile: decided once at
        # construction so the per-request path stays a None check.
        from ..resilience.faults import get_injector

        injector = get_injector()
        self._faults = injector if injector.armed("time_skew") else None

    # -- utilization estimate ----------------------------------------------------

    def _note_admission(self, now_ns: float, nbytes: int) -> None:
        self._recent.append((now_ns, nbytes))
        self._recent_bytes += nbytes
        cutoff = now_ns - self.window_ns
        while self._recent and self._recent[0][0] < cutoff:
            _, old = self._recent.popleft()
            self._recent_bytes -= old

    def utilization(self, now_ns: float) -> float:
        """Recent-bytes utilization of theoretical peak, in [0, 1]."""
        cutoff = now_ns - self.window_ns
        while self._recent and self._recent[0][0] < cutoff:
            _, old = self._recent.popleft()
            self._recent_bytes -= old
        if not self._recent:
            return 0.0
        rate = self._recent_bytes / ns(self.window_ns)
        return min(1.0, rate / self.peak_bw_bytes)

    def current_latency_ns(self, now_ns: float) -> float:
        """Loaded latency the next admitted request would see."""
        return self.latency_model.latency_ns(self.utilization(now_ns))

    # -- request service -----------------------------------------------------------

    def request(
        self,
        *,
        is_write: bool,
        is_prefetch: bool,
        on_complete: Callable[[], None],
    ) -> None:
        """Service one cache-line request.

        Admission waits for a bandwidth slot; completion fires
        ``on_complete`` after the loaded latency at the admission-time
        utilization.
        """
        now = self.engine.now
        admit = max(now, self._next_free_ns)
        self._next_free_ns = admit + self.slot_ns
        seq = self._req_seq
        self._req_seq = seq + 1

        audit = self._audit
        if audit is not None:
            # Audit the full system time (arrival -> completion); the
            # wrap observes only — the schedule calls below are
            # unchanged, so event ordering and the fingerprint are too.
            audit.memctrl_enter(now, seq, "request")
            inner_complete = on_complete

            def _audited_complete() -> None:
                audit.memctrl_exit(self.engine.now, seq)
                inner_complete()

            on_complete = _audited_complete

        def _admit() -> None:
            t = self.engine.now
            self._note_admission(t, self.line_bytes)
            latency = self.latency_model.latency_ns(self.utilization(t))
            if is_prefetch:
                self.stats.prefetch_bytes += self.line_bytes
            elif is_write:
                self.stats.demand_write_bytes += self.line_bytes
            else:
                self.stats.demand_read_bytes += self.line_bytes
            self.stats.requests += 1
            recorded = latency
            if self._faults is not None and self._faults.fires(
                "time_skew", str(seq)
            ):
                # Injected telemetry skew: the *recorded* latency drifts
                # from the physical one the completion is scheduled
                # with, so occupancy no longer equals rate x latency.
                recorded = latency * (
                    1.0 + self._faults.param("time_skew", "skew", 0.5)
                )
            self.stats.latency_sum_ns += recorded + (admit - now)
            self.stats.latency_count += 1
            self.engine.schedule(latency, on_complete)

        self.engine.schedule_at(admit, _admit)

    # -- closed-form batch service (batch-stepping miss fast path) --------------

    def plan_batch(
        self, issue_ns: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Closed-form service plan for a run of demand-read misses.

        Computes, *without mutating controller state*, the admission
        time and loaded latency each request would receive from the
        event path: the admission recurrence ``admit = max(issue,
        next_free); next_free = admit + slot_ns`` chains exactly as
        sequential :meth:`request` calls would, and the utilization
        window replays the same deque arithmetic against a copy, so
        every float is bit-identical to the scalar service.  Returns
        ``(admit, latency)``; each completion time is ``admit +
        latency`` — the same single float add the engine performs when
        scheduling the completion from the admission event.  The caller
        commits a (possibly truncated) prefix via :meth:`commit_batch`
        once its run cuts are final.
        """
        n = len(issue_ns)
        admit = np.empty(n, dtype=np.float64)
        utils = np.empty(n, dtype=np.float64)
        recent = deque(self._recent)
        recent_bytes = self._recent_bytes
        next_free = self._next_free_ns
        slot = self.slot_ns
        line_bytes = self.line_bytes
        window_ns = self.window_ns
        window_s = ns(window_ns)
        peak = self.peak_bw_bytes
        for i, t in enumerate(issue_ns.tolist()):
            a = t if t > next_free else next_free
            next_free = a + slot
            # _note_admission(a, line_bytes) against the copy.
            recent.append((a, line_bytes))
            recent_bytes += line_bytes
            cutoff = a - window_ns
            while recent and recent[0][0] < cutoff:
                recent_bytes -= recent.popleft()[1]
            # utilization(a): the eviction above already used cutoff for
            # time ``a`` and the deque is non-empty (just appended).
            util = recent_bytes / window_s / peak
            if util > 1.0:
                util = 1.0
            admit[i] = a
            utils[i] = util
        # The admission recurrence never depends on latency values, so
        # the curve is consulted once for the whole run.  Models expose
        # latency_ns_batch with a bit-identity guarantee; anything else
        # falls back to elementwise scalar calls.
        latency_batch = getattr(self.latency_model, "latency_ns_batch", None)
        if latency_batch is not None:
            latency = np.asarray(latency_batch(utils), dtype=np.float64)
        else:
            latency_of = self.latency_model.latency_ns
            latency = np.array(
                [latency_of(u) for u in utils.tolist()], dtype=np.float64
            )
        return admit, latency

    def commit_batch(
        self, issue_ns: np.ndarray, admit: np.ndarray, latency: np.ndarray
    ) -> None:
        """Apply a planned run's admissions to the controller state.

        The arrays must be a prefix of a :meth:`plan_batch` result for
        the same issue times (the caller may have cut the run shorter
        after planning).  Replays the admission bookkeeping (utilization
        deque, next-free slot), applies stats in admission order with
        the event path's exact chained-float arithmetic, and feeds the
        sanitizer audit with arrivals and completions merged into
        event-engine firing order.  Callers gate on ``_faults is None``:
        the injected time-skew path stays scalar-only.
        """
        n = len(issue_ns)
        if n == 0:
            return
        line_bytes = self.line_bytes
        for a in admit.tolist():
            self._note_admission(a, line_bytes)
        # Same float value as the scalar chain: next_free is recomputed
        # from the last admission exactly as request() would have.
        self._next_free_ns = float(admit[-1]) + self.slot_ns
        stats = self.stats
        # Chained adds of an integer-valued float are exact well below
        # 2**53, so one bulk add is bit-identical to n scalar adds.
        stats.demand_read_bytes += n * line_bytes
        stats.requests += n
        # latency_sum accumulates `latency + (admit - issue)` per request
        # in admission order; cumsum reproduces the chained adds.
        acc = np.empty(n + 1, dtype=np.float64)
        acc[0] = stats.latency_sum_ns
        np.add(latency, admit - issue_ns, out=acc[1:])
        stats.latency_sum_ns = float(np.cumsum(acc)[-1])
        stats.latency_count += n
        seq0 = self._req_seq
        self._req_seq = seq0 + n

        audit = self._audit
        if audit is not None:
            completion = admit + latency
            order = np.argsort(completion, kind="stable")
            times = np.concatenate([issue_ns, completion[order]])
            seqs = np.concatenate(
                [np.arange(seq0, seq0 + n), seq0 + order]
            )
            fire = np.argsort(times, kind="stable")
            for idx in fire.tolist():
                if idx < n:
                    audit.memctrl_enter(
                        float(times[idx]), int(seqs[idx]), "request_batch"
                    )
                else:
                    audit.memctrl_exit(float(times[idx]), int(seqs[idx]))

    def writeback(self) -> None:
        """Consume bandwidth for a dirty-line writeback (fire and forget)."""
        now = self.engine.now
        admit = max(now, self._next_free_ns)
        self._next_free_ns = admit + self.slot_ns

        audit = self._audit
        if audit is not None:
            audit.writebacks += 1

        def _admit() -> None:
            self._note_admission(self.engine.now, self.line_bytes)
            self.stats.demand_write_bytes += self.line_bytes
            self.stats.requests += 1

        self.engine.schedule_at(admit, _admit)
