"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, seq, callback)``
triples in a heap; ``seq`` breaks ties so same-time events fire in
scheduling order, making runs fully reproducible.  Time is in
**nanoseconds** (float); component code converts to core cycles where
needed via the machine's frequency.

The engine is the simulator's innermost loop (every cache access,
MSHR fill, and memory completion passes through it several times), so
it is written for CPython speed: ``__slots__``, a plain integer
sequence counter, and method-local bindings of the heap primitives.
The optimizations are observationally invisible — the ``(time, seq)``
ordering contract is unchanged bit-for-bit.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Callback = Callable[[], None]

_INF = float("inf")


class Engine:
    """Deterministic discrete-event loop with ns time."""

    __slots__ = ("_queue", "_seq", "_now", "_running", "_events_fired", "_sanitizer")

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_fired = 0
        #: Optional :class:`repro.analysis.sanitizer.RunSanitizer` hook;
        #: when set, every fired event's time is invariant-checked.
        self._sanitizer = None

    @property
    def now(self) -> float:
        """Current simulation time in ns."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed so far (for loop-bound guards)."""
        return self._events_fired

    def schedule(self, delay_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay_ns`` from now."""
        # The chained compare rejects NaN (both sides false), negatives,
        # and +inf in one branch; any of them would poison the heap's
        # time ordering or park an event at the end of time.
        if not (0.0 <= delay_ns < _INF):
            raise SimulationError(
                f"cannot schedule with non-finite or negative delay: {delay_ns}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay_ns, seq, callback))

    def schedule_at(self, time_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if not (self._now <= time_ns < _INF):
            raise SimulationError(
                f"cannot schedule at {time_ns} before now ({self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (time_ns, seq, callback))

    def run(
        self,
        *,
        until_ns: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Run until the queue drains (or ``until_ns`` / ``max_events``).

        Returns the final simulation time.  ``max_events`` is a runaway
        guard: exceeding it raises
        :class:`~repro.errors.SimulationError`.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        queue = self._queue
        pop = heappop
        events = self._events_fired
        sanitizer = self._sanitizer
        try:
            while queue:
                head = queue[0]
                time_ns = head[0]
                if until_ns is not None and time_ns > until_ns:
                    self._now = until_ns
                    break
                pop(queue)
                self._now = time_ns
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a scheduling loop"
                    )
                if sanitizer is not None:
                    sanitizer.on_event(time_ns, events)
                head[2]()
        finally:
            self._events_fired = events
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
