"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, seq, callback)``
triples in a heap; ``seq`` breaks ties so same-time events fire in
scheduling order, making runs fully reproducible.  Time is in
**nanoseconds** (float); component code converts to core cycles where
needed via the machine's frequency.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Callback = Callable[[], None]


class Engine:
    """Deterministic discrete-event loop with ns time."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callback]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time in ns."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed so far (for loop-bound guards)."""
        return self._events_fired

    def schedule(self, delay_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule into the past: {delay_ns}")
        heapq.heappush(self._queue, (self._now + delay_ns, next(self._seq), callback))

    def schedule_at(self, time_ns: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} before now ({self._now})"
            )
        heapq.heappush(self._queue, (time_ns, next(self._seq), callback))

    def run(
        self,
        *,
        until_ns: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Run until the queue drains (or ``until_ns`` / ``max_events``).

        Returns the final simulation time.  ``max_events`` is a runaway
        guard: exceeding it raises
        :class:`~repro.errors.SimulationError`.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                time_ns, _, callback = self._queue[0]
                if until_ns is not None and time_ns > until_ns:
                    self._now = until_ns
                    break
                heapq.heappop(self._queue)
                self._now = time_ns
                self._events_fired += 1
                if self._events_fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a scheduling loop"
                    )
                callback()
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
