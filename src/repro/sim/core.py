"""Core front end: per-thread issue contexts over the cache hierarchy.

The core model is deliberately simple — the paper's whole point is that
MLP abstracts away out-of-order minutiae — but it captures the three
things that matter:

* a per-thread **window** of outstanding demand accesses (the ROB/load
  queue share available to the thread; halved per thread under SMT),
* per-access **gap cycles** of independent work (arithmetic intensity),
* stalls when the **L1 MSHR file is full** (the structural hazard the
  paper's metric is built around) and when the window is full.

SMT threads are just multiple :class:`ThreadContext` objects bound to
the same :class:`CoreState` (sharing its caches and MSHRs), exactly the
resource-sharing the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import SimulationError
from .stats import CoreStats
from .trace import Access, AccessKind, ThreadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .hierarchy import Hierarchy


@dataclass(slots=True)
class ThreadContext:
    """Issue state of one hardware thread."""

    trace: ThreadTrace
    core_id: int
    window: int
    next_idx: int = 0
    in_flight: int = 0
    waiting_window: bool = False
    waiting_mshr: bool = False
    stall_start_ns: float = 0.0
    done: bool = False

    @property
    def exhausted(self) -> bool:
        """Has the thread issued its whole trace?"""
        return self.next_idx >= len(self.trace.accesses)


class ThreadDriver:
    """Drives one thread's trace through the hierarchy."""

    __slots__ = ("hierarchy", "engine", "ctx", "core_stats", "_freq_ghz")

    def __init__(
        self,
        hierarchy: "Hierarchy",
        context: ThreadContext,
        core_stats: CoreStats,
    ) -> None:
        self.hierarchy = hierarchy
        self.engine = hierarchy.engine
        self.ctx = context
        self.core_stats = core_stats
        self._freq_ghz = hierarchy.machine.frequency_ghz

    def start(self) -> None:
        """Schedule the first issue attempt."""
        if self.ctx.exhausted:
            self._finish()
            return
        first_gap = self.ctx.trace.accesses[0].gap_cycles / self._freq_ghz
        self.engine.schedule(first_gap, self._try_issue)

    # -- issue path -----------------------------------------------------------

    def _try_issue(self) -> None:
        ctx = self.ctx
        if ctx.done or ctx.exhausted:
            self._maybe_finish()
            return
        access = ctx.trace.accesses[ctx.next_idx]

        if access.kind.is_demand and ctx.in_flight >= ctx.window:
            if not ctx.waiting_window:
                ctx.waiting_window = True
                ctx.stall_start_ns = self.engine.now
            return  # a completion will re-enter via on_complete

        # Prefetches are non-blocking: they never enter the window, so
        # their completion must not decrement in_flight.
        on_complete = (
            self._on_complete if access.kind.is_demand else self._on_prefetch_done
        )
        issued = self.hierarchy.issue_access(
            core_id=ctx.core_id, access=access, on_complete=on_complete
        )
        if not issued:
            # L1 MSHR file full: record stall and retry when one frees.
            if not ctx.waiting_mshr:
                ctx.waiting_mshr = True
                ctx.stall_start_ns = self.engine.now
            self.hierarchy.l1_mshr(ctx.core_id).wait_for_free(self._retry_after_mshr)
            return

        now = self.engine.now
        if ctx.waiting_window or ctx.waiting_mshr:
            stall = now - ctx.stall_start_ns
            if ctx.waiting_mshr:
                self.core_stats.l1_mshr_stall_ns += stall
                self.hierarchy.stats.l1.mshr_full_stalls += 1
                self.hierarchy.stats.l1.mshr_full_stall_ns += stall
            else:
                self.core_stats.window_stall_ns += stall
            ctx.waiting_window = False
            ctx.waiting_mshr = False

        self.core_stats.issued_accesses += 1
        self.core_stats.compute_cycles += access.gap_cycles
        if access.kind.is_demand:
            ctx.in_flight += 1
        ctx.next_idx += 1

        if ctx.exhausted:
            self._maybe_finish()
            return
        next_gap = ctx.trace.accesses[ctx.next_idx].gap_cycles / self._freq_ghz
        self.engine.schedule(next_gap, self._try_issue)

    def _retry_after_mshr(self) -> None:
        if not self.ctx.done:
            self._try_issue()

    def _on_prefetch_done(self) -> None:
        """Software-prefetch retirement: no window slot to release."""
        self._maybe_finish()

    def _on_complete(self) -> None:
        ctx = self.ctx
        ctx.in_flight -= 1
        if ctx.in_flight < 0:
            raise SimulationError("thread in_flight went negative")
        if ctx.waiting_window:
            self._try_issue()
        else:
            self._maybe_finish()

    # -- completion -----------------------------------------------------------

    def _maybe_finish(self) -> None:
        ctx = self.ctx
        if not ctx.done and ctx.exhausted and ctx.in_flight == 0:
            self._finish()

    def _finish(self) -> None:
        self.ctx.done = True
        self.core_stats.finished = True
        self.core_stats.finish_time_ns = self.engine.now
        self.hierarchy.thread_finished()
