"""Core front end: per-thread issue contexts over the cache hierarchy.

The core model is deliberately simple — the paper's whole point is that
MLP abstracts away out-of-order minutiae — but it captures the three
things that matter:

* a per-thread **window** of outstanding demand accesses (the ROB/load
  queue share available to the thread; halved per thread under SMT),
* per-access **gap cycles** of independent work (arithmetic intensity),
* stalls when the **L1 MSHR file is full** (the structural hazard the
  paper's metric is built around) and when the window is full.

SMT threads are just multiple :class:`ThreadContext` objects bound to
the same :class:`CoreState` (sharing its caches and MSHRs), exactly the
resource-sharing the paper describes.

The issue loop never touches :class:`~repro.sim.trace.Access` objects:
:class:`ThreadDriver` unpacks whichever trace representation it is
given into parallel plain-Python lists once at construction (columnar
traces provide them directly via ``issue_columns()``), so the per-event
work is list indexing only.  Event ordering is bit-identical between
the object and columnar paths because both feed the engine the exact
same float values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from ..errors import SimulationError
from .coltrace import ColumnarThreadTrace
from .stats import CoreStats
from .trace import ThreadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .hierarchy import Hierarchy


@dataclass(slots=True)
class ThreadContext:
    """Issue state of one hardware thread."""

    trace: Union[ThreadTrace, ColumnarThreadTrace]
    core_id: int
    window: int
    next_idx: int = 0
    in_flight: int = 0
    waiting_window: bool = False
    waiting_mshr: bool = False
    stall_start_ns: float = 0.0
    done: bool = False

    @property
    def exhausted(self) -> bool:
        """Has the thread issued its whole trace?"""
        return self.next_idx >= len(self.trace)


class ThreadDriver:
    """Drives one thread's trace through the hierarchy."""

    __slots__ = (
        "hierarchy",
        "engine",
        "ctx",
        "core_stats",
        "_addrs",
        "_kinds",
        "_demand",
        "_gaps",
        "_gaps_ns",
        "_n",
    )

    def __init__(
        self,
        hierarchy: "Hierarchy",
        context: ThreadContext,
        core_stats: CoreStats,
    ) -> None:
        self.hierarchy = hierarchy
        self.engine = hierarchy.engine
        self.ctx = context
        self.core_stats = core_stats
        freq_ghz = hierarchy.machine.frequency_ghz
        trace = context.trace
        if isinstance(trace, ColumnarThreadTrace):
            self._addrs, self._kinds, self._gaps = trace.issue_columns()
        else:
            accesses = trace.accesses
            self._addrs = [a.addr for a in accesses]
            self._kinds = [a.kind for a in accesses]
            self._gaps = [a.gap_cycles for a in accesses]
        self._demand = [k.is_demand for k in self._kinds]
        self._gaps_ns = [g / freq_ghz for g in self._gaps]
        self._n = len(self._addrs)

    def start(self) -> None:
        """Schedule the first issue attempt."""
        if self._n == 0:
            self._finish()
            return
        self.engine.schedule(self._gaps_ns[0], self._try_issue)

    # -- issue path -----------------------------------------------------------

    def _try_issue(self) -> None:
        ctx = self.ctx
        i = ctx.next_idx
        if ctx.done or i >= self._n:
            self._maybe_finish()
            return
        is_demand = self._demand[i]

        if is_demand and ctx.in_flight >= ctx.window:
            if not ctx.waiting_window:
                ctx.waiting_window = True
                ctx.stall_start_ns = self.engine.now
            return  # a completion will re-enter via on_complete

        # Prefetches are non-blocking: they never enter the window, so
        # their completion must not decrement in_flight.
        on_complete = self._on_complete if is_demand else self._on_prefetch_done
        issued = self.hierarchy.issue_access(
            core_id=ctx.core_id,
            addr=self._addrs[i],
            kind=self._kinds[i],
            on_complete=on_complete,
        )
        if not issued:
            # L1 MSHR file full: record stall and retry when one frees.
            if not ctx.waiting_mshr:
                ctx.waiting_mshr = True
                ctx.stall_start_ns = self.engine.now
            self.hierarchy.l1_mshr(ctx.core_id).wait_for_free(self._retry_after_mshr)
            return

        now = self.engine.now
        if ctx.waiting_window or ctx.waiting_mshr:
            stall = now - ctx.stall_start_ns
            if ctx.waiting_mshr:
                self.core_stats.l1_mshr_stall_ns += stall
                self.hierarchy.stats.l1.mshr_full_stalls += 1
                self.hierarchy.stats.l1.mshr_full_stall_ns += stall
            else:
                self.core_stats.window_stall_ns += stall
            ctx.waiting_window = False
            ctx.waiting_mshr = False

        self.core_stats.issued_accesses += 1
        self.core_stats.compute_cycles += self._gaps[i]
        if is_demand:
            ctx.in_flight += 1
        ctx.next_idx = i + 1

        if ctx.next_idx >= self._n:
            self._maybe_finish()
            return
        self.engine.schedule(self._gaps_ns[ctx.next_idx], self._try_issue)

    def _retry_after_mshr(self) -> None:
        if not self.ctx.done:
            self._try_issue()

    def _on_prefetch_done(self) -> None:
        """Software-prefetch retirement: no window slot to release."""
        self._maybe_finish()

    def _on_complete(self) -> None:
        ctx = self.ctx
        ctx.in_flight -= 1
        if ctx.in_flight < 0:
            raise SimulationError("thread in_flight went negative")
        if ctx.waiting_window:
            self._try_issue()
        else:
            self._maybe_finish()

    # -- completion -----------------------------------------------------------

    def _maybe_finish(self) -> None:
        ctx = self.ctx
        if not ctx.done and ctx.exhausted and ctx.in_flight == 0:
            self._finish()

    def _finish(self) -> None:
        self.ctx.done = True
        self.core_stats.finished = True
        self.core_stats.finish_time_ns = self.engine.now
        self.hierarchy.thread_finished()
