"""Core front end: per-thread issue contexts over the cache hierarchy.

The core model is deliberately simple — the paper's whole point is that
MLP abstracts away out-of-order minutiae — but it captures the three
things that matter:

* a per-thread **window** of outstanding demand accesses (the ROB/load
  queue share available to the thread; halved per thread under SMT),
* per-access **gap cycles** of independent work (arithmetic intensity),
* stalls when the **L1 MSHR file is full** (the structural hazard the
  paper's metric is built around) and when the window is full.

SMT threads are just multiple :class:`ThreadContext` objects bound to
the same :class:`CoreState` (sharing its caches and MSHRs), exactly the
resource-sharing the paper describes.

The issue loop never touches :class:`~repro.sim.trace.Access` objects:
:class:`ThreadDriver` unpacks whichever trace representation it is
given into parallel plain-Python lists once at construction (columnar
traces provide them directly via ``issue_columns()``), so the per-event
work is list indexing only.  Event ordering is bit-identical between
the object and columnar paths because both feed the engine the exact
same float values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

import numpy as np

from ..errors import SimulationError
from .batch import (
    BATCH_BACKOFF,
    BATCH_LOOKAHEAD,
    MIN_BATCH,
    issue_times,
    run_length,
    window_admissible,
)
from .coltrace import (
    _FIRST_PREFETCH_CODE,
    KIND_CODES,
    AccessColumns,
    ColumnarThreadTrace,
)
from .stats import CoreStats
from .trace import AccessKind, ThreadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .hierarchy import Hierarchy


@dataclass(slots=True)
class ThreadContext:
    """Issue state of one hardware thread."""

    trace: Union[ThreadTrace, ColumnarThreadTrace]
    core_id: int
    window: int
    next_idx: int = 0
    in_flight: int = 0
    waiting_window: bool = False
    waiting_mshr: bool = False
    stall_start_ns: float = 0.0
    done: bool = False

    @property
    def exhausted(self) -> bool:
        """Has the thread issued its whole trace?"""
        return self.next_idx >= len(self.trace)


class ThreadDriver:
    """Drives one thread's trace through the hierarchy."""

    __slots__ = (
        "hierarchy",
        "engine",
        "ctx",
        "core_stats",
        "_addrs",
        "_kinds",
        "_demand",
        "_gaps",
        "_gaps_ns",
        "_n",
        "_batch",
        "_skip_until",
        "_l1_hit_ns",
        "_addr_arr",
        "_lines_arr",
        "_writes_arr",
        "_gap_arr",
        "_gaps_ns_arr",
        "_san",
    )

    def __init__(
        self,
        hierarchy: "Hierarchy",
        context: ThreadContext,
        core_stats: CoreStats,
    ) -> None:
        self.hierarchy = hierarchy
        self.engine = hierarchy.engine
        self.ctx = context
        self.core_stats = core_stats
        freq_ghz = hierarchy.machine.frequency_ghz
        trace = context.trace
        if isinstance(trace, ColumnarThreadTrace):
            self._addrs, self._kinds, self._gaps = trace.issue_columns()
            addr_arr, kind_arr, gap_arr = trace.addr, trace.kind, trace.gap_cycles
        else:
            accesses = trace.accesses
            self._addrs = [a.addr for a in accesses]
            self._kinds = [a.kind for a in accesses]
            self._gaps = [a.gap_cycles for a in accesses]
            columns = AccessColumns.from_accesses(accesses)
            addr_arr, kind_arr, gap_arr = (
                columns.addr,
                columns.kind,
                columns.gap_cycles,
            )
        # One vectorized compare / divide per column; the per-element
        # float values are IEEE-identical to scalar division, and
        # tolist() keeps plain Python floats on the engine's hot path.
        self._demand = kind_arr < _FIRST_PREFETCH_CODE
        gaps_ns_arr = gap_arr / freq_ghz
        self._gaps_ns = gaps_ns_arr.tolist()
        self._n = len(self._addrs)
        self._batch = hierarchy.batch_enabled
        self._skip_until = 0
        self._l1_hit_ns = hierarchy.l1_hit_ns
        self._san = hierarchy.sanitizer
        if self._batch:
            core = hierarchy.cores[context.core_id]
            self._addr_arr = addr_arr
            self._lines_arr = core.l1_array.line_of_batch(addr_arr)
            self._writes_arr = kind_arr == KIND_CODES[AccessKind.STORE]
            self._gap_arr = gap_arr
            self._gaps_ns_arr = gaps_ns_arr
        else:
            self._addr_arr = self._lines_arr = self._writes_arr = None
            self._gap_arr = self._gaps_ns_arr = None

    def start(self) -> None:
        """Schedule the first issue attempt."""
        if self._n == 0:
            self._finish()
            return
        self.engine.schedule(self._gaps_ns[0], self._try_issue)

    # -- issue path -----------------------------------------------------------

    def _try_issue(self) -> None:
        ctx = self.ctx
        i = ctx.next_idx
        if ctx.done or i >= self._n:
            self._maybe_finish()
            return
        if self._batch and i >= self._skip_until and self._try_batch(i):
            return
        is_demand = self._demand[i]

        if is_demand and ctx.in_flight >= ctx.window:
            if not ctx.waiting_window:
                ctx.waiting_window = True
                ctx.stall_start_ns = self.engine.now
            return  # a completion will re-enter via on_complete

        # Prefetches are non-blocking: they never enter the window, so
        # their completion must not decrement in_flight.
        on_complete = self._on_complete if is_demand else self._on_prefetch_done
        issued = self.hierarchy.issue_access(
            core_id=ctx.core_id,
            addr=self._addrs[i],
            kind=self._kinds[i],
            on_complete=on_complete,
        )
        if not issued:
            # L1 MSHR file full: record stall and retry when one frees.
            if not ctx.waiting_mshr:
                ctx.waiting_mshr = True
                ctx.stall_start_ns = self.engine.now
            self.hierarchy.l1_mshr(ctx.core_id).wait_for_free(self._retry_after_mshr)
            return

        now = self.engine.now
        if ctx.waiting_window or ctx.waiting_mshr:
            stall = now - ctx.stall_start_ns
            if ctx.waiting_mshr:
                self.core_stats.l1_mshr_stall_ns += stall
                self.hierarchy.stats.l1.mshr_full_stalls += 1
                self.hierarchy.stats.l1.mshr_full_stall_ns += stall
            else:
                self.core_stats.window_stall_ns += stall
            ctx.waiting_window = False
            ctx.waiting_mshr = False

        self.core_stats.issued_accesses += 1
        self.core_stats.compute_cycles += self._gaps[i]
        if self._san is not None:
            self._san.scalar_issued += 1
        if is_demand:
            ctx.in_flight += 1
        ctx.next_idx = i + 1

        if ctx.next_idx >= self._n:
            self._maybe_finish()
            return
        self.engine.schedule(self._gaps_ns[ctx.next_idx], self._try_issue)

    # -- batch-stepping fast path ----------------------------------------------

    def _try_batch(self, start: int) -> int:
        """Retire a run of provably interaction-free L1 hits in one step.

        Returns the number of accesses retired (0 = conditions not met;
        the caller falls through to the per-event path).  Engagement
        requires a quiescent core — no stall in progress, zero
        outstanding demand accesses, empty L1/L2 MSHR files, no page
        walks in flight — so nothing in the event queue can mutate this
        core's L1/TLB residency or observe its issue state mid-run; see
        :mod:`repro.sim.batch` and docs/PERFORMANCE.md for the argument.
        The run ends at the first access that is not a demand L1+TLB hit
        or that the window check would stall; that access replays
        through the event engine with exact state.
        """
        ctx = self.ctx
        if ctx.waiting_window or ctx.waiting_mshr or ctx.in_flight != 0:
            return 0
        hierarchy = self.hierarchy
        core = hierarchy.cores[ctx.core_id]
        if core.l1_mshr.entries or core.l2_mshr.entries or core.walks_in_flight:
            return 0

        stop = min(self._n, start + BATCH_LOOKAHEAD)
        lines = self._lines_arr[start:stop]
        ok = self._demand[start:stop] & core.l1_array.probe_batch(lines)
        if core.tlb is not None:
            ok &= core.tlb.probe_batch(self._addr_arr[start:stop])
        k = run_length(ok)
        if k < MIN_BATCH:
            self._skip_until = start + BATCH_BACKOFF
            return 0
        l1_hit_ns = self._l1_hit_ns
        t = issue_times(self.engine.now, self._gaps_ns_arr[start + 1 : start + k])
        admissible = window_admissible(t, l1_hit_ns, ctx.window)
        if not admissible.all():
            k = run_length(admissible)
            if k < MIN_BATCH:
                self._skip_until = start + BATCH_BACKOFF
                return 0
            t = t[:k]

        end = start + k
        core.l1_array.touch_batch(lines[:k], self._writes_arr[start:end])
        if core.tlb is not None:
            core.tlb.touch_batch(self._addr_arr[start:end])
        stats = hierarchy.stats
        stats.l1.hits += k
        stats.batch_accesses += k
        if self._san is not None:
            self._san.batch_issued += k
        core_stats = self.core_stats
        core_stats.issued_accesses += k
        # Chained left-to-right adds via cumsum: bit-identical to the
        # event path's one-at-a-time accumulation.
        acc = np.empty(k + 1, dtype=np.float64)
        acc[0] = core_stats.compute_cycles
        acc[1:] = self._gap_arr[start:end]
        core_stats.compute_cycles = float(np.cumsum(acc)[-1])
        ctx.next_idx = end

        completion = t + l1_hit_ns
        engine = self.engine
        if end >= self._n:
            # Final run: one drain event at the last completion time
            # replaces k individual decrements.  The intermediate
            # in_flight values have no readers (the trace is exhausted
            # and nothing else touches this context), and the finish
            # time matches the event path's last completion exactly.
            ctx.in_flight += k

            def _drain() -> None:
                ctx.in_flight -= k
                self._maybe_finish()

            engine.schedule_at(float(completion[k - 1]), _drain)
            return k

        # Handoff: completions landing at or before the next attempt
        # would have fired before it (earlier tie-break seq), so they
        # are pure decrements with no observable effect — elide them.
        # Strictly later ones get real events at their exact times so
        # post-run window checks and stall wakeups see the true
        # in-flight trajectory.
        t_next = float(t[k - 1]) + self._gaps_ns[end]
        out_times = completion[completion > t_next]
        ctx.in_flight += len(out_times)
        on_complete = self._on_complete
        for when in out_times.tolist():
            engine.schedule_at(when, on_complete)
        engine.schedule_at(t_next, self._try_issue)
        return k

    def _retry_after_mshr(self) -> None:
        if not self.ctx.done:
            self._try_issue()

    def _on_prefetch_done(self) -> None:
        """Software-prefetch retirement: no window slot to release."""
        self._maybe_finish()

    def _on_complete(self) -> None:
        ctx = self.ctx
        ctx.in_flight -= 1
        if ctx.in_flight < 0:
            raise SimulationError("thread in_flight went negative")
        if ctx.waiting_window:
            self._try_issue()
        else:
            self._maybe_finish()

    # -- completion -----------------------------------------------------------

    def _maybe_finish(self) -> None:
        ctx = self.ctx
        if not ctx.done and ctx.exhausted and ctx.in_flight == 0:
            self._finish()

    def _finish(self) -> None:
        self.ctx.done = True
        self.core_stats.finished = True
        self.core_stats.finish_time_ns = self.engine.now
        self.hierarchy.thread_finished()
