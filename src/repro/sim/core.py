"""Core front end: per-thread issue contexts over the cache hierarchy.

The core model is deliberately simple — the paper's whole point is that
MLP abstracts away out-of-order minutiae — but it captures the three
things that matter:

* a per-thread **window** of outstanding demand accesses (the ROB/load
  queue share available to the thread; halved per thread under SMT),
* per-access **gap cycles** of independent work (arithmetic intensity),
* stalls when the **L1 MSHR file is full** (the structural hazard the
  paper's metric is built around) and when the window is full.

SMT threads are just multiple :class:`ThreadContext` objects bound to
the same :class:`CoreState` (sharing its caches and MSHRs), exactly the
resource-sharing the paper describes.

The issue loop never touches :class:`~repro.sim.trace.Access` objects:
:class:`ThreadDriver` unpacks whichever trace representation it is
given into parallel plain-Python lists once at construction (columnar
traces provide them directly via ``issue_columns()``), so the per-event
work is list indexing only.  Event ordering is bit-identical between
the object and columnar paths because both feed the engine the exact
same float values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from ..errors import SimulationError
from .batch import (
    BATCH_BACKOFF,
    BATCH_LOOKAHEAD,
    MIN_BATCH,
    conflict_free,
    first_duplicate,
    first_member,
    issue_times,
    mshr_admissible,
    run_length,
    window_admissible,
    window_admissible_mixed,
)
from .coltrace import (
    _FIRST_PREFETCH_CODE,
    KIND_CODES,
    AccessColumns,
    ColumnarThreadTrace,
)
from .stats import CoreStats
from .trace import AccessKind, ThreadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .cache import CacheArray
    from .hierarchy import Hierarchy, _CoreSlice


@dataclass(slots=True)
class ThreadContext:
    """Issue state of one hardware thread."""

    trace: Union[ThreadTrace, ColumnarThreadTrace]
    core_id: int
    window: int
    next_idx: int = 0
    in_flight: int = 0
    waiting_window: bool = False
    waiting_mshr: bool = False
    stall_start_ns: float = 0.0
    done: bool = False

    @property
    def exhausted(self) -> bool:
        """Has the thread issued its whole trace?"""
        return self.next_idx >= len(self.trace)


class ThreadDriver:
    """Drives one thread's trace through the hierarchy."""

    __slots__ = (
        "hierarchy",
        "engine",
        "ctx",
        "core_stats",
        "_addrs",
        "_kinds",
        "_demand",
        "_gaps",
        "_gaps_ns",
        "_n",
        "_batch",
        "_batch_miss",
        "_skip_until",
        "_l1_hit_ns",
        "_l2_hit_ns",
        "_addr_arr",
        "_lines_arr",
        "_writes_arr",
        "_gap_arr",
        "_gaps_ns_arr",
        "_san",
    )

    def __init__(
        self,
        hierarchy: "Hierarchy",
        context: ThreadContext,
        core_stats: CoreStats,
    ) -> None:
        self.hierarchy = hierarchy
        self.engine = hierarchy.engine
        self.ctx = context
        self.core_stats = core_stats
        freq_ghz = hierarchy.machine.frequency_ghz
        trace = context.trace
        if isinstance(trace, ColumnarThreadTrace):
            self._addrs, self._kinds, self._gaps = trace.issue_columns()
            addr_arr, kind_arr, gap_arr = trace.addr, trace.kind, trace.gap_cycles
        else:
            accesses = trace.accesses
            self._addrs = [a.addr for a in accesses]
            self._kinds = [a.kind for a in accesses]
            self._gaps = [a.gap_cycles for a in accesses]
            columns = AccessColumns.from_accesses(accesses)
            addr_arr, kind_arr, gap_arr = (
                columns.addr,
                columns.kind,
                columns.gap_cycles,
            )
        # One vectorized compare / divide per column; the per-element
        # float values are IEEE-identical to scalar division, and
        # tolist() keeps plain Python floats on the engine's hot path.
        self._demand = kind_arr < _FIRST_PREFETCH_CODE
        gaps_ns_arr = gap_arr / freq_ghz
        self._gaps_ns = gaps_ns_arr.tolist()
        self._n = len(self._addrs)
        self._batch = hierarchy.batch_enabled
        self._skip_until = 0
        self._l1_hit_ns = hierarchy.l1_hit_ns
        self._l2_hit_ns = hierarchy._l2_hit_ns
        self._san = hierarchy.sanitizer
        if self._batch:
            core = hierarchy.cores[context.core_id]
            # Miss-run batching additionally requires the scalar-only
            # fault injectors to be unarmed: mshr_leak and time_skew
            # deliberately corrupt the scalar bookkeeping, and the
            # closed-form replay does not model them.
            self._batch_miss = (
                hierarchy.batch_miss_enabled
                and hierarchy.memctrl._faults is None
                and core.l1_mshr._faults is None
                and core.l2_mshr._faults is None
            )
            if hierarchy.batch_miss_enabled and not self._batch_miss:
                hierarchy.stats.note_batch_fallback("faults")
            self._addr_arr = addr_arr
            self._lines_arr = core.l1_array.line_of_batch(addr_arr)
            self._writes_arr = kind_arr == KIND_CODES[AccessKind.STORE]
            self._gap_arr = gap_arr
            self._gaps_ns_arr = gaps_ns_arr
        else:
            self._batch_miss = False
            self._addr_arr = self._lines_arr = self._writes_arr = None
            self._gap_arr = self._gaps_ns_arr = None

    def start(self) -> None:
        """Schedule the first issue attempt."""
        if self._n == 0:
            self._finish()
            return
        self.engine.schedule(self._gaps_ns[0], self._try_issue)

    # -- issue path -----------------------------------------------------------

    def _try_issue(self) -> None:
        ctx = self.ctx
        i = ctx.next_idx
        if ctx.done or i >= self._n:
            self._maybe_finish()
            return
        if self._batch and i >= self._skip_until and self._try_batch(i):
            return
        is_demand = self._demand[i]

        if is_demand and ctx.in_flight >= ctx.window:
            if not ctx.waiting_window:
                ctx.waiting_window = True
                ctx.stall_start_ns = self.engine.now
            return  # a completion will re-enter via on_complete

        # Prefetches are non-blocking: they never enter the window, so
        # their completion must not decrement in_flight.
        on_complete = self._on_complete if is_demand else self._on_prefetch_done
        issued = self.hierarchy.issue_access(
            core_id=ctx.core_id,
            addr=self._addrs[i],
            kind=self._kinds[i],
            on_complete=on_complete,
        )
        if not issued:
            # L1 MSHR file full: record stall and retry when one frees.
            if not ctx.waiting_mshr:
                ctx.waiting_mshr = True
                ctx.stall_start_ns = self.engine.now
            self.hierarchy.l1_mshr(ctx.core_id).wait_for_free(self._retry_after_mshr)
            return

        now = self.engine.now
        if ctx.waiting_window or ctx.waiting_mshr:
            stall = now - ctx.stall_start_ns
            if ctx.waiting_mshr:
                self.core_stats.l1_mshr_stall_ns += stall
                self.hierarchy.stats.l1.mshr_full_stalls += 1
                self.hierarchy.stats.l1.mshr_full_stall_ns += stall
            else:
                self.core_stats.window_stall_ns += stall
            ctx.waiting_window = False
            ctx.waiting_mshr = False

        self.core_stats.issued_accesses += 1
        self.core_stats.compute_cycles += self._gaps[i]
        if self._san is not None:
            self._san.scalar_issued += 1
        if is_demand:
            ctx.in_flight += 1
        ctx.next_idx = i + 1

        if ctx.next_idx >= self._n:
            self._maybe_finish()
            return
        self.engine.schedule(self._gaps_ns[ctx.next_idx], self._try_issue)

    # -- batch-stepping fast path ----------------------------------------------

    def _try_batch(self, start: int) -> int:
        """Retire a run of provably interaction-free accesses in one step.

        Returns the number of accesses retired (0 = conditions not met;
        the caller falls through to the per-event path).  Engagement
        requires a quiescent core — no stall in progress, zero
        outstanding demand accesses, empty L1/L2 MSHR files, no page
        walks in flight — so nothing in the event queue can mutate this
        core's L1/TLB residency or observe its issue state mid-run; see
        :mod:`repro.sim.batch` and docs/PERFORMANCE.md for the argument.

        Runs containing L1 *misses* are attempted first via
        :meth:`_try_batch_miss`, which replays the MSHR and memory-
        controller service closed-form; when that path declines (a
        precondition fails, or the run is pure hits) the all-hit path
        below retires the longest hit prefix.  Either way, the first
        access past the run replays through the event engine with exact
        state.
        """
        ctx = self.ctx
        if ctx.waiting_window or ctx.waiting_mshr or ctx.in_flight != 0:
            return 0
        hierarchy = self.hierarchy
        core = hierarchy.cores[ctx.core_id]
        if core.l1_mshr.entries or core.l2_mshr.entries or core.walks_in_flight:
            return 0

        stop = min(self._n, start + BATCH_LOOKAHEAD)
        lines = self._lines_arr[start:stop]
        demand = self._demand[start:stop]
        hit = core.l1_array.probe_batch(lines)
        tlb_ok = (
            core.tlb.probe_batch(self._addr_arr[start:stop])
            if core.tlb is not None
            else None
        )
        if self._batch_miss:
            k = self._try_batch_miss(start, stop, core, lines, demand, hit, tlb_ok)
            if k:
                return k
        ok = demand & hit
        if tlb_ok is not None:
            ok &= tlb_ok
        k = run_length(ok)
        if k < MIN_BATCH:
            self._skip_until = start + BATCH_BACKOFF
            return 0
        l1_hit_ns = self._l1_hit_ns
        t = issue_times(self.engine.now, self._gaps_ns_arr[start + 1 : start + k])
        admissible = window_admissible(t, l1_hit_ns, ctx.window)
        if not admissible.all():
            k = run_length(admissible)
            if k < MIN_BATCH:
                self._skip_until = start + BATCH_BACKOFF
                return 0
            t = t[:k]

        end = start + k
        core.l1_array.touch_batch(lines[:k], self._writes_arr[start:end])
        if core.tlb is not None:
            core.tlb.touch_batch(self._addr_arr[start:end])
        stats = hierarchy.stats
        stats.l1.hits += k
        stats.batch_accesses += k
        if self._san is not None:
            self._san.batch_issued += k
        core_stats = self.core_stats
        core_stats.issued_accesses += k
        # Chained left-to-right adds via cumsum: bit-identical to the
        # event path's one-at-a-time accumulation.
        acc = np.empty(k + 1, dtype=np.float64)
        acc[0] = core_stats.compute_cycles
        acc[1:] = self._gap_arr[start:end]
        core_stats.compute_cycles = float(np.cumsum(acc)[-1])
        ctx.next_idx = end

        completion = t + l1_hit_ns
        engine = self.engine
        if end >= self._n:
            # Final run: one drain event at the last completion time
            # replaces k individual decrements.  The intermediate
            # in_flight values have no readers (the trace is exhausted
            # and nothing else touches this context), and the finish
            # time matches the event path's last completion exactly.
            ctx.in_flight += k

            def _drain() -> None:
                ctx.in_flight -= k
                self._maybe_finish()

            engine.schedule_at(float(completion[k - 1]), _drain)
            return k

        # Handoff: completions landing at or before the next attempt
        # would have fired before it (earlier tie-break seq), so they
        # are pure decrements with no observable effect — elide them.
        # Strictly later ones get real events at their exact times so
        # post-run window checks and stall wakeups see the true
        # in-flight trajectory.
        t_next = float(t[k - 1]) + self._gaps_ns[end]
        out_times = completion[completion > t_next]
        ctx.in_flight += len(out_times)
        on_complete = self._on_complete
        for when in out_times.tolist():
            engine.schedule_at(when, on_complete)
        engine.schedule_at(t_next, self._try_issue)
        return k

    # -- batched miss-stream retirement ----------------------------------------

    def _try_batch_miss(
        self,
        start: int,
        stop: int,
        core: "_CoreSlice",
        lines: np.ndarray,
        demand: np.ndarray,
        hit: np.ndarray,
        tlb_ok: Optional[np.ndarray],
    ) -> int:
        """Plan and retire a run *containing L1 misses* in one step.

        The planner reconstructs, closed-form, every float the event
        engine would compute for the run — issue times, memory-
        controller admissions and loaded latencies, L2 and L1 fill
        instants — using the same chained arithmetic in the same order,
        then proves the run is interaction-free by cutting it at the
        first access where any event-path behaviour could diverge:

        * a repeated miss line (the event path would merge it onto the
          in-flight MSHR entry),
        * an exact float tie between an issue attempt and a fill, or
          between two fills (firing order there depends on scheduling
          history the planner cannot reconstruct),
        * a planned hit whose set receives an earlier in-run fill (the
          residency snapshot can no longer be trusted),
        * a would-be window stall or a full L1/L2 MSHR file (the event
          path would stall and resume on a wakeup),
        * a prefetcher emission (the emitted prefetches would contend
          for L2 MSHRs and memory bandwidth mid-run).

        In-flight misses *within* the run are allowed — that is the
        point — because window admissibility over the mixed completion
        vector proves the front end never stalls, and the quiescence
        gates (empty event queue, clean caches, empty MSHR files)
        prove nothing outside the run can observe or perturb it.
        Returns the number of accesses retired, or 0 to decline (the
        caller falls through to the all-hit path, then to the event
        engine).
        """
        ctx = self.ctx
        hierarchy = self.hierarchy
        stats = hierarchy.stats
        engine = self.engine
        if engine.pending():
            # Anything already queued (another thread's issue, a fill in
            # flight elsewhere) could observe shared memctrl state or
            # interleave with the run's elided events.
            stats.note_batch_fallback("concurrent_events")
            return 0
        if core.l1_array.maybe_dirty or core.l2_array.maybe_dirty:
            # A dirty line anywhere means an in-run fill could evict it
            # and emit a writeback the closed-form plan does not model.
            stats.note_batch_fallback("dirty")
            return 0

        eligible = demand & ~self._writes_arr[start:stop]
        if tlb_ok is not None:
            eligible &= tlb_ok
        k0 = run_length(eligible)
        if k0 < MIN_BATCH:
            return 0
        hit = hit[:k0]
        miss_pos = np.flatnonzero(~hit)
        if not len(miss_pos):
            return 0  # pure-hit prefix: the all-hit path handles it
        lines = lines[:k0]

        t = issue_times(engine.now, self._gaps_ns_arr[start + 1 : start + k0])
        cut = k0
        reason = None

        miss_lines = lines[miss_pos]
        d = first_duplicate(miss_lines)
        if d < len(miss_pos) and miss_pos[d] < cut:
            cut = int(miss_pos[d])
            reason = "merge"

        # L2 classification and the closed-form memory service plan.
        # Planning runs at full lookahead; every check below is
        # prefix-consistent (see repro.sim.batch), so the final cut is
        # just the minimum and the surviving prefix needs no replan.
        l2_hit = core.l2_array.probe_batch(miss_lines)
        l2m_pos = miss_pos[~l2_hit]
        l2h_pos = miss_pos[l2_hit]
        admit, latency = hierarchy.memctrl.plan_batch(t[l2m_pos])
        c = admit + latency  # L2 fill instants (event: schedule at admit)
        f1_miss = np.empty(len(miss_pos), dtype=np.float64)
        f1_miss[~l2_hit] = c + self._l2_hit_ns
        f1_miss[l2_hit] = t[l2h_pos] + self._l2_hit_ns

        d = first_duplicate(f1_miss)
        if d < len(miss_pos) and miss_pos[d] < cut:
            cut = int(miss_pos[d])
            reason = "tie"
        d = first_duplicate(c)
        if d < len(l2m_pos) and l2m_pos[d] < cut:
            cut = int(l2m_pos[d])
            reason = "tie"
        m = first_member(t, np.concatenate([f1_miss, c]))
        if m < cut:
            cut = m
            reason = "tie"

        l1_sets = core.l1_array.set_index_batch(lines)
        r = run_length(
            conflict_free(t, l1_sets, hit, l1_sets[miss_pos], f1_miss)
        )
        if r < cut:
            cut = r
            reason = "conflict"
        l2_sets = core.l2_array.set_index_batch(lines)
        l2_check = np.zeros(k0, dtype=bool)
        l2_check[l2h_pos] = True
        r = run_length(
            conflict_free(t, l2_sets, l2_check, l2_sets[l2m_pos], c)
        )
        if r < cut:
            cut = r
            reason = "conflict"

        f1_full = np.full(k0, -np.inf)
        f1_full[miss_pos] = f1_miss
        completion = np.where(hit, t + self._l1_hit_ns, f1_full)
        r = run_length(window_admissible_mixed(t, completion, ctx.window))
        if r < cut:
            cut = r
            reason = "window_stall"

        r = run_length(mshr_admissible(t, ~hit, f1_miss, core.l1_mshr.capacity))
        if r < cut:
            cut = r
            reason = "mshr_pressure"
        l2_alloc = np.zeros(k0, dtype=bool)
        l2_alloc[l2m_pos] = True
        r = run_length(mshr_admissible(t, l2_alloc, c, core.l2_mshr.capacity))
        if r < cut:
            cut = r
            reason = "mshr_pressure"

        k = cut
        if k < MIN_BATCH or miss_pos[0] >= k:
            if reason is not None:
                stats.note_batch_fallback(reason)
            return 0

        # Handoff trim and prefetcher replay.  The trim guarantees every
        # miss fill lands strictly before the post-run issue attempt, so
        # the MSHR files are genuinely empty (and all tracker/audit
        # times in the past) when the event engine resumes.  The
        # prefetcher replay runs the real table forward over the run's
        # misses; an emission cuts the run so the emitting access trains
        # the prefetcher — and issues its prefetches — on the scalar
        # path.  A shorter trim invalidates the replay (fewer observes),
        # hence the restore-and-redo loop; it terminates because the cut
        # only ever shrinks.
        pf = core.prefetcher
        pf_active = pf.enabled
        snap = pf.snapshot() if pf_active else None
        replayed = False
        gaps_ns = self._gaps_ns_arr
        while True:
            if start + k < self._n:
                fill_run_max = np.maximum.accumulate(f1_full[:k])
                t_next_arr = t[:k] + gaps_ns[start + 1 : start + k + 1]
                good = np.flatnonzero(fill_run_max < t_next_arr)
                if not len(good) or good[-1] + 1 < MIN_BATCH:
                    if replayed:
                        pf.restore(snap)
                    stats.note_batch_fallback("handoff")
                    return 0
                k = int(good[-1]) + 1
            if miss_pos[0] >= k:
                if replayed:
                    pf.restore(snap)
                return 0
            if not pf_active:
                break
            if replayed:
                pf.restore(snap)
            in_run = miss_pos[miss_pos < k]
            emit = pf.observe_replay(lines[in_run])
            replayed = True
            if emit is None:
                break
            k_new = int(in_run[emit])
            if k_new < MIN_BATCH or miss_pos[0] >= k_new:
                pf.restore(snap)
                stats.note_batch_fallback("prefetcher")
                return 0
            k = k_new

        return self._commit_miss_run(
            start, k, core, lines, hit, t, completion,
            miss_pos, l2h_pos, l2m_pos, f1_miss, c, admit, latency,
        )

    def _commit_miss_run(
        self,
        start: int,
        k: int,
        core: "_CoreSlice",
        lines: np.ndarray,
        hit: np.ndarray,
        t: np.ndarray,
        completion: np.ndarray,
        miss_pos: np.ndarray,
        l2h_pos: np.ndarray,
        l2m_pos: np.ndarray,
        f1_miss: np.ndarray,
        c: np.ndarray,
        admit: np.ndarray,
        latency: np.ndarray,
    ) -> int:
        """Apply a verified miss run's state, stats and handoff events.

        All planning arrays are at full lookahead; position arrays are
        sorted, so restricting to positions ``< k`` always selects a
        *prefix* of the per-miss arrays (``f1_miss``, ``c``, ``admit``,
        ``latency``) — the truncated plan is exactly what
        :meth:`~repro.sim.memctrl.MemoryController.plan_batch` would
        have produced for the shorter run.
        """
        ctx = self.ctx
        hierarchy = self.hierarchy
        end = start + k
        mp = miss_pos[miss_pos < k]
        n_miss = len(mp)
        l2m = l2m_pos[l2m_pos < k]
        n_l2m = len(l2m)
        l2h = l2h_pos[l2h_pos < k]
        f1 = f1_miss[:n_miss]
        hierarchy.memctrl.commit_batch(t[l2m], admit[:n_l2m], latency[:n_l2m])
        core.l1_mshr.allocate_batch(t[mp], lines[mp])
        core.l1_mshr.release_batch(f1)
        core.l2_mshr.allocate_batch(t[l2m], lines[l2m])
        core.l2_mshr.release_batch(c[:n_l2m])
        # L1: hit touches interleave with miss fills in event-time order;
        # L2: hit-lookup touches (L2-hit misses) interleave with L2
        # fills.  L2-miss lookups mutate nothing and are elided.
        hit_pos = np.flatnonzero(hit[:k])
        self._replay_array(core.l1_array, t[hit_pos], lines[hit_pos], f1, lines[mp])
        self._replay_array(core.l2_array, t[l2h], lines[l2h], c[:n_l2m], lines[l2m])
        if core.tlb is not None:
            core.tlb.touch_batch(self._addr_arr[start:end])

        stats = hierarchy.stats
        stats.l1.hits += k - n_miss
        stats.l1.misses += n_miss
        stats.l2.hits += len(l2h)
        stats.l2.misses += n_l2m
        stats.batch_accesses += k
        stats.batch_miss_accesses += k
        if self._san is not None:
            self._san.batch_issued += k
        core_stats = self.core_stats
        core_stats.issued_accesses += k
        acc = np.empty(k + 1, dtype=np.float64)
        acc[0] = core_stats.compute_cycles
        acc[1:] = self._gap_arr[start:end]
        core_stats.compute_cycles = float(np.cumsum(acc)[-1])
        ctx.next_idx = end

        completion = completion[:k]
        engine = self.engine
        if end >= self._n:
            # Final run: drain at the last completion (fills are not
            # monotone in issue order, so take the max), matching the
            # event path's final _on_complete time exactly.
            ctx.in_flight += k

            def _drain() -> None:
                ctx.in_flight -= k
                self._maybe_finish()

            engine.schedule_at(float(completion.max()), _drain)
            return k

        # Handoff — identical to the all-hit path: completions at or
        # before the next attempt are elided (they fired first by
        # tie-break and decrement with no observer); strictly later ones
        # get real events.  The trim guaranteed every *miss* completion
        # lands before t_next, so the stragglers are all hits.
        t_next = float(t[k - 1]) + self._gaps_ns[end]
        out_times = completion[completion > t_next]
        ctx.in_flight += len(out_times)
        on_complete = self._on_complete
        for when in out_times.tolist():
            engine.schedule_at(when, on_complete)
        engine.schedule_at(t_next, self._try_issue)
        return k

    def _replay_array(
        self,
        array: "CacheArray",
        touch_t: np.ndarray,
        touch_lines: np.ndarray,
        fill_t: np.ndarray,
        fill_lines: np.ndarray,
    ) -> None:
        """Replay a run's hit touches and fills onto one cache array.

        Touches are queued via ``touch_batch`` in segments split at each
        fill's event time, and fills between consecutive segments are
        applied as one ``fill_batch`` (which flushes the queued touches
        first), so the array steps through exactly the scalar event
        sequence: every touch whose issue time precedes a fill is
        applied before it.  Ties between a touch and a fill were cut
        from the run, and duplicate fill instants too, so the time
        ordering here is total.  The ``fill_batch`` preconditions hold
        by planning: fill lines are distinct (duplicate-miss cut),
        absent (they missed against the snapshot and only other lines
        fill during the run), and the run was only planned while both
        arrays were provably all-clean, so no fill can evict a dirty
        victim (``fill_batch`` raises if one would).
        """
        n_touch = len(touch_lines)
        if not len(fill_lines):
            if n_touch:
                array.touch_batch(touch_lines, np.zeros(n_touch, dtype=bool))
            return
        order = np.argsort(fill_t, kind="stable")
        sorted_fills = fill_lines[order]
        no_writes = np.zeros(n_touch, dtype=bool)
        boundary = np.searchsorted(touch_t, fill_t[order], side="left")
        starts = np.flatnonzero(np.r_[True, boundary[1:] != boundary[:-1]])
        stops = np.r_[starts[1:], len(sorted_fills)]
        prev = 0
        for lo, hi in zip(starts.tolist(), stops.tolist()):
            b = int(boundary[lo])
            if b > prev:
                array.touch_batch(touch_lines[prev:b], no_writes[prev:b])
                prev = b
            array.fill_batch(sorted_fills[lo:hi])
        if prev < n_touch:
            array.touch_batch(touch_lines[prev:], no_writes[prev:])

    def _retry_after_mshr(self) -> None:
        if not self.ctx.done:
            self._try_issue()

    def _on_prefetch_done(self) -> None:
        """Software-prefetch retirement: no window slot to release."""
        self._maybe_finish()

    def _on_complete(self) -> None:
        ctx = self.ctx
        ctx.in_flight -= 1
        if ctx.in_flight < 0:
            raise SimulationError("thread in_flight went negative")
        if ctx.waiting_window:
            self._try_issue()
        else:
            self._maybe_finish()

    # -- completion -----------------------------------------------------------

    def _maybe_finish(self) -> None:
        ctx = self.ctx
        if not ctx.done and ctx.exhausted and ctx.in_flight == 0:
            self._finish()

    def _finish(self) -> None:
        self.ctx.done = True
        self.core_stats.finished = True
        self.core_stats.finish_time_ns = self.engine.now
        self.hierarchy.thread_finished()
