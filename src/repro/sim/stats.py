"""Simulation statistics: every observable the paper's method consumes.

The counters collected here are the simulator-side equivalents of the
hardware events in paper Table I and Section IV:

* per-level MSHR occupancy **time integrals** (so the time-average
  occupancy — the paper's ``n_avg`` ground truth — is
  ``integral / elapsed``),
* MSHR-full stall time at L1 and L2 (the paper validates ISx L2 software
  prefetching by watching stalls migrate from the L1 to the L2 MSHRQ on
  a cycle-level simulator),
* memory-controller bytes served, split demand/prefetch and read/write
  (bandwidth counters; the demand/prefetch split drives the paper's
  random-vs-streaming classification),
* per-request latency sums (so the simulator can report true average
  loaded latency, which real counters cannot — Section II),
* cache hit/miss counts per level, and core issue/stall accounting used
  by the TMA baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..units import ns
from typing import Any, Dict, List

#: SimStats fields excluded from :meth:`SimStats.fingerprint` — execution
#: artifacts that legitimately differ between bit-identical simulations:
#: wall-clock cost is a host property, and the engine event count /
#: batch-stepped access counts / fallback tallies describe *how* the run
#: was executed (the batch fast path collapses many per-access events
#: into vectorized steps) rather than what the simulated machine did.
_NON_SEMANTIC_FIELDS = (
    "wall_s",
    "events_fired",
    "batch_accesses",
    "batch_miss_accesses",
    "batch_fallbacks",
)


@dataclass(slots=True)
class OccupancyTracker:
    """Time-weighted occupancy accounting for one queue.

    Call :meth:`update` *before* changing the occupancy, passing the
    current time; the tracker integrates ``occupancy * dt`` between
    updates.
    """

    name: str
    capacity: int
    occupancy: int = 0
    integral_ns: float = 0.0
    last_update_ns: float = 0.0
    peak: int = 0
    full_time_ns: float = 0.0

    def update(self, now_ns: float) -> None:
        """Integrate occupancy up to ``now_ns``."""
        dt = now_ns - self.last_update_ns
        if dt < 0:
            raise ValueError(f"{self.name}: time went backwards ({dt} ns)")
        self.integral_ns += self.occupancy * dt
        if self.occupancy >= self.capacity:
            self.full_time_ns += dt
        self.last_update_ns = now_ns

    def add(self, now_ns: float, delta: int = 1) -> None:
        """Change occupancy by ``delta`` at time ``now_ns``."""
        self.update(now_ns)
        self.occupancy += delta
        if self.occupancy < 0:
            raise ValueError(f"{self.name}: occupancy went negative")
        if self.occupancy > self.capacity:
            raise ValueError(
                f"{self.name}: occupancy {self.occupancy} exceeds capacity "
                f"{self.capacity}"
            )
        self.peak = max(self.peak, self.occupancy)

    def add_batch(self, times_ns: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a time-sorted sequence of occupancy changes in one pass.

        Element-for-element equivalent to sequential :meth:`add` calls:
        the integral accumulates the same ``occupancy * dt`` terms
        through the same left-to-right chained float adds (``np.cumsum``
        performs sequential adds, unlike ``np.sum``'s pairwise tree), so
        the resulting ``integral_ns`` / ``full_time_ns`` / ``peak`` /
        ``occupancy`` are bit-identical to the scalar loop.  ``times_ns``
        must be nondecreasing; callers interleaving allocations and
        releases are responsible for merging them into event-engine
        firing order first.
        """
        n = len(times_ns)
        if n == 0:
            return
        dt = np.empty(n, dtype=np.float64)
        dt[0] = times_ns[0] - self.last_update_ns
        np.subtract(times_ns[1:], times_ns[:-1], out=dt[1:])
        if dt.min() < 0:
            raise ValueError(f"{self.name}: time went backwards in batch")
        occ_after = self.occupancy + np.cumsum(deltas)
        if occ_after.min() < 0:
            raise ValueError(f"{self.name}: occupancy went negative")
        if occ_after.max() > self.capacity:
            raise ValueError(
                f"{self.name}: occupancy {int(occ_after.max())} exceeds "
                f"capacity {self.capacity}"
            )
        occ_before = np.empty(n, dtype=np.int64)
        occ_before[0] = self.occupancy
        occ_before[1:] = occ_after[:-1]
        acc = np.empty(n + 1, dtype=np.float64)
        acc[0] = self.integral_ns
        np.multiply(occ_before, dt, out=acc[1:])
        self.integral_ns = float(np.cumsum(acc)[-1])
        full = occ_before >= self.capacity
        if full.any():
            full_dt = dt[full]
            facc = np.empty(len(full_dt) + 1, dtype=np.float64)
            facc[0] = self.full_time_ns
            facc[1:] = full_dt
            self.full_time_ns = float(np.cumsum(facc)[-1])
        self.occupancy = int(occ_after[-1])
        self.peak = max(self.peak, int(occ_after.max()))
        self.last_update_ns = float(times_ns[-1])

    @property
    def is_full(self) -> bool:
        """Occupancy is at capacity right now."""
        return self.occupancy >= self.capacity

    def average(self, elapsed_ns: float) -> float:
        """Time-average occupancy over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.integral_ns / elapsed_ns


@dataclass(slots=True)
class LevelStats:
    """Hit/miss and MSHR statistics for one cache level (aggregated)."""

    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    mshr_full_stalls: int = 0
    mshr_full_stall_ns: float = 0.0
    late_prefetch_hits: int = 0  # demand hit an in-flight prefetch MSHR

    @property
    def accesses(self) -> int:
        """Total demand lookups at this level."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Demand miss rate at this level."""
        total = self.accesses
        return self.misses / total if total else 0.0


@dataclass(slots=True)
class MemoryStats:
    """Memory-controller counters."""

    demand_read_bytes: float = 0.0
    demand_write_bytes: float = 0.0
    prefetch_bytes: float = 0.0
    requests: int = 0
    latency_sum_ns: float = 0.0
    latency_count: int = 0
    rejected_over_cap: int = 0

    @property
    def total_bytes(self) -> float:
        """All bytes moved at the memory controller."""
        return self.demand_read_bytes + self.demand_write_bytes + self.prefetch_bytes

    @property
    def avg_latency_ns(self) -> float:
        """Average loaded latency over all completed requests."""
        return self.latency_sum_ns / self.latency_count if self.latency_count else 0.0

    @property
    def prefetch_fraction(self) -> float:
        """Fraction of memory traffic generated by prefetches.

        This is the signal the paper's recipe uses to classify a routine
        as streaming (prefetcher covers it → L2 MSHRQ binds) versus
        random (prefetcher ineffective → L1 MSHRQ binds).
        """
        total = self.total_bytes
        return self.prefetch_bytes / total if total else 0.0


@dataclass(slots=True)
class CoreStats:
    """Per-core front-end accounting for the TMA baseline."""

    issued_accesses: int = 0
    compute_cycles: float = 0.0
    window_stall_ns: float = 0.0
    l1_mshr_stall_ns: float = 0.0
    finished: bool = False
    finish_time_ns: float = 0.0


@dataclass(slots=True)
class SimStats:
    """All observables from one simulation run."""

    routine: str = "kernel"
    elapsed_ns: float = 0.0
    l1: LevelStats = field(default_factory=LevelStats)
    l2: LevelStats = field(default_factory=LevelStats)
    #: Shared LLC statistics (all zero unless the L3 model is enabled).
    l3: LevelStats = field(default_factory=LevelStats)
    memory: MemoryStats = field(default_factory=MemoryStats)
    cores: List[CoreStats] = field(default_factory=list)
    l1_occupancy: List[OccupancyTracker] = field(default_factory=list)
    l2_occupancy: List[OccupancyTracker] = field(default_factory=list)
    hw_prefetches_issued: int = 0
    sw_prefetches_issued: int = 0
    #: Engine events executed during the run.  An *execution* observable
    #: (excluded from :meth:`fingerprint`): the batch fast path performs
    #: the same physics with far fewer events.
    events_fired: int = 0
    #: Accesses retired through the batch-stepping fast path (execution
    #: observable, excluded from :meth:`fingerprint`; 0 on the pure
    #: event path).
    batch_accesses: int = 0
    #: Of :attr:`batch_accesses`, accesses retired through runs that
    #: contained misses (the vectorized MSHR/memory-controller fast
    #: path).  Execution observable, excluded from :meth:`fingerprint`.
    batch_miss_accesses: int = 0
    #: Reason -> count tally of why the batch fast path was disabled for
    #: the run, or why candidate runs fell back to the event engine
    #: (execution observable, excluded from :meth:`fingerprint`).  Empty
    #: when batching never declined; makes zero-batched-fraction runs
    #: diagnosable.
    batch_fallbacks: Dict[str, int] = field(default_factory=dict)
    #: Host wall-clock cost of the run in seconds (NOT a simulation
    #: observable: excluded from :meth:`fingerprint`).
    wall_s: float = 0.0

    # -- derived observables ---------------------------------------------------

    def finalize(self, now_ns: float) -> None:
        """Close all occupancy integrals at end of run."""
        self.elapsed_ns = now_ns
        for tracker in self.l1_occupancy + self.l2_occupancy:
            tracker.update(now_ns)

    def bandwidth_bytes_per_s(self) -> float:
        """Achieved memory bandwidth over the run."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.memory.total_bytes / ns(self.elapsed_ns)

    def avg_occupancy(self, level: int, *, per_core: bool = True) -> float:
        """Measured time-average MSHR occupancy at ``level``.

        With ``per_core=True`` (default) returns the per-core average —
        directly comparable to the paper's ``n_avg``.
        """
        trackers = self.l1_occupancy if level == 1 else self.l2_occupancy
        if not trackers or self.elapsed_ns <= 0:
            return 0.0
        total = sum(t.average(self.elapsed_ns) for t in trackers)
        return total / len(trackers) if per_core else total

    def mshr_full_fraction(self, level: int) -> float:
        """Fraction of run time the (average) MSHR file at ``level`` was full."""
        trackers = self.l1_occupancy if level == 1 else self.l2_occupancy
        if not trackers or self.elapsed_ns <= 0:
            return 0.0
        return sum(t.full_time_ns for t in trackers) / (
            len(trackers) * self.elapsed_ns
        )

    def arrival_rate_per_s(self) -> float:
        """Memory request completion rate (requests/s)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.memory.latency_count / ns(self.elapsed_ns)

    def events_per_sec(self) -> float:
        """Simulator throughput: engine events per host wall-clock second.

        The regression observable tracked by
        ``benchmarks/bench_sim_throughput.py``; zero when the run was
        replayed from cache or too fast to time.  Only comparable
        between runs on the *same* execution path: the batch fast path
        fires far fewer events for the same physics, so cross-path
        comparisons should use :meth:`accesses_per_sec`.
        """
        if self.wall_s <= 0.0:
            return 0.0
        return self.events_fired / self.wall_s

    def issued_total(self) -> int:
        """Accesses issued across all cores (demand + prefetch hints)."""
        return sum(c.issued_accesses for c in self.cores)

    def accesses_per_sec(self) -> float:
        """Simulator throughput in issued accesses per wall-clock second.

        Path-independent (unlike :meth:`events_per_sec`): the batch and
        event paths issue the same accesses, so this is the metric the
        throughput benchmark uses to compare them.
        """
        if self.wall_s <= 0.0:
            return 0.0
        return self.issued_total() / self.wall_s

    def note_batch_fallback(self, reason: str) -> None:
        """Tally one batch fast-path decline (diagnostic, non-semantic)."""
        self.batch_fallbacks[reason] = self.batch_fallbacks.get(reason, 0) + 1

    # -- serialization (for the repro.perf.cache content-addressed store) ------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; :meth:`from_dict` inverts it exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SimStats":
        """Rebuild from :meth:`to_dict` output (bit-exact roundtrip)."""
        return cls(
            routine=doc["routine"],
            elapsed_ns=doc["elapsed_ns"],
            l1=LevelStats(**doc["l1"]),
            l2=LevelStats(**doc["l2"]),
            l3=LevelStats(**doc["l3"]),
            memory=MemoryStats(**doc["memory"]),
            cores=[CoreStats(**c) for c in doc["cores"]],
            l1_occupancy=[OccupancyTracker(**t) for t in doc["l1_occupancy"]],
            l2_occupancy=[OccupancyTracker(**t) for t in doc["l2_occupancy"]],
            hw_prefetches_issued=doc["hw_prefetches_issued"],
            sw_prefetches_issued=doc["sw_prefetches_issued"],
            events_fired=doc.get("events_fired", 0),
            batch_accesses=doc.get("batch_accesses", 0),
            batch_miss_accesses=doc.get("batch_miss_accesses", 0),
            batch_fallbacks=dict(doc.get("batch_fallbacks", {})),
            wall_s=doc.get("wall_s", 0.0),
        )

    def fingerprint(self) -> str:
        """SHA-256 over every *semantic* observable of the run.

        Two runs of the same physics produce the same fingerprint
        regardless of host speed, worker count, or cache hits — the
        equivalence contract the perf layer's tests assert.
        """
        doc = self.to_dict()
        for key in _NON_SEMANTIC_FIELDS:
            doc.pop(key, None)
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def littles_law_check(self, level: int = 2) -> Dict[str, float]:
        """Compare measured occupancy with rate x latency (Little's law).

        Returns the measured time-average total occupancy, the product of
        measured arrival rate and measured average latency, and their
        relative error.  On a correct simulator these agree — this is the
        library's core property test.
        """
        measured = self.avg_occupancy(level, per_core=False)
        predicted = self.arrival_rate_per_s() * ns(self.memory.avg_latency_ns)
        err = abs(measured - predicted) / predicted if predicted else 0.0
        return {
            "measured_occupancy": measured,
            "rate_times_latency": predicted,
            "relative_error": err,
        }
