"""Batch-stepping fast path: vectorized planning of L1-hit runs.

The paper's method needs event-level fidelity only for the **miss**
stream — MSHR occupancy and loaded latency are where Little's law
lives.  An L1 hit, by contrast, is pure arithmetic: it completes a
fixed ``l1_hit_ns`` after issue, touches nothing shared, and cannot
change which later accesses hit or miss (hits never install or evict
lines).  This module computes, for a candidate run of upcoming
accesses, how long a prefix the simulator may retire *in one step*
with observables bit-identical to the event engine:

* :func:`issue_times` reproduces the event path's chained issue-time
  floats exactly (``np.cumsum`` performs the same left-to-right adds);
* :func:`window_admissible` replays the per-access window check the
  core front end would perform, using the completion-before-issue tie
  rule of the event engine;
* :func:`run_length` cuts the run at the first access that fails any
  condition — that access (a miss, a prefetch, a would-be stall…)
  falls back to the event engine with exact state.

The caller (:meth:`repro.sim.core.ThreadDriver._try_batch`) is
responsible for the *quiescence* preconditions that make the prefix
provably interaction-free: no stall in progress, zero outstanding
demand accesses, empty L1/L2 MSHR files, and no page walks in flight.
Under those conditions nothing in the event queue can mutate the
core's L1/TLB residency (or observe its issue state) while the run is
in progress, so snapshot probes and aggregate LRU replay are exact.
"""

from __future__ import annotations

import numpy as np

#: Maximum accesses examined per scan; bounds per-scan work and keeps
#: temporary arrays cache-resident.
BATCH_LOOKAHEAD = 1024

#: Runs shorter than this are not worth the scan overhead; the event
#: path handles them.
MIN_BATCH = 8

#: After a failed scan, skip this many accesses before scanning again
#: (the trace is locally miss-heavy; rescanning every access would make
#: the fast path a slowdown).
BATCH_BACKOFF = 64


def issue_times(t0: float, gaps_ns: np.ndarray) -> np.ndarray:
    """Event-path issue times for a run whose first access issues now.

    The event engine computes each attempt time as the chained float
    sum ``t[j] = t[j-1] + gaps_ns[j]``; ``np.cumsum`` performs the same
    left-to-right sequential adds (unlike ``np.sum``'s pairwise tree),
    so every element is bit-identical to the scalar chain.

    ``gaps_ns`` holds the gaps of accesses 1..m of the run (the first
    access's gap already elapsed — it issues at ``t0``); the result has
    ``len(gaps_ns) + 1`` elements.
    """
    out = np.empty(len(gaps_ns) + 1, dtype=np.float64)
    out[0] = t0
    out[1:] = gaps_ns
    np.cumsum(out, out=out)
    return out


def window_admissible(
    t: np.ndarray, l1_hit_ns: float, window: int
) -> np.ndarray:
    """Per-access window check for an all-hit demand run.

    With zero outstanding accesses at ``t[0]``, the demand accesses in
    flight when access ``j`` attempts to issue are exactly
    ``#{m < j : t[m] + l1_hit_ns > t[j]}`` — *strictly* later
    completions only, because the event engine fires a completion
    scheduled for the same instant before the issue attempt (the
    completion was scheduled earlier, so it carries the lower tie-break
    sequence number).  ``searchsorted`` on the (sorted) completion
    times counts the complement in O(n log n).

    Entries past the first ``False`` are meaningless (they assume every
    earlier access issued as an unstalled hit); callers must cut at the
    first failure via :func:`run_length`.
    """
    completed = np.searchsorted(t + l1_hit_ns, t, side="right")
    in_flight = np.arange(len(t)) - completed
    return in_flight < window


def run_length(ok: np.ndarray) -> int:
    """Length of the leading all-True prefix of a boolean mask."""
    if ok.all():
        return len(ok)
    return int(np.argmin(ok))


# -- miss-run planning helpers (vectorized MSHR/memctrl fast path) -------------
#
# Every helper below is *prefix-consistent*: the value it computes for
# access ``j`` depends only on accesses ``i < j``, so a run planned at
# full lookahead can be truncated at the minimum of all cut points
# without recomputation — the surviving prefix's values are unchanged.


def window_admissible_mixed(
    t: np.ndarray, completion: np.ndarray, window: int
) -> np.ndarray:
    """Per-access window check for a mixed hit/miss run.

    Generalizes :func:`window_admissible` to runs where each access has
    its own completion time (``t + l1_hit_ns`` for hits, the L1 fill
    time for misses).  Completions at exactly ``t[j]`` count as retired
    (the completion event carries the lower tie-break sequence number —
    it was scheduled strictly earlier); miss-completion/issue ties are
    cut upstream by :func:`first_member`, so only the hit tie rule is
    exercised here.  Entries past the first ``False`` are meaningless;
    cut via :func:`run_length`.
    """
    completed = np.searchsorted(np.sort(completion), t, side="right")
    in_flight = np.arange(len(t)) - completed
    return in_flight < window


def mshr_admissible(
    t: np.ndarray,
    is_alloc: np.ndarray,
    release_t: np.ndarray,
    capacity: int,
) -> np.ndarray:
    """Per-access MSHR-capacity check for a planned run.

    ``is_alloc`` marks the accesses that would allocate an entry in the
    file; ``release_t`` holds their release times in the same order
    (length ``is_alloc.sum()``).  The occupancy a candidate allocation
    at ``t[j]`` would observe is the number of earlier in-run
    allocations not yet released — releases after ``t[j]`` keep their
    entry live.  A release can only predate ``t[j]`` if its allocation
    did (service latency is positive), so one global ``searchsorted``
    over the sorted release times is exact.  Must stay strictly below
    ``capacity`` or the event path would have stalled the core.
    """
    prior_allocs = np.cumsum(is_alloc) - is_alloc
    released = np.searchsorted(np.sort(release_t), t, side="right")
    occupancy = prior_allocs - released
    return ~is_alloc | (occupancy < capacity)


def conflict_free(
    t: np.ndarray,
    set_idx: np.ndarray,
    check: np.ndarray,
    fill_sets: np.ndarray,
    fill_times: np.ndarray,
) -> np.ndarray:
    """Snapshot-validity check against in-run fills.

    An access at position ``j`` whose hit/miss classification came from
    a residency snapshot is only trustworthy while no in-run fill has
    landed in its set: a fill can evict the line a planned hit relies
    on.  ``check`` marks the positions that need the guarantee;
    ``fill_sets``/``fill_times`` describe every fill the run would
    perform.  Conservative: any same-set fill at or before ``t[j]``
    invalidates ``j``, whether or not it actually evicts.  Fills from
    accesses after ``j`` land strictly after ``t[j]`` (service latency
    is positive), so the per-set minimum over *all* fills is exact for
    the prefix.
    """
    ok = np.ones(len(t), dtype=bool)
    if not len(fill_sets) or not check.any():
        return ok
    order = np.argsort(fill_sets, kind="stable")
    sorted_sets = fill_sets[order]
    sorted_times = fill_times[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_sets[1:] != sorted_sets[:-1]]
    )
    uniq = sorted_sets[starts]
    earliest = np.minimum.reduceat(sorted_times, starts)
    pos = np.searchsorted(uniq, set_idx)
    np.minimum(pos, len(uniq) - 1, out=pos)
    has_fill = uniq[pos] == set_idx
    first_fill = np.where(has_fill, earliest[pos], np.inf)
    return ~check | (t < first_fill)


def first_duplicate(values: np.ndarray) -> int:
    """Index of the first element equal to an earlier element (else len).

    Used to cut a miss run before a repeated line address: a duplicate
    would merge onto the in-flight MSHR entry on the event path, a case
    the batched replay does not model.
    """
    n = len(values)
    if n < 2:
        return n
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    dup = sorted_values[1:] == sorted_values[:-1]
    if not dup.any():
        return n
    return int(order[1:][dup].min())


def first_member(t: np.ndarray, boundaries: np.ndarray) -> int:
    """Index of the first element of ``t`` present in ``boundaries``.

    Used to cut a run at a float-time collision between an issue attempt
    and an in-run fill/completion: the event engine's firing order for
    such a tie depends on scheduling history the planner cannot
    reconstruct, so the colliding access replays through the engine.
    Returns ``len(t)`` when no element collides.
    """
    if not len(boundaries):
        return len(t)
    mask = np.isin(t, boundaries)
    if not mask.any():
        return len(t)
    return int(np.argmax(mask))
