"""Batch-stepping fast path: vectorized planning of L1-hit runs.

The paper's method needs event-level fidelity only for the **miss**
stream — MSHR occupancy and loaded latency are where Little's law
lives.  An L1 hit, by contrast, is pure arithmetic: it completes a
fixed ``l1_hit_ns`` after issue, touches nothing shared, and cannot
change which later accesses hit or miss (hits never install or evict
lines).  This module computes, for a candidate run of upcoming
accesses, how long a prefix the simulator may retire *in one step*
with observables bit-identical to the event engine:

* :func:`issue_times` reproduces the event path's chained issue-time
  floats exactly (``np.cumsum`` performs the same left-to-right adds);
* :func:`window_admissible` replays the per-access window check the
  core front end would perform, using the completion-before-issue tie
  rule of the event engine;
* :func:`run_length` cuts the run at the first access that fails any
  condition — that access (a miss, a prefetch, a would-be stall…)
  falls back to the event engine with exact state.

The caller (:meth:`repro.sim.core.ThreadDriver._try_batch`) is
responsible for the *quiescence* preconditions that make the prefix
provably interaction-free: no stall in progress, zero outstanding
demand accesses, empty L1/L2 MSHR files, and no page walks in flight.
Under those conditions nothing in the event queue can mutate the
core's L1/TLB residency (or observe its issue state) while the run is
in progress, so snapshot probes and aggregate LRU replay are exact.
"""

from __future__ import annotations

import numpy as np

#: Maximum accesses examined per scan; bounds per-scan work and keeps
#: temporary arrays cache-resident.
BATCH_LOOKAHEAD = 1024

#: Runs shorter than this are not worth the scan overhead; the event
#: path handles them.
MIN_BATCH = 8

#: After a failed scan, skip this many accesses before scanning again
#: (the trace is locally miss-heavy; rescanning every access would make
#: the fast path a slowdown).
BATCH_BACKOFF = 64


def issue_times(t0: float, gaps_ns: np.ndarray) -> np.ndarray:
    """Event-path issue times for a run whose first access issues now.

    The event engine computes each attempt time as the chained float
    sum ``t[j] = t[j-1] + gaps_ns[j]``; ``np.cumsum`` performs the same
    left-to-right sequential adds (unlike ``np.sum``'s pairwise tree),
    so every element is bit-identical to the scalar chain.

    ``gaps_ns`` holds the gaps of accesses 1..m of the run (the first
    access's gap already elapsed — it issues at ``t0``); the result has
    ``len(gaps_ns) + 1`` elements.
    """
    out = np.empty(len(gaps_ns) + 1, dtype=np.float64)
    out[0] = t0
    out[1:] = gaps_ns
    np.cumsum(out, out=out)
    return out


def window_admissible(
    t: np.ndarray, l1_hit_ns: float, window: int
) -> np.ndarray:
    """Per-access window check for an all-hit demand run.

    With zero outstanding accesses at ``t[0]``, the demand accesses in
    flight when access ``j`` attempts to issue are exactly
    ``#{m < j : t[m] + l1_hit_ns > t[j]}`` — *strictly* later
    completions only, because the event engine fires a completion
    scheduled for the same instant before the issue attempt (the
    completion was scheduled earlier, so it carries the lower tie-break
    sequence number).  ``searchsorted`` on the (sorted) completion
    times counts the complement in O(n log n).

    Entries past the first ``False`` are meaningless (they assume every
    earlier access issued as an unstalled hit); callers must cut at the
    first failure via :func:`run_length`.
    """
    completed = np.searchsorted(t + l1_hit_ns, t, side="right")
    in_flight = np.arange(len(t)) - completed
    return in_flight < window


def run_length(ok: np.ndarray) -> int:
    """Length of the leading all-True prefix of a boolean mask."""
    if ok.all():
        return len(ok)
    return int(np.argmin(ok))
