"""Trace-driven cache/MSHR/prefetcher/memory simulator.

This package is the reproduction's stand-in for both the hardware
performance counters and the "Cray/HPE proprietary cycle-level
simulator" the paper uses for validation (see DESIGN.md §2).
"""

from .cache import CacheArray
from .coltrace import (
    AccessColumns,
    AnyTrace,
    ColumnarThreadTrace,
    ColumnarTrace,
    as_columnar,
    as_object_trace,
    columnar_trace,
    concat_columns,
    interleave_columns,
    trace_digest,
)
from .engine import Engine
from .hierarchy import Hierarchy, SimConfig, run_trace
from .memctrl import MemoryController
from .mshr import MshrEntry, MshrFile
from .prefetcher import StreamPrefetcher
from .stats import (
    CoreStats,
    LevelStats,
    MemoryStats,
    OccupancyTracker,
    SimStats,
)
from .tlb import Tlb, TlbStats
from .trace import Access, AccessKind, ThreadTrace, Trace, trace_from_addresses

__all__ = [
    "Access",
    "AccessColumns",
    "AccessKind",
    "AnyTrace",
    "CacheArray",
    "ColumnarThreadTrace",
    "ColumnarTrace",
    "CoreStats",
    "Engine",
    "Hierarchy",
    "LevelStats",
    "MemoryController",
    "MemoryStats",
    "MshrEntry",
    "MshrFile",
    "OccupancyTracker",
    "SimConfig",
    "SimStats",
    "StreamPrefetcher",
    "ThreadTrace",
    "Tlb",
    "TlbStats",
    "Trace",
    "as_columnar",
    "as_object_trace",
    "columnar_trace",
    "concat_columns",
    "interleave_columns",
    "run_trace",
    "trace_digest",
    "trace_from_addresses",
]
