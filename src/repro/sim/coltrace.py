"""Columnar (structure-of-arrays) trace representation.

The object layer in :mod:`repro.sim.trace` models a trace as a tuple of
frozen :class:`~repro.sim.trace.Access` dataclasses — convenient for
small fixtures, but every generated access pays CPython object overhead
three times over: once at generation, once when the perf-cache digests
the trace, and once per issued operation in the simulator.  This module
is the production-scale representation: per thread, three parallel
numpy arrays

* ``addr`` — byte addresses, little-endian ``uint64``;
* ``kind`` — :class:`~repro.sim.trace.AccessKind` codes, ``uint8``
  (see :data:`KIND_CODES`);
* ``gap_cycles`` — independent-work cycles before each access,
  little-endian ``float64``.

Conversion to and from the object API is lossless
(:meth:`ColumnarTrace.from_trace` / :meth:`ColumnarTrace.to_trace`),
and :attr:`ColumnarThreadTrace.accesses` is a lazy compatibility view
that materializes ``Access`` tuples only when something actually asks
for them.  :func:`trace_digest` hashes the canonical array bytes
directly (zero-copy via the buffer protocol), so cache keying no longer
walks the trace in Python; the same function digests object traces by
converting them first, which keeps the two representations
digest-compatible by construction.

Array dtypes are pinned to explicit little-endian forms so digests and
on-disk trace files (:mod:`repro.io.tracefile`) are identical across
platforms.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from ..errors import TraceError
from .trace import Access, AccessKind, ThreadTrace, Trace

#: Canonical on-wire dtypes (explicit little-endian: digest/file stable).
ADDR_DTYPE = np.dtype("<u8")
KIND_DTYPE = np.dtype("|u1")
GAP_DTYPE = np.dtype("<f8")

#: AccessKind -> uint8 code.  Demand kinds come first so a simple
#: ``code < _FIRST_PREFETCH_CODE`` test classifies demand vs prefetch.
KIND_CODES = {
    AccessKind.LOAD: 0,
    AccessKind.STORE: 1,
    AccessKind.SWPF_L1: 2,
    AccessKind.SWPF_L2: 3,
}

#: uint8 code -> AccessKind (index with the code).
KINDS_BY_CODE: Tuple[AccessKind, ...] = (
    AccessKind.LOAD,
    AccessKind.STORE,
    AccessKind.SWPF_L1,
    AccessKind.SWPF_L2,
)

_FIRST_PREFETCH_CODE = KIND_CODES[AccessKind.SWPF_L1]

#: Version tag mixed into every trace digest; bump when the canonical
#: byte layout below changes.
TRACE_DIGEST_SCHEMA = "repro-coltrace-v1"


def _as_addr_array(addr: np.ndarray) -> np.ndarray:
    """Coerce to the canonical address array, rejecting negatives."""
    arr = np.asarray(addr)
    if arr.ndim != 1:
        raise TraceError(f"addr must be 1-D, got shape {arr.shape}")
    if np.issubdtype(arr.dtype, np.signedinteger) and arr.size and arr.min() < 0:
        raise TraceError(f"negative address {int(arr.min())}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TraceError(f"addr must be an integer array, got {arr.dtype}")
    return np.ascontiguousarray(arr.astype(ADDR_DTYPE, copy=False))


def _as_kind_array(kind: np.ndarray) -> np.ndarray:
    """Coerce to the canonical kind-code array, rejecting unknown codes."""
    arr = np.asarray(kind)
    if arr.ndim != 1:
        raise TraceError(f"kind must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TraceError(f"kind must be an integer array, got {arr.dtype}")
    if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= len(KINDS_BY_CODE)):
        raise TraceError(
            f"kind codes must be in 0..{len(KINDS_BY_CODE) - 1} "
            f"(got {int(arr.min())}..{int(arr.max())})"
        )
    return np.ascontiguousarray(arr.astype(KIND_DTYPE, copy=False))


def _as_gap_array(gap: np.ndarray) -> np.ndarray:
    """Coerce to the canonical gap array, rejecting negatives."""
    arr = np.asarray(gap)
    if arr.ndim != 1:
        raise TraceError(f"gap_cycles must be 1-D, got shape {arr.shape}")
    out = np.ascontiguousarray(arr.astype(GAP_DTYPE, copy=False))
    if out.size and np.nanmin(out) < 0:
        raise TraceError(f"negative gap {float(np.nanmin(out))}")
    return out


@dataclass(eq=False)
class AccessColumns:
    """A run of accesses as three parallel arrays (the generator unit).

    This is the mutable building block the workload generators emit and
    combine (:func:`concat_columns` / :func:`interleave_columns`); a
    finished per-thread run becomes an immutable
    :class:`ColumnarThreadTrace`.  Iteration and indexing materialize
    :class:`~repro.sim.trace.Access` objects for compatibility and
    tests — never use them on a hot path.
    """

    addr: np.ndarray
    kind: np.ndarray
    gap_cycles: np.ndarray

    def __post_init__(self) -> None:
        self.addr = _as_addr_array(self.addr)
        self.kind = _as_kind_array(self.kind)
        self.gap_cycles = _as_gap_array(self.gap_cycles)
        if not (len(self.addr) == len(self.kind) == len(self.gap_cycles)):
            raise TraceError(
                "column length mismatch: "
                f"addr={len(self.addr)} kind={len(self.kind)} "
                f"gap={len(self.gap_cycles)}"
            )

    @classmethod
    def empty(cls) -> "AccessColumns":
        """A zero-length run."""
        return cls(
            np.empty(0, ADDR_DTYPE), np.empty(0, KIND_DTYPE), np.empty(0, GAP_DTYPE)
        )

    @classmethod
    def from_accesses(cls, accesses: Sequence[Access]) -> "AccessColumns":
        """Columnarize a sequence of ``Access`` records (lossless)."""
        n = len(accesses)
        try:
            addr = np.fromiter((a.addr for a in accesses), ADDR_DTYPE, count=n)
        except OverflowError as exc:
            raise TraceError(f"address does not fit uint64: {exc}") from None
        codes = KIND_CODES
        kind = np.fromiter((codes[a.kind] for a in accesses), KIND_DTYPE, count=n)
        gap = np.fromiter((a.gap_cycles for a in accesses), GAP_DTYPE, count=n)
        return cls(addr, kind, gap)

    def __len__(self) -> int:
        return len(self.addr)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[Access, "AccessColumns"]:
        if isinstance(index, slice):
            return AccessColumns(
                self.addr[index], self.kind[index], self.gap_cycles[index]
            )
        return Access(
            int(self.addr[index]),
            KINDS_BY_CODE[int(self.kind[index])],
            float(self.gap_cycles[index]),
        )

    def __iter__(self) -> Iterator[Access]:
        kinds = KINDS_BY_CODE
        for a, k, g in zip(
            self.addr.tolist(), self.kind.tolist(), self.gap_cycles.tolist()
        ):
            yield Access(a, kinds[k], g)

    def to_accesses(self) -> Tuple[Access, ...]:
        """Materialize the whole run as ``Access`` objects."""
        return tuple(self)


def concat_columns(runs: Sequence[AccessColumns]) -> AccessColumns:
    """Concatenate runs in order into one run."""
    if not runs:
        return AccessColumns.empty()
    return AccessColumns(
        np.concatenate([r.addr for r in runs]),
        np.concatenate([r.kind for r in runs]),
        np.concatenate([r.gap_cycles for r in runs]),
    )


def interleave_columns(
    major: AccessColumns, minor: AccessColumns, *, period: int
) -> AccessColumns:
    """Sprinkle ``minor`` through ``major``: one insert per ``period``.

    Mirrors the workload modules' historical merge loops exactly: the
    j-th minor element lands after major element ``(j+1)*period - 1``;
    once the major run (or the insertion budget) is exhausted, leftover
    minor elements are appended at the end.
    """
    if period <= 0:
        raise TraceError("period must be positive")
    n_major, n_minor = len(major), len(minor)
    n_inserted = min(n_minor, n_major // period)
    total = n_major + n_minor
    minor_positions = np.arange(1, n_inserted + 1) * (period + 1) - 1
    is_minor = np.zeros(total, dtype=bool)
    is_minor[minor_positions] = True
    tail = n_minor - n_inserted
    if tail:
        is_minor[total - tail :] = True
    columns = {
        "addr": np.empty(total, ADDR_DTYPE),
        "kind": np.empty(total, KIND_DTYPE),
        "gap_cycles": np.empty(total, GAP_DTYPE),
    }
    for name, column in columns.items():
        column[is_minor] = getattr(minor, name)
        column[~is_minor] = getattr(major, name)
    return AccessColumns(**columns)


@dataclass(frozen=True, eq=False)
class ColumnarThreadTrace:
    """One hardware thread's trace as structure-of-arrays.

    API-compatible with :class:`~repro.sim.trace.ThreadTrace`
    (``thread_id``, ``len()``, ``demand_count``, ``accesses``) so
    downstream consumers duck-type across representations; the arrays
    themselves are the fast path.  Arrays are coerced to the canonical
    dtypes and marked read-only at construction — a trace is content,
    and the perf-cache digest depends on it never changing.
    """

    thread_id: int
    addr: np.ndarray
    kind: np.ndarray
    gap_cycles: np.ndarray

    def __post_init__(self) -> None:
        if self.thread_id < 0:
            raise TraceError("thread_id must be >= 0")
        setattr_ = object.__setattr__
        setattr_(self, "addr", _as_addr_array(self.addr))
        setattr_(self, "kind", _as_kind_array(self.kind))
        setattr_(self, "gap_cycles", _as_gap_array(self.gap_cycles))
        if not (len(self.addr) == len(self.kind) == len(self.gap_cycles)):
            raise TraceError(
                "column length mismatch: "
                f"addr={len(self.addr)} kind={len(self.kind)} "
                f"gap={len(self.gap_cycles)}"
            )
        for arr in (self.addr, self.kind, self.gap_cycles):
            arr.setflags(write=False)
        # Demand codes sort below prefetch codes; count once, O(n) total.
        setattr_(
            self,
            "_demand_count",
            int(np.count_nonzero(self.kind < _FIRST_PREFETCH_CODE)),
        )

    @classmethod
    def from_columns(cls, thread_id: int, columns: AccessColumns) -> "ColumnarThreadTrace":
        """Freeze a generator run into a thread trace."""
        return cls(thread_id, columns.addr, columns.kind, columns.gap_cycles)

    @classmethod
    def from_thread_trace(cls, thread: ThreadTrace) -> "ColumnarThreadTrace":
        """Lossless conversion from the object representation."""
        columns = AccessColumns.from_accesses(thread.accesses)
        return cls.from_columns(thread.thread_id, columns)

    def to_thread_trace(self) -> ThreadTrace:
        """Lossless conversion to the object representation."""
        return ThreadTrace(thread_id=self.thread_id, accesses=self.accesses)

    def __len__(self) -> int:
        return len(self.addr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarThreadTrace):
            return NotImplemented
        return (
            self.thread_id == other.thread_id
            and np.array_equal(self.addr, other.addr)
            and np.array_equal(self.kind, other.kind)
            and np.array_equal(self.gap_cycles, other.gap_cycles)
        )

    @property
    def demand_count(self) -> int:
        """Demand (non-prefetch) accesses (counted once at construction)."""
        return self._demand_count  # type: ignore[attr-defined, no-any-return]

    @property
    def accesses(self) -> Tuple[Access, ...]:
        """Lazy object-API view; built on first use, then cached."""
        cached = self.__dict__.get("_accesses")
        if cached is None:
            kinds = KINDS_BY_CODE
            cached = tuple(
                Access(a, kinds[k], g)
                for a, k, g in zip(
                    self.addr.tolist(), self.kind.tolist(), self.gap_cycles.tolist()
                )
            )
            object.__setattr__(self, "_accesses", cached)
        return cached

    def issue_columns(self) -> Tuple[List[int], List[AccessKind], List[float]]:
        """Plain-Python parallel lists for the simulator's issue loop.

        One ``tolist()`` per column replaces per-access ``Access``
        materialization: the driver then indexes ints, shared
        ``AccessKind`` singletons, and floats.  Cached per thread trace.
        """
        cols = self.__dict__.get("_issue_columns")
        if cols is None:
            kinds = KINDS_BY_CODE
            cols = (
                self.addr.tolist(),
                [kinds[c] for c in self.kind.tolist()],
                self.gap_cycles.tolist(),
            )
            object.__setattr__(self, "_issue_columns", cols)
        return cols  # type: ignore[no-any-return]


@dataclass(frozen=True, eq=False)
class ColumnarTrace:
    """A multi-threaded columnar trace (SoA sibling of :class:`Trace`)."""

    threads: Tuple[ColumnarThreadTrace, ...]
    routine: str = "kernel"
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not self.threads:
            raise TraceError("trace must contain at least one thread")
        ids = [t.thread_id for t in self.threads]
        if len(set(ids)) != len(ids):
            raise TraceError("duplicate thread ids in trace")
        if self.line_bytes <= 0:
            raise TraceError("line_bytes must be positive")
        object.__setattr__(
            self, "_total_accesses", sum(len(t) for t in self.threads)
        )
        object.__setattr__(
            self, "_total_demand", sum(t.demand_count for t in self.threads)
        )

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Lossless conversion from the object representation."""
        return cls(
            threads=tuple(
                ColumnarThreadTrace.from_thread_trace(t) for t in trace.threads
            ),
            routine=trace.routine,
            line_bytes=trace.line_bytes,
        )

    def to_trace(self) -> Trace:
        """Lossless conversion to the object representation."""
        return Trace(
            threads=tuple(t.to_thread_trace() for t in self.threads),
            routine=self.routine,
            line_bytes=self.line_bytes,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        return (
            self.routine == other.routine
            and self.line_bytes == other.line_bytes
            and self.threads == other.threads
        )

    @property
    def total_accesses(self) -> int:
        """All accesses across threads (counted once at construction)."""
        return self._total_accesses  # type: ignore[attr-defined, no-any-return]

    @property
    def total_demand(self) -> int:
        """All demand accesses across threads (counted once at construction)."""
        return self._total_demand  # type: ignore[attr-defined, no-any-return]


#: Either trace representation; the simulator and perf cache accept both.
AnyTrace = Union[Trace, ColumnarTrace]


def as_columnar(trace: AnyTrace) -> ColumnarTrace:
    """The columnar form of either representation (no-op when already so)."""
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_trace(trace)


def as_object_trace(trace: AnyTrace) -> Trace:
    """The object form of either representation (no-op when already so)."""
    if isinstance(trace, ColumnarTrace):
        return trace.to_trace()
    return trace


def columnar_trace(
    columns_per_thread: Sequence[AccessColumns],
    *,
    routine: str = "kernel",
    line_bytes: int = 64,
) -> ColumnarTrace:
    """Convenience: one trace from per-thread generator runs, ids 0..n-1."""
    return ColumnarTrace(
        threads=tuple(
            ColumnarThreadTrace.from_columns(i, cols)
            for i, cols in enumerate(columns_per_thread)
        ),
        routine=routine,
        line_bytes=line_bytes,
    )


def trace_digest(trace: AnyTrace) -> str:
    """SHA-256 of a trace's complete physical content, zero-copy.

    The digest covers a canonical JSON header (schema tag, routine,
    line size, per-thread ids and lengths) followed by each thread's
    raw array bytes prefixed with their dtype — so any address, kind,
    gap, thread id, thread order, or length change produces a new
    digest, while the bytes themselves are hashed straight out of the
    arrays via the buffer protocol (works unchanged on mmap-backed
    arrays from :mod:`repro.io.tracefile`).

    Both representations digest identically: object traces are
    converted to columnar form first, so
    ``trace_digest(t) == trace_digest(ColumnarTrace.from_trace(t))``
    holds by construction.
    """
    col = as_columnar(trace)
    hasher = hashlib.sha256()
    header = {
        "schema": TRACE_DIGEST_SCHEMA,
        "routine": col.routine,
        "line_bytes": col.line_bytes,
        "threads": [[t.thread_id, len(t)] for t in col.threads],
    }
    hasher.update(
        json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    for thread in col.threads:
        for arr in (thread.addr, thread.kind, thread.gap_cycles):
            hasher.update(f"|{arr.dtype.str}:{arr.size}|".encode("ascii"))
            hasher.update(memoryview(np.ascontiguousarray(arr)))
    return hasher.hexdigest()
