"""Miss Status Handling Register (MSHR) file.

The MSHR file is the structure the whole paper revolves around: every
unique outstanding miss at a cache level holds one MSHR from allocation
until fill, so its time-average occupancy *is* the level's MLP
(Section III-A).  This implementation tracks, per file:

* entries keyed by line address, with secondary misses **merged** onto
  the primary (duplicate requests never allocate a second MSHR, exactly
  as the paper describes),
* a time-weighted occupancy integral (ground truth for ``n_avg``),
* full-stall time and a waiter list so the core/prefetcher can retry
  when an entry frees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from .stats import OccupancyTracker


@dataclass(slots=True)
class MshrEntry:
    """One in-flight miss: the primary request plus merged waiters.

    Allocated once per unique outstanding miss — the hottest allocation
    in the simulator — hence ``slots=True``.
    """

    line_addr: int
    is_prefetch: bool
    issued_ns: float
    #: Callbacks to run when the fill arrives (merged secondary misses).
    waiters: List[Callable[[], None]] = field(default_factory=list)

    def merge(self, on_fill: Optional[Callable[[], None]], *, demand: bool) -> None:
        """Attach a secondary miss; a demand merge upgrades a prefetch entry."""
        if on_fill is not None:
            self.waiters.append(on_fill)
        if demand:
            self.is_prefetch = False


class MshrFile:
    """A fixed-capacity MSHR file for one cache level of one core."""

    __slots__ = (
        "name",
        "capacity",
        "entries",
        "tracker",
        "_free_waiters",
        "allocations",
        "merges",
        "_audit",
        "_faults",
        "_staged",
    )

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError(f"{name}: MSHR capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.entries: Dict[int, MshrEntry] = {}
        self.tracker = OccupancyTracker(name=name, capacity=capacity)
        self._free_waiters: List[Callable[[], None]] = []
        self.allocations = 0
        self.merges = 0
        #: Optional sanitizer QueueAudit (set by RunSanitizer).
        self._audit = None
        # The mshr_leak fault is resolved once per file: release() is a
        # hot path, so the armed-or-not decision must not re-consult the
        # global injector per call.
        from ..resilience.faults import get_injector

        injector = get_injector()
        self._faults = injector if injector.armed("mshr_leak") else None
        #: Allocations staged by :meth:`allocate_batch`, applied (merged
        #: with their releases in event order) by :meth:`release_batch`.
        self._staged: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- queries ---------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Entries currently in flight."""
        return len(self.entries)

    @property
    def is_full(self) -> bool:
        """No free entries remain."""
        return len(self.entries) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[MshrEntry]:
        """Existing in-flight entry for ``line_addr``, if any."""
        return self.entries.get(line_addr)

    # -- state changes ----------------------------------------------------------

    def allocate(
        self, now_ns: float, line_addr: int, *, is_prefetch: bool
    ) -> MshrEntry:
        """Allocate an MSHR; caller must have checked :attr:`is_full`."""
        if line_addr in self.entries:
            raise SimulationError(
                f"{self.name}: duplicate allocation for line {line_addr:#x}"
            )
        if self.is_full:
            raise SimulationError(f"{self.name}: allocate on full MSHR file")
        entry = MshrEntry(line_addr=line_addr, is_prefetch=is_prefetch, issued_ns=now_ns)
        self.tracker.add(now_ns, +1)
        self.entries[line_addr] = entry
        self.allocations += 1
        if self._audit is not None:
            self._audit.enter(now_ns, line_addr)
        return entry

    def merge(
        self,
        line_addr: int,
        on_fill: Optional[Callable[[], None]],
        *,
        demand: bool,
    ) -> MshrEntry:
        """Merge a secondary miss onto the in-flight entry for the line."""
        entry = self.entries.get(line_addr)
        if entry is None:
            raise SimulationError(f"{self.name}: merge with no entry for {line_addr:#x}")
        entry.merge(on_fill, demand=demand)
        self.merges += 1
        return entry

    def release(self, now_ns: float, line_addr: int) -> MshrEntry:
        """Free the MSHR on fill and return the entry (with its waiters).

        Also wakes anyone blocked on a full file (core issue stalls).
        """
        if self._faults is not None and self._faults.fires(
            "mshr_leak", f"{self.name}:{line_addr:#x}"
        ):
            # Injected leak: hand the entry back (fills still propagate)
            # but skip every piece of release bookkeeping — the entry
            # stays resident, the tracker and audit never see the exit.
            entry = self.entries.get(line_addr)
            if entry is not None:
                return entry
        entry = self.entries.pop(line_addr, None)
        if entry is None:
            raise SimulationError(
                f"{self.name}: release with no entry for {line_addr:#x}"
            )
        self.tracker.add(now_ns, -1)
        if self._audit is not None:
            self._audit.exit(now_ns, line_addr)
        if self._free_waiters:
            waiters, self._free_waiters = self._free_waiters, []
            for waiter in waiters:
                waiter()
        return entry

    def wait_for_free(self, callback: Callable[[], None]) -> None:
        """Register a retry callback for when any MSHR frees."""
        self._free_waiters.append(callback)

    # -- vectorized batch surface (batch-stepping miss fast path) --------------

    def allocate_batch(self, times_ns: np.ndarray, line_addrs: np.ndarray) -> None:
        """Stage a run of allocations whose releases are already planned.

        The occupancy accounting (tracker integral, full time, peak,
        audit) is applied by the matching :meth:`release_batch` call,
        which merges allocations and releases into event-engine firing
        order — an allocation alone says nothing about how occupancy
        integrates against the releases interleaved with it.  The caller
        owns the batch preconditions: ``times_ns`` are the exact
        event-path allocation instants in issue order (nondecreasing),
        and the lines are unique and absent from the live entries.
        """
        if self._staged is not None:
            raise SimulationError(
                f"{self.name}: allocate_batch while a batch is already staged"
            )
        n = len(times_ns)
        if n != len(line_addrs):
            raise SimulationError(f"{self.name}: batch times/lines length mismatch")
        if n:
            if np.any(times_ns[1:] < times_ns[:-1]):
                raise SimulationError(
                    f"{self.name}: batch allocation times must be nondecreasing"
                )
            if len(np.unique(line_addrs)) != n:
                raise SimulationError(
                    f"{self.name}: duplicate line in batch allocation"
                )
            if self.entries:
                for line in line_addrs.tolist():
                    if line in self.entries:
                        raise SimulationError(
                            f"{self.name}: batch allocation collides with "
                            f"live entry {line:#x}"
                        )
        self._staged = (times_ns, line_addrs)
        self.allocations += n

    def release_batch(self, times_ns: np.ndarray) -> None:
        """Release the staged batch; applies the merged occupancy history.

        ``times_ns[i]`` is the event-path release instant of the
        ``i``-th staged allocation (strictly after it).  Allocations and
        releases are merged by time — equal-time releases keep issue
        order, matching the engine's sequence-number tie-break — and fed
        to :meth:`OccupancyTracker.add_batch` plus the sanitizer audit
        in that exact order, so integrals and audits are bit-identical
        to the scalar event path.  An allocation/release time collision
        is rejected: the engine's firing order there depends on
        scheduling history the batch cannot reconstruct, so the caller
        must cut the run before such a tie instead.
        """
        if self._staged is None:
            raise SimulationError(f"{self.name}: release_batch with nothing staged")
        alloc_times, lines = self._staged
        self._staged = None
        n = len(alloc_times)
        if len(times_ns) != n:
            raise SimulationError(f"{self.name}: batch release length mismatch")
        if n == 0:
            return
        if np.any(times_ns <= alloc_times):
            raise SimulationError(
                f"{self.name}: batch release at or before its allocation"
            )
        if len(np.intersect1d(alloc_times, times_ns)):
            raise SimulationError(
                f"{self.name}: allocation/release time collision in batch"
            )
        if self._free_waiters:
            raise SimulationError(
                f"{self.name}: batch release with stalled waiters pending"
            )
        order = np.argsort(times_ns, kind="stable")
        merged_t = np.concatenate([alloc_times, times_ns[order]])
        merged_delta = np.empty(2 * n, dtype=np.int64)
        merged_delta[:n] = 1
        merged_delta[n:] = -1
        merged_lines = np.concatenate([lines, lines[order]])
        fire = np.argsort(merged_t, kind="stable")
        self.tracker.add_batch(merged_t[fire], merged_delta[fire])
        if self._audit is not None:
            audit = self._audit
            for t, delta, line in zip(
                merged_t[fire].tolist(),
                merged_delta[fire].tolist(),
                merged_lines[fire].tolist(),
            ):
                if delta > 0:
                    audit.enter(t, line, site="allocate_batch")
                else:
                    audit.exit(t, line)
