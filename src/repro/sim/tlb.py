"""TLB and page-table-walk modeling (paper footnote 4).

The paper notes that its bandwidth counters "also include memory
traffic due to page table walks from memory, and thus contribution of
the most expensive TLB misses towards bandwidth utilization (and
therefore latency) is accounted for in this way".  This optional
component gives the simulator the same behaviour:

* a per-core, fully-associative (set-of-pages) TLB with LRU
  replacement;
* on a TLB miss, a page-walk **memory read** is issued before the
  demand access proceeds, adding both latency to the access and bytes
  to the bandwidth counters — which is exactly why random-access
  workloads (ISx) show inflated per-load latencies on the PEBS counter
  while the bandwidth-based method absorbs the walk traffic correctly.

The model walks one level (the leaf PTE) per miss; upper levels are
assumed cached, which matches the dominant cost on the paper's 4 KiB /
large-page mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import SimulationError


@dataclass
class TlbStats:
    """Counters for one TLB."""

    hits: int = 0
    misses: int = 0
    walks_issued: int = 0

    @property
    def miss_rate(self) -> float:
        """TLB miss rate."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class Tlb:
    """Per-core TLB with true-LRU replacement at page granularity."""

    def __init__(self, entries: int, *, page_bytes: int = 4096) -> None:
        if entries <= 0:
            raise SimulationError("TLB must have at least one entry")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise SimulationError("page size must be a positive power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: List[int] = []  # LRU order, front = LRU
        # Sorted resident-page snapshot for probe_batch; None = stale.
        # Hits (and touch_batch) only reorder LRU, so all-hit phases
        # reuse one snapshot; miss installs/evictions invalidate it.
        self._probe_cache: Optional[np.ndarray] = None
        # Verified all-hit runs whose LRU replay is deferred: hits only
        # reorder LRU (unobservable until the next miss must evict), so
        # runs queue here and replay in one pass via flush_batch().
        self._pending: List[np.ndarray] = []
        self.stats = TlbStats()
        #: Optional sanitizer replay checker (set by RunSanitizer).
        self._sanitizer = None

    def page_of(self, addr: int) -> int:
        """Page number containing byte ``addr``."""
        return addr // self.page_bytes

    def access(self, addr: int) -> bool:
        """Translate; returns True on hit, False on miss (after install).

        A miss installs the translation (the walk result) immediately;
        the *timing* of the walk is the caller's responsibility (the
        hierarchy issues the walk's memory read).
        """
        if self._pending:
            self.flush_batch()
        page = self.page_of(addr)
        try:
            self._pages.remove(page)
            self._pages.append(page)
            self.stats.hits += 1
            return True
        except ValueError:
            pass
        self.stats.misses += 1
        self._probe_cache = None
        if len(self._pages) >= self.entries:
            self._pages.pop(0)
        self._pages.append(page)
        return False

    # -- vectorized probe surface (batch-stepping fast path) -------------------

    def probe_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized translation probe: per-element hit, no state change.

        Exact for a run of accesses as long as residency does not change
        mid-run — TLB hits only reorder LRU, so the answer holds up to
        (and including) the first miss.
        """
        pages = addrs // self.page_bytes
        table = self._probe_cache
        if table is None:
            table = np.sort(np.asarray(self._pages, dtype=np.uint64))
            self._probe_cache = table
        if not len(table):
            return np.zeros(len(pages), dtype=bool)
        idx = np.searchsorted(table, pages)
        np.minimum(idx, len(table) - 1, out=idx)
        return table[idx] == pages

    def touch_batch(self, addrs: np.ndarray) -> None:
        """Queue a verified all-hit run: LRU reorder plus hit counts.

        Equivalent to sequential :meth:`access` calls that all hit: the
        touched pages move to the MRU end in last-touch order.  Every
        page must currently be resident (established via
        :meth:`probe_batch`); otherwise :class:`SimulationError` at
        replay.  The reorder is deferred like
        :meth:`repro.sim.cache.CacheArray.touch_batch` — consecutive
        runs replay as one concatenated pass on the next :meth:`access`
        or explicit :meth:`flush_batch`; hit counts post immediately.
        """
        if len(addrs):
            if self._sanitizer is not None:
                self._sanitizer.on_touch(addrs)
            self._pending.append(addrs)
            self.stats.hits += len(addrs)

    def flush_batch(self) -> None:
        """Replay any queued all-hit runs onto the LRU order."""
        if not self._pending:
            return
        pending = self._pending
        self._pending = []
        addrs = pending[0] if len(pending) == 1 else np.concatenate(pending)
        pages = addrs // self.page_bytes
        uniq, first_rev = np.unique(pages[::-1], return_index=True)
        last_order = uniq[np.argsort(-first_rev)].tolist()
        touched = set(last_order)
        kept = [p for p in self._pages if p not in touched]
        if len(kept) + len(last_order) != len(self._pages):
            raise SimulationError(
                f"TLB touch_batch on non-resident page(s): "
                f"{sorted(touched - set(self._pages))}"
            )
        self._pages = kept + last_order
        if self._sanitizer is not None:
            self._sanitizer.on_flush()

    def pte_address(self, addr: int, *, pte_region_base: int = 1 << 44) -> int:
        """Synthetic leaf-PTE address for the page containing ``addr``.

        Placed in a reserved high region so walk traffic never collides
        with application data, 8 bytes per page.
        """
        return pte_region_base + self.page_of(addr) * 8

    @property
    def resident_pages(self) -> int:
        """Translations currently cached."""
        return len(self._pages)
