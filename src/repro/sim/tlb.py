"""TLB and page-table-walk modeling (paper footnote 4).

The paper notes that its bandwidth counters "also include memory
traffic due to page table walks from memory, and thus contribution of
the most expensive TLB misses towards bandwidth utilization (and
therefore latency) is accounted for in this way".  This optional
component gives the simulator the same behaviour:

* a per-core, fully-associative (set-of-pages) TLB with LRU
  replacement;
* on a TLB miss, a page-walk **memory read** is issued before the
  demand access proceeds, adding both latency to the access and bytes
  to the bandwidth counters — which is exactly why random-access
  workloads (ISx) show inflated per-load latencies on the PEBS counter
  while the bandwidth-based method absorbs the walk traffic correctly.

The model walks one level (the leaf PTE) per miss; upper levels are
assumed cached, which matches the dominant cost on the paper's 4 KiB /
large-page mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import SimulationError


@dataclass
class TlbStats:
    """Counters for one TLB."""

    hits: int = 0
    misses: int = 0
    walks_issued: int = 0

    @property
    def miss_rate(self) -> float:
        """TLB miss rate."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class Tlb:
    """Per-core TLB with true-LRU replacement at page granularity."""

    def __init__(self, entries: int, *, page_bytes: int = 4096) -> None:
        if entries <= 0:
            raise SimulationError("TLB must have at least one entry")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise SimulationError("page size must be a positive power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: List[int] = []  # LRU order, front = LRU
        self.stats = TlbStats()

    def page_of(self, addr: int) -> int:
        """Page number containing byte ``addr``."""
        return addr // self.page_bytes

    def access(self, addr: int) -> bool:
        """Translate; returns True on hit, False on miss (after install).

        A miss installs the translation (the walk result) immediately;
        the *timing* of the walk is the caller's responsibility (the
        hierarchy issues the walk's memory read).
        """
        page = self.page_of(addr)
        try:
            self._pages.remove(page)
            self._pages.append(page)
            self.stats.hits += 1
            return True
        except ValueError:
            pass
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.pop(0)
        self._pages.append(page)
        return False

    def pte_address(self, addr: int, *, pte_region_base: int = 1 << 44) -> int:
        """Synthetic leaf-PTE address for the page containing ``addr``.

        Placed in a reserved high region so walk traffic never collides
        with application data, 8 bytes per page.
        """
        return pte_region_base + self.page_of(addr) * 8

    @property
    def resident_pages(self) -> int:
        """Translations currently cached."""
        return len(self._pages)
