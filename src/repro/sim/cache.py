"""Set-associative cache arrays with true LRU replacement.

Only the tag arrays are modeled (no data).  The cache tracks dirtiness so
evictions of written lines produce writeback traffic — the paper notes
its bandwidth counters miss L3 writebacks and estimates them with
heuristics; our simulator counts them exactly, which is one of the
"simulator as counter oracle" advantages documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..machines.spec import CacheSpec


class CacheArray:
    """Tag array for one cache at one core (or core cluster)."""

    __slots__ = (
        "spec",
        "name",
        "num_sets",
        "ways",
        "line_bytes",
        "_sets",
        "fills",
        "evictions",
        "dirty_evictions",
    )

    def __init__(self, spec: CacheSpec, name: str) -> None:
        self.spec = spec
        self.name = name
        self.num_sets = spec.num_sets
        self.ways = spec.associativity
        self.line_bytes = spec.line_bytes
        # Per set: list of (line_addr, dirty) in LRU order (front = LRU).
        self._sets: List[List[Tuple[int, bool]]] = [[] for _ in range(self.num_sets)]
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def line_of(self, addr: int) -> int:
        """Line address (aligned) containing byte ``addr``."""
        return (addr // self.line_bytes) * self.line_bytes

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    def probe(self, line_addr: int) -> bool:
        """Is the line present? (No LRU update — use :meth:`access`.)"""
        idx = self._set_index(line_addr)
        return any(tag == line_addr for tag, _ in self._sets[idx])

    def access(self, line_addr: int, *, write: bool = False) -> bool:
        """Look up a line; on hit, update LRU (and dirty bit for writes).

        Returns True on hit, False on miss.  Misses do not install the
        line — installation happens on fill via :meth:`fill`.
        """
        ways = self._sets[(line_addr // self.line_bytes) % self.num_sets]
        for i, (tag, dirty) in enumerate(ways):
            if tag == line_addr:
                del ways[i]
                ways.append((line_addr, dirty or write))
                return True
        return False

    def fill(self, line_addr: int, *, dirty: bool = False) -> Optional[int]:
        """Install a line; returns the evicted *dirty* line address, if any.

        Clean evictions return None (no writeback traffic).  Filling a
        line that is already present just refreshes its LRU position.
        """
        idx = self._set_index(line_addr)
        ways = self._sets[idx]
        for i, (tag, was_dirty) in enumerate(ways):
            if tag == line_addr:
                del ways[i]
                ways.append((line_addr, was_dirty or dirty))
                return None
        self.fills += 1
        victim_writeback: Optional[int] = None
        if len(ways) >= self.ways:
            victim_addr, victim_dirty = ways.pop(0)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
                victim_writeback = victim_addr
        ways.append((line_addr, dirty))
        return victim_writeback

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        idx = self._set_index(line_addr)
        ways = self._sets[idx]
        for i, (tag, _) in enumerate(ways):
            if tag == line_addr:
                del ways[i]
                return True
        return False

    def resident_lines(self) -> int:
        """Total lines currently resident (for tests)."""
        return sum(len(ways) for ways in self._sets)
