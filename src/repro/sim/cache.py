"""Set-associative cache arrays with true LRU replacement.

Only the tag arrays are modeled (no data).  The cache tracks dirtiness so
evictions of written lines produce writeback traffic — the paper notes
its bandwidth counters miss L3 writebacks and estimates them with
heuristics; our simulator counts them exactly, which is one of the
"simulator as counter oracle" advantages documented in DESIGN.md.

Besides the scalar per-access API the array exposes a **vectorized probe
surface** (:meth:`CacheArray.probe_batch` / :meth:`CacheArray.touch_batch`)
used by the batch-stepping fast path in :mod:`repro.sim.batch`: whole
address vectors are classified hit/miss against a residency snapshot in
one numpy pass, and a verified all-hit run is replayed onto the LRU
state in aggregate — element-for-element equivalent to sequential
:meth:`CacheArray.access` calls, including aliasing within the batch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..machines.spec import CacheSpec


class CacheArray:
    """Tag array for one cache at one core (or core cluster)."""

    __slots__ = (
        "spec",
        "name",
        "num_sets",
        "ways",
        "line_bytes",
        "_sets",
        "_resident_cache",
        "_pending",
        "fills",
        "evictions",
        "dirty_evictions",
        "_sanitizer",
        "_faults",
        "_flushes",
        "maybe_dirty",
    )

    def __init__(self, spec: CacheSpec, name: str) -> None:
        self.spec = spec
        self.name = name
        self.num_sets = spec.num_sets
        self.ways = spec.associativity
        self.line_bytes = spec.line_bytes
        # Per set: list of (line_addr, dirty) in LRU order (front = LRU).
        self._sets: List[List[Tuple[int, bool]]] = [[] for _ in range(self.num_sets)]
        # Sorted resident-line snapshot for probe_batch; None = stale.
        # Only fill/invalidate change membership (hits merely reorder),
        # so all-hit phases reuse one snapshot across many batches.
        self._resident_cache: Optional[np.ndarray] = None
        # Verified all-hit runs whose LRU/dirty replay is deferred: while
        # only hits occur, LRU order is unobservable (membership alone
        # decides hit/miss), so runs queue here and are replayed in one
        # concatenated pass the moment scalar state is needed again.
        self._pending: List[Tuple[np.ndarray, np.ndarray]] = []
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0
        #: Conservative sticky flag: set on any write access, dirty
        #: fill, or batched write touch; never cleared.  While False the
        #: array provably holds no dirty line, so fills cannot produce
        #: writebacks — a precondition of the batched miss fast path.
        self.maybe_dirty = False
        #: Optional sanitizer replay checker (set by RunSanitizer).
        self._sanitizer = None
        self._flushes = 0
        # replay_skip is resolved once per array (flush is on the batch
        # hot path); see MshrFile for the same pattern.
        from ..resilience.faults import get_injector

        injector = get_injector()
        self._faults = injector if injector.armed("replay_skip") else None

    def line_of(self, addr: int) -> int:
        """Line address (aligned) containing byte ``addr``."""
        return (addr // self.line_bytes) * self.line_bytes

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    def probe(self, line_addr: int) -> bool:
        """Is the line present? (No LRU update — use :meth:`access`.)"""
        idx = self._set_index(line_addr)
        return any(tag == line_addr for tag, _ in self._sets[idx])

    def access(self, line_addr: int, *, write: bool = False) -> bool:
        """Look up a line; on hit, update LRU (and dirty bit for writes).

        Returns True on hit, False on miss.  Misses do not install the
        line — installation happens on fill via :meth:`fill`.
        """
        if self._pending:
            self.flush_batch()
        if write:
            self.maybe_dirty = True
        ways = self._sets[(line_addr // self.line_bytes) % self.num_sets]
        for i, (tag, dirty) in enumerate(ways):
            if tag == line_addr:
                del ways[i]
                ways.append((line_addr, dirty or write))
                return True
        return False

    def fill(self, line_addr: int, *, dirty: bool = False) -> Optional[int]:
        """Install a line; returns the evicted *dirty* line address, if any.

        Clean evictions return None (no writeback traffic).  Filling a
        line that is already present just refreshes its LRU position.
        """
        if self._pending:
            self.flush_batch()
        if dirty:
            self.maybe_dirty = True
        idx = self._set_index(line_addr)
        ways = self._sets[idx]
        for i, (tag, was_dirty) in enumerate(ways):
            if tag == line_addr:
                del ways[i]
                ways.append((line_addr, was_dirty or dirty))
                return None
        self.fills += 1
        self._resident_cache = None
        victim_writeback: Optional[int] = None
        if len(ways) >= self.ways:
            victim_addr, victim_dirty = ways.pop(0)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
                victim_writeback = victim_addr
        ways.append((line_addr, dirty))
        return victim_writeback

    def fill_batch(self, line_addrs: np.ndarray) -> None:
        """Install a run of lines; equivalent to :meth:`fill` per element.

        Callers must guarantee the batched-miss-path preconditions:
        every line is currently absent, no line appears twice, and the
        array holds no dirty line (``maybe_dirty`` is False), so no
        eviction can produce a writeback.  Under those conditions the
        scalar :meth:`fill`'s presence scan always misses and its victim
        is always clean, so this reduces to the pure install/evict loop
        — same ``fills``/``evictions`` counters, same final LRU state.
        A dirty victim raises (the caller's precondition was violated).
        """
        if self._pending:
            self.flush_batch()
        if not len(line_addrs):
            return
        self.fills += len(line_addrs)
        self._resident_cache = None
        sets = self._sets
        ways_max = self.ways
        evictions = 0
        set_indices = (line_addrs // self.line_bytes % self.num_sets).tolist()
        for line, idx in zip(line_addrs.tolist(), set_indices):
            ways = sets[idx]
            if len(ways) >= ways_max:
                victim_addr, victim_dirty = ways.pop(0)
                evictions += 1
                if victim_dirty:
                    raise SimulationError(
                        f"{self.name}: fill_batch evicted dirty line "
                        f"{hex(victim_addr)} (clean-array precondition violated)"
                    )
            ways.append((line, False))
        self.evictions += evictions

    # -- vectorized probe surface (batch-stepping fast path) -------------------

    def line_of_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`line_of`: aligned line address per element."""
        return addrs // self.line_bytes * self.line_bytes

    def set_index_batch(self, line_addrs: np.ndarray) -> np.ndarray:
        """Vectorized set index per line address."""
        return (line_addrs // self.line_bytes) % self.num_sets

    def probe_batch(self, line_addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`probe`: per-element residency, no LRU update.

        The result answers "is this line resident *right now*" for every
        element against one snapshot.  Because a tag stored in ``_sets``
        is the full line address, global membership is exactly
        set-index + tag match.  For a run of accesses this equals the
        sequential answer as long as residency does not change mid-run —
        hits never install or evict, so the answer is exact up to (and
        including) the first miss.
        """
        table = self._resident_cache
        if table is None:
            resident = [tag for ways in self._sets for tag, _ in ways]
            table = np.sort(np.asarray(resident, dtype=np.uint64))
            self._resident_cache = table
        if not len(table):
            return np.zeros(len(line_addrs), dtype=bool)
        idx = np.searchsorted(table, line_addrs)
        np.minimum(idx, len(table) - 1, out=idx)
        return table[idx] == line_addrs

    def touch_batch(self, line_addrs: np.ndarray, writes: np.ndarray) -> None:
        """Queue a verified all-hit run for deferred LRU/dirty replay.

        Equivalent to ``access(line, write=w)`` per element in order:
        the final per-set LRU order is the untouched entries (old
        relative order) followed by the touched lines in last-touch
        order, and a touched line is dirty iff it was dirty before or
        any element of the batch wrote it.  Every line must currently be
        resident (the caller established that via :meth:`probe_batch`);
        a non-resident line raises :class:`SimulationError` at replay.

        The replay is *deferred*: while only hits occur, LRU order and
        dirty bits are unobservable, so consecutive runs accumulate and
        are replayed as one concatenated sequence (identical final
        state) when scalar state is next needed — on the next
        :meth:`access`/:meth:`fill`/:meth:`invalidate`, or an explicit
        :meth:`flush_batch`.
        """
        if len(line_addrs):
            if writes.any():
                self.maybe_dirty = True
            if self._sanitizer is not None:
                self._sanitizer.on_touch(line_addrs, writes)
            self._pending.append((line_addrs, writes))

    def flush_batch(self) -> None:
        """Replay any queued all-hit runs onto the LRU/dirty state."""
        if not self._pending:
            return
        pending = self._pending
        self._pending = []
        self._flushes += 1
        if self._faults is not None and self._faults.fires(
            "replay_skip", f"{self.name}:{self._flushes}"
        ):
            # Injected replay bug: silently drop the first queued run,
            # so the aggregate replay no longer matches a scalar
            # re-execution of the recorded touches.
            pending = pending[1:]
            if not pending:
                if self._sanitizer is not None:
                    self._sanitizer.on_flush()
                return
        if len(pending) == 1:
            line_addrs, writes = pending[0]
        else:
            line_addrs = np.concatenate([run[0] for run in pending])
            writes = np.concatenate([run[1] for run in pending])
        # Last-touch order: first occurrence in the reversed array is the
        # last occurrence in the original; sort unique lines by original
        # last-touch position (descending reversed index).
        uniq, first_rev = np.unique(line_addrs[::-1], return_index=True)
        order = np.argsort(-first_rev)
        last_order_arr = uniq[order]
        last_order = last_order_arr.tolist()
        written = (
            set(line_addrs[writes].tolist()) if writes.any() else frozenset()
        )
        touched = set(last_order)
        per_set: Dict[int, List[int]] = {}
        set_indices = (last_order_arr // self.line_bytes % self.num_sets).tolist()
        for set_idx, line in zip(set_indices, last_order):
            per_set.setdefault(set_idx, []).append(line)
        for set_idx, lines_in_set in per_set.items():
            ways = self._sets[set_idx]
            old_dirty: Dict[int, bool] = {}
            kept: List[Tuple[int, bool]] = []
            for tag, dirty in ways:
                if tag in touched:
                    old_dirty[tag] = dirty
                else:
                    kept.append((tag, dirty))
            if len(old_dirty) != len(lines_in_set):
                missing = [hex(li) for li in lines_in_set if li not in old_dirty]
                raise SimulationError(
                    f"{self.name}: touch_batch on non-resident line(s) "
                    f"{', '.join(missing)}"
                )
            kept.extend(
                (line, old_dirty[line] or line in written) for line in lines_in_set
            )
            self._sets[set_idx] = kept
        if self._sanitizer is not None:
            self._sanitizer.on_flush()

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        if self._pending:
            self.flush_batch()
        idx = self._set_index(line_addr)
        ways = self._sets[idx]
        for i, (tag, _) in enumerate(ways):
            if tag == line_addr:
                del ways[i]
                self._resident_cache = None
                return True
        return False

    def resident_lines(self) -> int:
        """Total lines currently resident (for tests)."""
        return sum(len(ways) for ways in self._sets)
