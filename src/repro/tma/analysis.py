"""TMA computed over simulator statistics — the paper's comparator.

This reimplements the parts of the Top-Down method the paper engages
with, **including its documented weaknesses**, so the experiments can
demonstrate them side by side with the MLP method:

* Backend Bound is derived from issue-stall time, which overlaps
  categories exactly the way the paper criticizes (a core may stall on
  issue while the memory system is perfectly utilized);
* Memory Bound splits into Bandwidth/Latency Bound by thresholding
  memory-controller occupancy (the paper found this split unhelpful on
  SNAP: "27% bandwidth bound and 23% latency bound" with no actionable
  story);
* the derived *average memory latency* metric samples only demand-load
  completion as the counter sees it, so prefetch-covered streaming
  loads report near-hit latencies (the paper's misleading "9 cycles"
  for SNAP / "32 cycles" for hpcg observations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..sim.stats import SimStats
from ..units import ns_to_cycles
from .categories import TmaBreakdown, TmaCategory

#: MC occupancy above which memory-bound cycles count as bandwidth bound.
BANDWIDTH_THRESHOLD = 0.70
#: Fixed small shares for the pipeline stages our simulator abstracts away.
FRONTEND_SHARE = 0.05
BAD_SPECULATION_SHARE = 0.03


@dataclass(frozen=True)
class TmaReport:
    """TMA output for one run: breakdown plus derived metrics."""

    breakdown: TmaBreakdown
    avg_reported_latency_cycles: float
    true_loaded_latency_cycles: float
    mc_utilization: float
    machine_name: str

    @property
    def latency_underreported(self) -> bool:
        """Did the derived latency metric miss the true loaded latency?"""
        if self.true_loaded_latency_cycles <= 0:
            return False
        return self.avg_reported_latency_cycles < 0.5 * self.true_loaded_latency_cycles

    def render(self) -> str:
        """Human-readable TMA report."""
        lines = [
            f"TMA report ({self.machine_name})",
            self.breakdown.render(),
            f"  derived avg memory latency: {self.avg_reported_latency_cycles:.0f} cycles",
            f"  true loaded latency:        {self.true_loaded_latency_cycles:.0f} cycles",
        ]
        if self.latency_underreported:
            lines.append(
                "  (!) derived latency far below true loaded latency - "
                "prefetch-covered loads mislead this metric"
            )
        return "\n".join(lines)


class TmaAnalysis:
    """Computes :class:`TmaReport` from a finished simulation run."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine

    def analyze(self, stats: SimStats) -> TmaReport:
        """Compute the TMA breakdown and derived metrics for one run."""
        if stats.elapsed_ns <= 0:
            raise ConfigurationError("run has no elapsed time")
        total_ns = stats.elapsed_ns * max(1, len(stats.cores))

        window_stall = sum(c.window_stall_ns for c in stats.cores)
        mshr_stall = sum(c.l1_mshr_stall_ns for c in stats.cores)
        memory_stall_frac = min(1.0, (window_stall + mshr_stall) / total_ns)

        backend = min(1.0 - FRONTEND_SHARE - BAD_SPECULATION_SHARE, memory_stall_frac + 0.05)
        retiring = max(0.0, 1.0 - FRONTEND_SHARE - BAD_SPECULATION_SHARE - backend)
        memory_bound = min(backend, memory_stall_frac)
        core_bound = backend - memory_bound

        mc_util = self._mc_utilization(stats)
        # TMA's threshold attribution: occupancy above the threshold
        # counts cycles as bandwidth bound; below it, proportionally.
        # The result is the murky mid-range split the paper criticizes
        # (SNAP: "27% bandwidth bound and 23% latency bound").
        if mc_util >= BANDWIDTH_THRESHOLD:
            over = (mc_util - BANDWIDTH_THRESHOLD) / (1.0 - BANDWIDTH_THRESHOLD)
            bw_share = 0.75 + 0.25 * over
        else:
            bw_share = 0.75 * mc_util / BANDWIDTH_THRESHOLD
        bandwidth_bound = memory_bound * bw_share
        latency_bound = memory_bound - bandwidth_bound

        fractions: Dict[TmaCategory, float] = {
            TmaCategory.RETIRING: retiring,
            TmaCategory.FRONTEND_BOUND: FRONTEND_SHARE,
            TmaCategory.BAD_SPECULATION: BAD_SPECULATION_SHARE,
            TmaCategory.BACKEND_BOUND: backend,
            TmaCategory.BACKEND_CORE: core_bound,
            TmaCategory.BACKEND_MEMORY: memory_bound,
            TmaCategory.MEMORY_BANDWIDTH: bandwidth_bound,
            TmaCategory.MEMORY_LATENCY: latency_bound,
        }

        return TmaReport(
            breakdown=TmaBreakdown(fractions),
            avg_reported_latency_cycles=self._reported_latency_cycles(stats),
            true_loaded_latency_cycles=ns_to_cycles(
                stats.memory.avg_latency_ns, self.machine.frequency_ghz
            ),
            mc_utilization=mc_util,
            machine_name=self.machine.name,
        )

    # -- pieces ------------------------------------------------------------------

    def _mc_utilization(self, stats: SimStats) -> float:
        slice_cores = max(1, len(stats.l1_occupancy))
        slice_peak = (
            self.machine.memory.peak_bw_bytes * slice_cores / self.machine.active_cores
        )
        return min(1.0, stats.bandwidth_bytes_per_s() / slice_peak)

    def _reported_latency_cycles(self, stats: SimStats) -> float:
        """The misleading derived latency: covered loads report hit cost.

        Demand loads that hit caches or in-flight prefetches complete in
        a handful of cycles and dominate the sampled average, while the
        (fewer) true memory loads carry the real loaded latency.
        """
        loads = stats.l1.hits + stats.l1.misses
        if loads == 0:
            return 0.0
        true_cycles = ns_to_cycles(
            stats.memory.avg_latency_ns, self.machine.frequency_ghz
        )
        covered = stats.memory.prefetch_fraction
        demand_miss_frac = stats.l1.misses / loads
        uncovered_miss_frac = demand_miss_frac * max(0.0, 1.0 - covered)
        hit_cycles = 6.0
        return (1.0 - uncovered_miss_frac) * hit_cycles + uncovered_miss_frac * true_cycles
