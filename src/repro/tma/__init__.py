"""Top-Down Microarchitectural Analysis baseline (the paper's comparator)."""

from .analysis import BANDWIDTH_THRESHOLD, TmaAnalysis, TmaReport
from .categories import TmaBreakdown, TmaCategory

__all__ = [
    "BANDWIDTH_THRESHOLD",
    "TmaAnalysis",
    "TmaBreakdown",
    "TmaCategory",
    "TmaReport",
]
