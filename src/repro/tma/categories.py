"""Top-Down Microarchitectural Analysis (TMA) category tree.

The four level-1 buckets of Yasin's TMA [1] with the level-2 split of
Backend Bound into Core Bound / Memory Bound, and the paper-relevant
level-3 split of Memory Bound into Bandwidth Bound / Latency Bound.
This is the comparator the paper critiques in Sections I–II; the
breakdown semantics implemented in :mod:`repro.tma.analysis`
intentionally carry the same ambiguities the paper documents
(threshold-based bandwidth/latency attribution, whole-program rather
than per-routine reporting, misleading average-latency metric).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping


class TmaCategory(enum.Enum):
    """TMA buckets, flattened with dotted paths."""

    RETIRING = "retiring"
    FRONTEND_BOUND = "frontend_bound"
    BAD_SPECULATION = "bad_speculation"
    BACKEND_BOUND = "backend_bound"
    BACKEND_CORE = "backend_bound.core_bound"
    BACKEND_MEMORY = "backend_bound.memory_bound"
    MEMORY_BANDWIDTH = "backend_bound.memory_bound.bandwidth_bound"
    MEMORY_LATENCY = "backend_bound.memory_bound.latency_bound"

    @property
    def level(self) -> int:
        """Depth in the TMA tree (1 = top)."""
        return self.value.count(".") + 1

    @property
    def parent(self) -> "TmaCategory | None":
        """Parent category, or None at level 1."""
        if "." not in self.value:
            return None
        return TmaCategory(self.value.rsplit(".", 1)[0])


@dataclass(frozen=True)
class TmaBreakdown:
    """Fractions per category (each level sums to ~1 within its parent)."""

    fractions: Mapping[TmaCategory, float]

    def __post_init__(self) -> None:
        for cat, frac in self.fractions.items():
            if not 0.0 <= frac <= 1.0 + 1e-9:
                raise ValueError(f"{cat.value}: fraction {frac} out of [0,1]")

    def __getitem__(self, cat: TmaCategory) -> float:
        return self.fractions.get(cat, 0.0)

    def level1(self) -> Dict[TmaCategory, float]:
        """The four top-level bucket fractions."""
        return {c: f for c, f in self.fractions.items() if c.level == 1}

    def render(self) -> str:
        """Indented text rendering of the breakdown."""
        lines = ["TMA breakdown:"]
        for cat in TmaCategory:
            if cat in self.fractions:
                indent = "  " * cat.level
                lines.append(f"{indent}{cat.value.split('.')[-1]:<18s} {self[cat]:.1%}")
        return "\n".join(lines)
