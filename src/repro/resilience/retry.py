"""Seeded exponential backoff for transient-failure retries.

Retries without backoff hammer a struggling resource; backoff without
jitter synchronizes retry storms across workers; jitter from an
unseeded RNG breaks the repo's reproducibility contract (the DET lint
exists for a reason).  :func:`backoff_delay` squares the circle: the
delay grows exponentially with the attempt number, is jittered across
items, and is a pure function of ``(seed, key, attempt)`` — the same
schedule every run.

    delay(attempt) = min(cap, base * 2**attempt) * (0.5 + u)

where ``u ∈ [0, 1)`` is a SHA-256 hash bucket of ``(seed, key,
attempt)``.  The multiplier spans [0.5, 1.5), so the mean delay equals
the un-jittered exponential schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["RetryPolicy", "backoff_delay"]

_BUCKETS = float(1 << 64)


def _unit_draw(seed: int, key: str, attempt: int) -> float:
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / _BUCKETS


def backoff_delay(
    attempt: int,
    *,
    base_s: float = 0.05,
    cap_s: float = 2.0,
    seed: int = 0,
    key: str = "",
) -> float:
    """Deterministic jittered delay (seconds) before retry ``attempt``.

    ``attempt`` is zero-based: the delay before the first *retry* is
    ``backoff_delay(0, ...)``.
    """
    if attempt < 0:
        raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
    if base_s < 0 or cap_s < 0:
        raise ConfigurationError("backoff base/cap must be >= 0")
    ideal = min(cap_s, base_s * (2.0**attempt))
    return ideal * (0.5 + _unit_draw(seed, key, attempt))


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + backoff schedule for one fan-out invocation.

    ``retries`` is the number of *re*-attempts: an item runs at most
    ``retries + 1`` times.
    """

    retries: int = 0
    base_s: float = 0.05
    cap_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.base_s < 0 or self.cap_s < 0:
            raise ConfigurationError("backoff base/cap must be >= 0")

    def delay_s(self, key: str, attempt: int) -> float:
        """Delay before re-running ``key`` for retry number ``attempt``."""
        return backoff_delay(
            attempt, base_s=self.base_s, cap_s=self.cap_s, seed=self.seed, key=key
        )
