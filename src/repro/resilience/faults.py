"""Deterministic, seeded fault injection: every failure path on demand.

Counter-based analysis has to survive noisy, partial, and malformed
inputs (Treibig et al.'s HPM best practices; Hill's "other models"
caveats), and a parallel sweep has to survive dying workers and corrupt
cache files.  None of those paths can be trusted unless they are
*exercisable*: this module lets tests — and a CI leg — turn each one on
deterministically.

Spec grammar (``REPRO_FAULTS`` or :func:`configure_faults`)::

    spec      := entry (';' entry)*
    entry     := kind [':' param (',' param)*]
    param     := name '=' value
    kind      := worker_kill | task_hang | cache_corrupt | cache_truncate
               | trace_corrupt | trace_truncate | counter_drop | counter_nan
               | mshr_leak | time_skew | replay_skip

Common params: ``p`` (firing probability per site, default ``1.0``) and
``seed`` (default ``0``).  ``task_hang`` also takes ``s`` (hang seconds,
default ``30``).

Example::

    REPRO_FAULTS="worker_kill:p=0.05,seed=7;cache_corrupt:p=0.1,seed=7"

Determinism
-----------
Whether a fault fires at a site is a pure function of
``(kind, seed, site key)``: the decision hashes the key with SHA-256 and
compares the result against ``p``.  No RNG state is consumed, so firing
decisions are independent of call order, process boundaries (workers
inherit the spec through the environment), and the number of other
sites — a fixed seed reproduces exactly the same failures every run,
which is what lets the resume test demand byte-identical output.

Injection sites live in the layers under test (``perf.parallel``
workers, ``perf.cache`` stores, ``io.tracefile`` saves, measurement
ingestion); each passes a stable key (item index + attempt, digest,
line number) so retries re-roll deterministically rather than re-firing
forever.
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from ..errors import ConfigurationError, FaultInjected

__all__ = [
    "FAULT_KINDS",
    "FaultRule",
    "FaultInjector",
    "configure_faults",
    "get_injector",
    "parse_fault_spec",
]

#: Every fault kind the harness knows how to inject.
#: The last three are *sanitizer-visible* simulator faults: each plants
#: a bug whose only witness is a reprosan invariant (``mshr_leak`` ->
#: mshr-balance, ``time_skew`` -> littles-law, ``replay_skip`` ->
#: batch-replay), proving the sanitizer catches real corruption.
FAULT_KINDS = (
    "worker_kill",
    "task_hang",
    "cache_corrupt",
    "cache_truncate",
    "trace_corrupt",
    "trace_truncate",
    "counter_drop",
    "counter_nan",
    "mshr_leak",
    "time_skew",
    "replay_skip",
)

#: Exit status used by injected worker kills (distinctive in CI logs).
WORKER_KILL_EXIT_CODE = 113

#: Hash-bucket denominator for the firing decision.
_BUCKETS = float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One armed fault kind: firing probability, seed, extra params."""

    kind: str
    p: float = 1.0
    seed: int = 0
    params: Mapping[str, float] = field(default_factory=dict)

    def fires(self, key: str) -> bool:
        """Deterministic draw: does this fault fire at site ``key``?"""
        if self.p <= 0.0:
            return False
        if self.p >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.kind}:{self.seed}:{key}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / _BUCKETS
        return draw < self.p


def parse_fault_spec(spec: str) -> Dict[str, FaultRule]:
    """Parse the ``REPRO_FAULTS`` grammar into per-kind rules."""
    rules: Dict[str, FaultRule] = {}
    for raw_entry in spec.split(";"):
        entry = raw_entry.strip()
        if not entry:
            continue
        kind, _, raw_params = entry.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in REPRO_FAULTS "
                f"(known: {', '.join(FAULT_KINDS)})"
            )
        p, seed = 1.0, 0
        params: Dict[str, float] = {}
        for raw_param in raw_params.split(","):
            param = raw_param.strip()
            if not param:
                continue
            name, sep, value = param.partition("=")
            name = name.strip()
            if not sep:
                raise ConfigurationError(
                    f"fault param {param!r} must be name=value"
                )
            try:
                number = float(value.strip())
            except ValueError as exc:
                raise ConfigurationError(
                    f"fault param {name!r} needs a numeric value, "
                    f"got {value.strip()!r}"
                ) from exc
            if not math.isfinite(number):
                raise ConfigurationError(
                    f"fault param {name!r} must be finite, got {number!r}"
                )
            if name == "p":
                if not 0.0 <= number <= 1.0:
                    raise ConfigurationError(
                        f"fault probability must be in [0,1], got {number}"
                    )
                p = number
            elif name == "seed":
                seed = int(number)
            else:
                params[name] = number
        if kind in rules:
            raise ConfigurationError(f"duplicate fault kind {kind!r} in spec")
        rules[kind] = FaultRule(kind=kind, p=p, seed=seed, params=params)
    return rules


class FaultInjector:
    """The armed fault set, with one helper per injection-site shape."""

    __slots__ = ("rules",)

    def __init__(self, rules: Optional[Mapping[str, FaultRule]] = None) -> None:
        self.rules: Dict[str, FaultRule] = dict(rules or {})

    @property
    def active(self) -> bool:
        """Is any fault kind armed at all?"""
        return bool(self.rules)

    def armed(self, kind: str) -> bool:
        """Is ``kind`` armed (regardless of probability)?"""
        return kind in self.rules

    def fires(self, kind: str, key: str) -> bool:
        """Deterministically decide whether ``kind`` fires at ``key``."""
        rule = self.rules.get(kind)
        return rule is not None and rule.fires(key)

    def param(self, kind: str, name: str, default: float) -> float:
        """A kind's extra parameter (e.g. ``task_hang``'s ``s``)."""
        rule = self.rules.get(kind)
        if rule is None:
            return default
        return float(rule.params.get(name, default))

    # -- injection-site helpers --------------------------------------------------

    def maybe_kill_worker(self, key: str) -> None:
        """``worker_kill`` site: hard-exit the current process.

        ``os._exit`` bypasses cleanup exactly like an OOM kill or
        segfault would, which is the failure being simulated; callers
        (pool workers) must be prepared for :class:`BrokenProcessPool`.
        """
        if self.fires("worker_kill", key):
            os._exit(WORKER_KILL_EXIT_CODE)

    def maybe_hang(self, key: str) -> None:
        """``task_hang`` site: stall for ``s`` seconds (default 30)."""
        if self.fires("task_hang", key):
            import time

            time.sleep(self.param("task_hang", "s", 30.0))

    def maybe_raise(self, kind: str, key: str) -> None:
        """Generic site: raise :class:`FaultInjected` when armed + firing."""
        if self.fires(kind, key):
            raise FaultInjected(kind, key)

    def maybe_corrupt_file(
        self, kind: str, key: str, path: Union[str, Path]
    ) -> bool:
        """``*_corrupt``/``*_truncate`` site: damage an on-disk artifact.

        ``*_corrupt`` overwrites a deterministic byte range with garbage
        derived from the key; ``*_truncate`` cuts the file in half.
        Returns True when damage was done (tests assert on it).
        """
        if not self.fires(kind, key):
            return False
        path = Path(path)
        try:
            size = path.stat().st_size
        except OSError:
            return False
        if kind.endswith("truncate"):
            with open(path, "r+b") as handle:
                handle.truncate(size // 2)
            return True
        garbage = hashlib.sha256(f"{kind}:{key}".encode("utf-8")).digest()
        with open(path, "r+b") as handle:
            handle.seek(min(size // 3, max(size - len(garbage), 0)))
            handle.write(garbage)
        return True

    def drops_sample(self, key: str) -> bool:
        """``counter_drop`` site: should this sample vanish entirely?"""
        return self.fires("counter_drop", key)

    def nans_sample(self, key: str) -> bool:
        """``counter_nan`` site: should this sample read back as NaN?"""
        return self.fires("counter_nan", key)


# -- process-global injector (mirrors the perf.cache handle pattern) -------------

_global_injector: Optional[FaultInjector] = None


def get_injector() -> FaultInjector:
    """The process-wide injector, parsed lazily from ``REPRO_FAULTS``.

    An empty/unset spec yields an inert injector whose site helpers are
    all no-ops, so production code can call them unconditionally.
    """
    global _global_injector
    if _global_injector is None:
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        _global_injector = FaultInjector(parse_fault_spec(spec) if spec else None)
    return _global_injector


def configure_faults(spec: Optional[str]) -> FaultInjector:
    """Re-arm the global injector (``None``/empty disarms everything).

    The spec is mirrored into ``REPRO_FAULTS`` so worker processes
    spawned by :func:`repro.perf.parallel.fan_out` inherit the same
    armed faults under any multiprocessing start method.
    """
    global _global_injector
    if spec:
        rules = parse_fault_spec(spec)
        os.environ["REPRO_FAULTS"] = spec
        _global_injector = FaultInjector(rules)
    else:
        os.environ.pop("REPRO_FAULTS", None)
        _global_injector = FaultInjector()
    return _global_injector
