"""Structured data-quality accounting for degraded-mode ingestion.

Real counter dumps arrive with skipped rows, missing events, and NaN
readings; the HPM literature's advice is to *report and widen*, not
die.  A :class:`DataQualityIssue` is the unit of that reporting: each
lenient ingestion path (:func:`repro.io.measurements.from_csv_degraded`,
:meth:`repro.counters.session.CounterSession.bandwidth_with_quality`)
appends one per problem instead of raising, and the analysis layer
(:func:`repro.core.uncertainty.quality_widened_errors`) converts the
issue census into a wider — honest — error bar on ``n_avg``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["DataQualityIssue", "issue_summary"]


@dataclass(frozen=True)
class DataQualityIssue:
    """One ingestion problem that was survived rather than fatal.

    ``kind`` is a stable machine-readable tag (``skipped-row``,
    ``bad-cell``, ``nan-bandwidth``, ``out-of-range``,
    ``missing-counter``, ``dropped-sample``); ``location`` pins it to a
    source coordinate (``line 7``, an event name); ``detail`` is the
    human-readable explanation.
    """

    kind: str
    location: str
    detail: str

    def render(self) -> str:
        """``kind @ location: detail`` one-liner."""
        return f"{self.kind} @ {self.location}: {self.detail}"


def issue_summary(issues: Sequence[DataQualityIssue]) -> str:
    """Compact census line, e.g. ``3 issue(s): 2 skipped-row, 1 nan-bandwidth``."""
    if not issues:
        return "no data-quality issues"
    counts: dict = {}
    for issue in issues:
        counts[issue.kind] = counts.get(issue.kind, 0) + 1
    parts: List[str] = [
        f"{count} {kind}" for kind, count in sorted(counts.items())
    ]
    return f"{len(issues)} issue(s): " + ", ".join(parts)
