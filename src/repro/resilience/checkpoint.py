"""Checkpoint/resume for long multi-point sweeps.

A characterize/ablation/cross-validation sweep is a list of independent
(item → result) evaluations, each potentially minutes of simulation.  A
:class:`SweepCheckpoint` makes the sweep restartable: every completed
result is durably appended to a JSONL file, keyed by a stable content
digest of its inputs (:func:`repro.perf.cache.stable_digest`), and a
re-run — ``--resume`` on the CLI — replays recorded results instead of
recomputing them.

File format (one JSON document per line)::

    {"format": "repro-checkpoint", "version": 1, "label": "<harness>"}
    {"key": "<stable digest>", "value": {...}}
    {"key": "<stable digest>", "value": {...}}

Appends go through :func:`repro.io.atomic.append_jsonl` (single-write
``O_APPEND`` + fsync), so a crash — including an injected
``worker_kill`` storm that exhausts retries — can lose at most a
trailing partial line, which :meth:`SweepCheckpoint.load` tolerates.
Any *other* malformed line means real corruption and raises
:class:`~repro.errors.CheckpointError`, as does a label or version
mismatch (a checkpoint from a different harness must never be replayed).

Determinism: with a checkpoint attached, every result — freshly
computed or replayed — round-trips through the same JSON codec, so an
interrupted-then-resumed sweep returns **byte-identical** results to an
uninterrupted one by construction.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
)

from ..errors import CheckpointError

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "SweepCheckpoint",
    "dataclass_codec",
    "run_checkpointed",
]

T = TypeVar("T")
R = TypeVar("R")

#: Format tag in the checkpoint header line.
CHECKPOINT_FORMAT = "repro-checkpoint"

#: Bump on any incompatible layout change.
CHECKPOINT_VERSION = 1


class SweepCheckpoint:
    """Append-only JSONL store of completed sweep results."""

    __slots__ = ("path", "label")

    def __init__(self, path: Union[str, Path], *, label: str = "") -> None:
        self.path = Path(path)
        self.label = label

    @property
    def exists(self) -> bool:
        """Does the checkpoint file exist on disk?"""
        return self.path.exists()

    def clear(self) -> None:
        """Discard the checkpoint (start the sweep from scratch)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            return

    def load(self) -> Dict[str, Any]:
        """All recorded ``key -> value`` entries.

        A missing file is an empty checkpoint.  A malformed *final* line
        is the signature of a crash mid-append and is dropped (that
        result is simply recomputed); a malformed line anywhere else, a
        wrong header, or a label mismatch raises
        :class:`~repro.errors.CheckpointError`.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {exc}"
            ) from exc
        lines = text.splitlines()
        if not lines:
            return {}
        entries: Dict[str, Any] = {}
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
                if index == 0:
                    self._check_header(doc)
                    continue
                key = doc["key"]
                value = doc["value"]
            except (ValueError, KeyError, TypeError) as exc:
                if index == len(lines) - 1 and index > 0:
                    # Torn final append: the crash the format is designed
                    # to survive.  The entry is recomputed on resume.
                    break
                raise CheckpointError(
                    f"corrupt checkpoint {self.path} at line {index + 1}: {exc}"
                ) from exc
            entries[str(key)] = value
        return entries

    def record(self, key: str, value: Any) -> None:
        """Durably append one completed result."""
        # Imported here: pulling repro.io at module scope would cycle
        # back through io.measurements -> counters -> resilience.
        from ..io.atomic import append_jsonl

        if not self.path.exists():
            append_jsonl(
                self.path,
                {
                    "format": CHECKPOINT_FORMAT,
                    "version": CHECKPOINT_VERSION,
                    "label": self.label,
                },
            )
        append_jsonl(self.path, {"key": key, "value": value})

    def _check_header(self, doc: Any) -> None:
        if not isinstance(doc, dict) or doc.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{self.path} is not a repro checkpoint file"
            )
        if doc.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{self.path}: checkpoint version {doc.get('version')!r} "
                f"(this build reads {CHECKPOINT_VERSION})"
            )
        if self.label and doc.get("label") != self.label:
            raise CheckpointError(
                f"{self.path} belongs to harness {doc.get('label')!r}, "
                f"not {self.label!r} — refusing to replay foreign results"
            )


def dataclass_codec(
    cls: Type[R],
) -> Tuple[Callable[[R], Any], Callable[[Any], R]]:
    """(encode, decode) pair for a flat dataclass of JSON scalars."""

    def encode(value: R) -> Any:
        return dataclasses.asdict(value)  # type: ignore[call-overload]

    def decode(doc: Any) -> R:
        return cls(**doc)

    return encode, decode


def run_checkpointed(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    checkpoint: Optional[SweepCheckpoint],
    key_fn: Callable[[T], str],
    encode: Callable[[R], Any],
    decode: Callable[[Any], R],
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
    chunk: Optional[int] = None,
) -> List[R]:
    """Evaluate ``func`` over ``items`` with durable incremental progress.

    Items whose key is already recorded are replayed from the
    checkpoint; the rest run through
    :func:`repro.perf.parallel.fan_out_outcomes` in chunks (default: one
    worker-batch per chunk), recording each chunk's successes before the
    next starts — so a run killed mid-sweep preserves every completed
    chunk.  The first unrecovered failure is re-raised *after* its
    chunk's successes are recorded.

    With ``checkpoint=None`` this degrades to a plain ``fan_out`` (no
    JSON round-trip, no recording).
    """
    from ..perf.parallel import fan_out, fan_out_outcomes, resolve_jobs

    materialized = list(items)
    if checkpoint is None:
        return fan_out(
            func, materialized, jobs=jobs, retries=retries, timeout_s=timeout_s
        )

    done = checkpoint.load()
    keys = [key_fn(item) for item in materialized]
    results: Dict[int, R] = {}
    missing: List[Tuple[int, T]] = []
    for index, (key, item) in enumerate(zip(keys, materialized)):
        if key in done:
            results[index] = decode(done[key])
        else:
            missing.append((index, item))

    if missing:
        chunk_size = chunk if chunk and chunk > 0 else max(1, resolve_jobs(jobs))
        for start in range(0, len(missing), chunk_size):
            batch = missing[start : start + chunk_size]
            outcomes = fan_out_outcomes(
                func,
                [item for _, item in batch],
                jobs=jobs,
                retries=retries,
                timeout_s=timeout_s,
            )
            failure = None
            for (index, _), outcome in zip(batch, outcomes):
                if outcome.ok:
                    payload = encode(outcome.value)
                    checkpoint.record(keys[index], payload)
                    # Round-trip through the codec so a resumed run and an
                    # uninterrupted run return byte-identical results.
                    results[index] = decode(payload)
                elif failure is None:
                    failure = outcome
            if failure is not None:
                failure.reraise()
    return [results[index] for index in range(len(materialized))]
