"""Fault-tolerant execution layer: inject, retry, checkpoint, degrade.

The pipeline's scaling substrate (worker pools, on-disk caches, trace
files, external counter data) fails in four characteristic ways; this
package gives each one a deterministic answer:

* :mod:`repro.resilience.faults` — seeded fault *injection*
  (``REPRO_FAULTS``): kill workers, hang tasks, corrupt cache/trace
  files, drop or NaN counter samples — every failure path exercisable
  on demand, byte-for-byte reproducibly;
* :mod:`repro.resilience.retry` — seeded exponential backoff with
  deterministic jitter, consumed by
  :func:`repro.perf.parallel.fan_out`'s per-item retry machinery;
* :mod:`repro.resilience.quality` — :class:`DataQualityIssue`, the unit
  of degraded-mode ingestion accounting;
* :mod:`repro.resilience.checkpoint` — durable JSONL sweep checkpoints
  keyed by content digests, behind the CLI's ``--resume``.

See ``docs/ROBUSTNESS.md`` for the operational guide.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    SweepCheckpoint,
    dataclass_codec,
    run_checkpointed,
)
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultRule,
    configure_faults,
    get_injector,
    parse_fault_spec,
)
from .quality import DataQualityIssue, issue_summary
from .retry import RetryPolicy, backoff_delay

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "DataQualityIssue",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRule",
    "RetryPolicy",
    "SweepCheckpoint",
    "backoff_delay",
    "configure_faults",
    "dataclass_codec",
    "get_injector",
    "issue_summary",
    "parse_fault_spec",
    "run_checkpointed",
]
