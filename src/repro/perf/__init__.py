"""Execution-performance layer: parallel fan-out and simulation caching.

The experiment pipeline is built from dozens-to-hundreds of *independent*
:func:`~repro.sim.hierarchy.run_trace` simulations (X-Mem load levels,
ablation grid points, per-routine cross-validations, table rows).  This
package makes that pipeline scale with cores and never repeat work:

* :mod:`repro.perf.parallel` — :func:`fan_out`, a deterministic
  process-pool map with a serial fallback, used by the X-Mem runner, the
  experiment harness, and the ablation sweeps;
* :mod:`repro.perf.cache` — a content-addressed on-disk cache keyed by a
  stable SHA-256 digest of ``(machine, config, trace, repro version)``
  that memoizes :class:`~repro.sim.stats.SimStats`, so repeated
  ``reproduce``/``characterize``/benchmark runs are near-instant.

Both honor environment variables (``REPRO_JOBS``, ``REPRO_CACHE``,
``REPRO_CACHE_DIR``) and the CLI's ``--jobs`` / ``--no-cache`` flags.
"""

from .cache import (
    CacheCounters,
    SimCache,
    cached_run_trace,
    configure_cache,
    digest_for,
    get_cache,
    stable_digest,
)
from .parallel import fan_out, resolve_jobs

__all__ = [
    "CacheCounters",
    "SimCache",
    "cached_run_trace",
    "configure_cache",
    "digest_for",
    "fan_out",
    "get_cache",
    "resolve_jobs",
    "stable_digest",
]
