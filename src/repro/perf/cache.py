"""Content-addressed on-disk cache for simulation results.

The paper's footnote 2 observes that a machine's latency profile "needs
to be computed only once per processor"; the JSON profiles under
:mod:`repro.memory.profile` already honor that.  This module extends the
same measured-once property to *every* simulation the pipeline runs: a
:func:`~repro.sim.hierarchy.run_trace` call is fully determined by its
``(machine, config, trace, latency model, repro version)`` inputs, so
its :class:`~repro.sim.stats.SimStats` can be memoized under a stable
SHA-256 digest of those inputs and replayed bit-for-bit on the next
invocation.

Digest stability rules
----------------------
* All inputs are reduced to plain JSON types (dataclasses to dicts,
  enums to values, tuples to lists) and serialized with sorted keys, so
  the digest is invariant under dict/field ordering.
* The digest includes :data:`SCHEMA_VERSION` and ``repro.__version__``:
  any release, or any change to the cached representation, invalidates
  the cache wholesale rather than risking stale replays.
* Any physical parameter change — machine calibration point, MSHR
  count, trace address, gap cycles, window size — changes the digest.

Storage
-------
One JSON document per digest under ``<cache_dir>/<digest[:2]>/<digest>.json``
(sharded to keep directories small), written atomically via
:func:`repro.io.atomic.atomic_write_text`.  A corrupted or truncated
entry is treated as a miss (with a :class:`UserWarning`), **quarantined**
by renaming it to ``<digest>.corrupt`` — so the bad bytes survive for
forensics and can never be re-read as a hit — then re-simulated and
re-stored.  The ``cache_corrupt``/``cache_truncate`` fault kinds
(:mod:`repro.resilience.faults`) damage entries right after a store to
keep this recovery path exercised.

Control knobs
-------------
* ``REPRO_CACHE_DIR`` — cache location (default
  ``$XDG_CACHE_HOME/repro/sim`` or ``~/.cache/repro/sim``);
* ``REPRO_CACHE=0`` (or ``off``/``false``/``no``) — disable entirely;
* :func:`configure_cache` — programmatic/CLI override (``--no-cache``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .. import __version__
from ..analysis.sanitizer import sanitize_enabled
from ..errors import CacheKeyError
from ..sim.coltrace import AnyTrace, trace_digest
from ..sim.hierarchy import SimConfig, run_trace
from ..sim.stats import SimStats

#: Bump when the cached SimStats representation (or sim semantics whose
#: change is not reflected in ``repro.__version__``) changes.
#: v2: columnar trace layer — traces are digested zero-copy over their
#: canonical array bytes (repro.sim.coltrace.trace_digest) and the
#: vectorized generators changed trace content once, so v1 entries must
#: never be replayed.
#: v3: batch-stepping fast path — SimStats gained ``batch_accesses`` and
#: SimConfig gained ``batch`` (the flag enters the digest via the config
#: payload; the schema bump invalidates v2 entries whose stored stats
#: lack the new field).
#: v4: batched miss retirement — SimConfig gained ``batch_miss`` and
#: SimStats gained ``batch_miss_accesses``/``batch_fallbacks``; v3
#: entries lack the new stats fields and must not be replayed.
SCHEMA_VERSION = 4

_DISABLE_VALUES = ("0", "off", "false", "no")

#: Sim shards are two-hex-digit directories directly under the cache
#: root; payload kinds must never collide with that namespace.
_SHARD_DIR = re.compile(r"^[0-9a-f]{2}$")

#: Valid payload-kind names: python-identifier-ish, and (checked
#: separately) never a two-hex-digit shard name.
_KIND_NAME = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")

#: Persistent hit/miss ledger file (JSON lines, one counter delta per
#: flush) kept beside the shards.
TALLIES_FILE = "tallies.jsonl"


# -- canonical digests ----------------------------------------------------------


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON types with deterministic structure."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return _canonical(obj.value)
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise CacheKeyError(
        f"cannot canonicalize {type(obj).__name__} for a stable cache digest"
    )


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of ``payload`` in canonical JSON form.

    Dict key order never matters: serialization sorts keys at every
    nesting level.
    """
    doc = json.dumps(
        _canonical(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def digest_for(
    trace: AnyTrace,
    config: SimConfig,
    *,
    latency_model: Any = None,
    max_events: int = 50_000_000,
) -> str:
    """Stable digest of one simulation's complete physical inputs.

    The trace contributes via :func:`repro.sim.coltrace.trace_digest`
    — a zero-copy SHA-256 over its canonical array bytes — so digesting
    no longer walks the trace in Python, and object and columnar traces
    with the same content produce the same key.

    Raises :class:`~repro.errors.CacheKeyError` when an input (e.g. a
    hand-written latency-model object) cannot be canonicalized; callers
    should then run uncached rather than risk a wrong key.
    """
    if latency_model is None:
        # run_trace derives the model from the machine's calibration,
        # which is already part of the config payload.
        model_payload: Any = "machine-default"
    else:
        model_payload = {
            "class": type(latency_model).__name__,
            "params": _canonical(latency_model),
        }
    return stable_digest(
        {
            "schema": SCHEMA_VERSION,
            "repro_version": __version__,
            "config": _canonical(config),
            "trace": trace_digest(trace),
            "latency_model": model_payload,
            "max_events": max_events,
        }
    )


# -- the cache proper -----------------------------------------------------------


@dataclass
class CacheCounters:
    """Hit/miss/store accounting for one cache handle (or globally)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def snapshot(self) -> "CacheCounters":
        """An independent copy of the current counts."""
        return CacheCounters(self.hits, self.misses, self.stores, self.errors)

    def add(self, other: "CacheCounters") -> None:
        """Accumulate another counter set into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.errors += other.errors

    def diff(self, earlier: "CacheCounters") -> "CacheCounters":
        """Counts accumulated since ``earlier`` was snapshotted."""
        return CacheCounters(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.stores - earlier.stores,
            self.errors - earlier.errors,
        )

    def summary(self) -> str:
        """One-line human-readable form."""
        return f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} stored"


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sim"


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in _DISABLE_VALUES


class SimCache:
    """Content-addressed store of :class:`~repro.sim.stats.SimStats`.

    Also hosts a generic *payload* store for small JSON documents keyed
    by ``(kind, digest)`` — e.g. the queueing-model calibrations of
    :mod:`repro.perfmodel.queueing` — living under ``<cache_dir>/<kind>/``
    so they share the sim store's sharding, atomic writes, quarantine
    behavior, and counters without colliding with SimStats entries.
    """

    __slots__ = ("cache_dir", "enabled", "counters", "_tally_base")

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        *,
        enabled: Optional[bool] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.enabled = _env_enabled() if enabled is None else enabled
        self.counters = CacheCounters()
        # Counter snapshot at the last tallies flush (so each flush
        # appends only the delta accumulated since).
        self._tally_base = CacheCounters()

    def path_for(self, digest: str) -> Path:
        """On-disk location of one entry (sharded by digest prefix)."""
        return self.cache_dir / digest[:2] / f"{digest}.json"

    def load(self, digest: str) -> Optional[SimStats]:
        """Fetch a cached result; corrupt/truncated entries are misses.

        A decode failure quarantines the entry: the file is renamed to
        ``<digest>.corrupt`` so the damaged bytes are preserved for
        inspection but can never satisfy a future lookup.
        """
        if not self.enabled:
            return None
        path = self.path_for(digest)
        try:
            doc = json.loads(path.read_text())
            if doc.get("schema") != SCHEMA_VERSION or doc.get("digest") != digest:
                raise ValueError("schema/digest mismatch")
            stats = SimStats.from_dict(doc["stats"])
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.counters.misses += 1
            self.counters.errors += 1
            quarantined = self._quarantine(path)
            warnings.warn(
                f"discarding corrupt sim-cache entry {path.name}: {exc}"
                + (f" (quarantined as {quarantined.name})" if quarantined else ""),
                stacklevel=2,
            )
            return None
        self.counters.hits += 1
        return stats

    @staticmethod
    def _quarantine(path: Path) -> Optional[Path]:
        """Move a corrupt entry aside as ``<digest>.corrupt``; best-effort."""
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # repro: noqa[RES001] - quarantine is best-effort
            return None
        return target

    def store(self, digest: str, stats: SimStats) -> None:
        """Persist one result atomically (temp file + rename)."""
        if not self.enabled:
            return
        path = self.path_for(digest)
        doc = {"schema": SCHEMA_VERSION, "digest": digest, "stats": stats.to_dict()}
        try:
            from ..io.atomic import atomic_write_text

            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, json.dumps(doc))
        except OSError as exc:
            # A read-only or full disk must never fail the simulation.
            self.counters.errors += 1
            warnings.warn(f"could not write sim-cache entry: {exc}", stacklevel=2)
            return
        self.counters.stores += 1
        from ..resilience.faults import get_injector

        injector = get_injector()
        if injector.active:
            # Damage the freshly written entry so the quarantine/re-simulate
            # recovery path stays exercised under the CI fault leg.
            injector.maybe_corrupt_file("cache_corrupt", digest, path)
            injector.maybe_corrupt_file("cache_truncate", digest, path)

    # -- generic payload store (calibrations, ...) ---------------------------

    @staticmethod
    def _check_kind(kind: str) -> None:
        """Reject kinds that could collide with the sim shard layout."""
        if not _KIND_NAME.match(kind) or _SHARD_DIR.match(kind):
            raise CacheKeyError(f"invalid payload kind {kind!r}")

    def payload_path_for(self, digest: str, *, kind: str) -> Path:
        """On-disk location of one ``(kind, digest)`` payload entry."""
        self._check_kind(kind)
        return self.cache_dir / kind / digest[:2] / f"{digest}.json"

    def load_payload(self, digest: str, *, kind: str) -> Optional[Dict[str, Any]]:
        """Fetch a stored JSON payload; corrupt entries are quarantined misses."""
        if not self.enabled:
            return None
        path = self.payload_path_for(digest, kind=kind)
        try:
            doc = json.loads(path.read_text())
            if doc.get("schema") != SCHEMA_VERSION or doc.get("digest") != digest:
                raise ValueError("schema/digest mismatch")
            payload = doc["payload"]
            if not isinstance(payload, dict):
                raise ValueError("payload is not a JSON object")
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.counters.misses += 1
            self.counters.errors += 1
            quarantined = self._quarantine(path)
            warnings.warn(
                f"discarding corrupt {kind} cache entry {path.name}: {exc}"
                + (f" (quarantined as {quarantined.name})" if quarantined else ""),
                stacklevel=2,
            )
            return None
        self.counters.hits += 1
        return payload

    def store_payload(
        self, digest: str, payload: Dict[str, Any], *, kind: str
    ) -> None:
        """Persist one JSON payload atomically under its kind directory."""
        if not self.enabled:
            return
        path = self.payload_path_for(digest, kind=kind)
        doc = {"schema": SCHEMA_VERSION, "digest": digest, "payload": payload}
        try:
            from ..io.atomic import atomic_write_text

            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, json.dumps(doc))
        except OSError as exc:
            # Payloads are derived data: a full disk must not fail the run.
            self.counters.errors += 1
            warnings.warn(
                f"could not write {kind} cache entry: {exc}", stacklevel=2
            )
            return
        self.counters.stores += 1

    # -- persistent tallies ---------------------------------------------------

    def flush_tallies(self) -> None:
        """Append the counter delta since the last flush to the ledger.

        The ledger (``tallies.jsonl``) makes hit/miss accounting survive
        the process: ``repro cache stats`` sums it alongside the live
        handle's counters.  Best-effort — an unwritable directory only
        skips the flush.
        """
        if not self.enabled:
            return
        delta = self.counters.diff(self._tally_base)
        if not (delta.hits or delta.misses or delta.stores or delta.errors):
            return
        try:
            from ..io.atomic import append_jsonl

            self.cache_dir.mkdir(parents=True, exist_ok=True)
            append_jsonl(
                self.cache_dir / TALLIES_FILE,
                {
                    "hits": delta.hits,
                    "misses": delta.misses,
                    "stores": delta.stores,
                    "errors": delta.errors,
                },
                fsync=False,
            )
        except OSError as exc:
            warnings.warn(f"could not flush cache tallies: {exc}", stacklevel=2)
            return
        self._tally_base = self.counters.snapshot()


# -- process-global handle -------------------------------------------------------

_global_cache: Optional[SimCache] = None


def get_cache() -> SimCache:
    """The process-wide cache handle (created lazily from the environment)."""
    global _global_cache
    if _global_cache is None:
        _global_cache = SimCache()
    return _global_cache


def configure_cache(
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    enabled: Optional[bool] = None,
) -> SimCache:
    """Reconfigure the global cache (used by the CLI's ``--no-cache``).

    The settings are mirrored into the environment so worker processes
    spawned by :func:`repro.perf.parallel.fan_out` inherit them under
    any multiprocessing start method.
    """
    global _global_cache
    if cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    if enabled is not None:
        os.environ["REPRO_CACHE"] = "1" if enabled else "0"
    _global_cache = SimCache(cache_dir=cache_dir, enabled=enabled)
    return _global_cache


def cached_run_trace(
    trace: AnyTrace,
    config: SimConfig,
    *,
    latency_model: Any = None,
    max_events: int = 50_000_000,
    cache: Optional[SimCache] = None,
) -> SimStats:
    """Drop-in :func:`~repro.sim.hierarchy.run_trace` with memoization.

    Results are bit-identical to an uncached run: a hit replays the
    stored :class:`~repro.sim.stats.SimStats` (same counters, same
    occupancy integrals), a miss simulates and stores.  Inputs that
    cannot be digested fall back to plain simulation.

    Sanitized runs (``REPRO_SANITIZE=1``) are cache-inert: the whole
    point of the mode is to *execute* the simulator under instrumented
    invariant checks, so a sanitized run neither replays a stored
    result nor stores its own — the cache's contents stay exactly what
    unsanitized runs produced.
    """
    if sanitize_enabled():
        return run_trace(
            trace, config, latency_model=latency_model, max_events=max_events
        )
    handle = cache if cache is not None else get_cache()
    if not handle.enabled:
        return run_trace(
            trace, config, latency_model=latency_model, max_events=max_events
        )
    try:
        digest = digest_for(
            trace, config, latency_model=latency_model, max_events=max_events
        )
    except CacheKeyError:
        return run_trace(
            trace, config, latency_model=latency_model, max_events=max_events
        )
    stats = handle.load(digest)
    if stats is not None:
        return stats
    stats = run_trace(
        trace, config, latency_model=latency_model, max_events=max_events
    )
    handle.store(digest, stats)
    return stats


# -- cache statistics -------------------------------------------------------------


@dataclass(frozen=True)
class KindUsage:
    """Entry count and byte footprint of one store kind on disk."""

    entries: int
    total_bytes: int


@dataclass
class CacheStats:
    """One snapshot of a cache directory's contents and accounting."""

    cache_dir: Path
    #: Disk usage per store: ``"sim"`` plus one key per payload kind.
    usage: Dict[str, KindUsage] = field(default_factory=dict)
    #: Quarantined ``.corrupt`` files across all stores.
    corrupt_entries: int = 0
    #: Lifetime hit/miss tallies summed from the persistent ledger
    #: (includes the live handle's just-flushed counts).
    tallies: CacheCounters = field(default_factory=CacheCounters)

    @property
    def total_entries(self) -> int:
        """All entries across every store kind."""
        return sum(u.entries for u in self.usage.values())

    @property
    def total_bytes(self) -> int:
        """All bytes across every store kind."""
        return sum(u.total_bytes for u in self.usage.values())


def _scan_shards(root: Path) -> Tuple[int, int, int]:
    """(entries, bytes, corrupt) across one store's shard directories."""
    entries = total = corrupt = 0
    if not root.is_dir():
        return 0, 0, 0
    for shard in sorted(root.iterdir()):
        if not (shard.is_dir() and _SHARD_DIR.match(shard.name)):
            continue
        for entry in sorted(shard.iterdir()):
            if entry.suffix == ".corrupt":
                corrupt += 1
                continue
            if entry.suffix != ".json":
                continue
            try:
                size = entry.stat().st_size
            except OSError:  # repro: noqa[RES001] - raced with concurrent eviction; skip the entry
                continue
            entries += 1
            total += size
    return entries, total, corrupt


def read_tallies(cache_dir: Path) -> CacheCounters:
    """Sum the persistent hit/miss ledger (malformed lines are skipped)."""
    total = CacheCounters()
    path = cache_dir / TALLIES_FILE
    try:
        text = path.read_text()
    except OSError:  # repro: noqa[RES001] - no ledger yet means zero tallies
        return total
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
            total.add(
                CacheCounters(
                    hits=int(doc.get("hits", 0)),
                    misses=int(doc.get("misses", 0)),
                    stores=int(doc.get("stores", 0)),
                    errors=int(doc.get("errors", 0)),
                )
            )
        except (ValueError, TypeError):
            continue  # a torn append must not poison the whole ledger
    return total


# -- cache maintenance ------------------------------------------------------------


@dataclass(frozen=True)
class GcResult:
    """Outcome of one :func:`gc_cache` pass."""

    removed_entries: int
    removed_bytes: int
    kept_entries: int
    kept_bytes: int


def _store_roots(cache_dir: Path) -> Dict[str, Path]:
    """Every store root: ``"sim"`` (the cache dir itself) plus kind dirs."""
    roots = {"sim": cache_dir}
    if cache_dir.is_dir():
        for child in sorted(cache_dir.iterdir()):
            if not child.is_dir() or _SHARD_DIR.match(child.name):
                continue
            if _KIND_NAME.match(child.name):
                roots[child.name] = child
    return roots


def gc_cache(
    cache: Optional[SimCache] = None,
    *,
    max_bytes: Optional[int] = None,
    max_age_s: Optional[float] = None,
    now: Optional[float] = None,
) -> GcResult:
    """Evict cache entries oldest-first until the limits hold.

    Entries (sim results and payloads alike) are ranked by modification
    time within every kind directory and across the whole cache — the
    two orders agree because eviction is purely by age.  ``max_age_s``
    removes every entry older than the horizon; ``max_bytes`` then
    removes the oldest survivors until the remaining footprint fits the
    budget.  Quarantined ``.corrupt`` files are forensic artifacts and
    are never touched; empty shard directories left behind are pruned.
    Entries that vanish mid-scan (a concurrent run replacing them) are
    skipped — gc is best-effort by design, like every other maintenance
    path in this module.
    """
    handle = cache if cache is not None else get_cache()
    if now is None:
        import time

        now = time.time()
    entries = []  # (mtime, size, path)
    for root in _store_roots(handle.cache_dir).values():
        if not root.is_dir():
            continue
        for shard in sorted(root.iterdir()):
            if not (shard.is_dir() and _SHARD_DIR.match(shard.name)):
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix != ".json":
                    continue
                try:
                    st = entry.stat()
                except OSError:  # repro: noqa[RES001] - raced with concurrent eviction; skip the entry
                    continue
                entries.append((st.st_mtime, st.st_size, entry))
    entries.sort(key=lambda e: (e[0], str(e[2])))
    total_bytes = sum(size for _, size, _ in entries)
    removed_entries = removed_bytes = 0
    doomed_dirs = set()
    for mtime, size, path in entries:
        too_old = max_age_s is not None and now - mtime > max_age_s
        too_big = max_bytes is not None and total_bytes > max_bytes
        if not (too_old or too_big):
            continue
        try:
            path.unlink()
        except OSError:  # repro: noqa[RES001] - raced with concurrent eviction; skip the entry
            continue
        removed_entries += 1
        removed_bytes += size
        total_bytes -= size
        doomed_dirs.add(path.parent)
    for shard in doomed_dirs:
        try:
            shard.rmdir()  # only succeeds when the shard emptied out
        except OSError:  # repro: noqa[RES001] - shard still holds entries (or .corrupt files)
            pass
    return GcResult(
        removed_entries=removed_entries,
        removed_bytes=removed_bytes,
        kept_entries=len(entries) - removed_entries,
        kept_bytes=total_bytes,
    )


def collect_stats(cache: Optional[SimCache] = None) -> CacheStats:
    """Scan a cache directory into a :class:`CacheStats` snapshot.

    Flushes the handle's live counters into the persistent ledger first,
    so the reported tallies cover this process too.
    """
    handle = cache if cache is not None else get_cache()
    handle.flush_tallies()
    stats = CacheStats(cache_dir=handle.cache_dir)
    sim_entries, sim_bytes, corrupt = _scan_shards(handle.cache_dir)
    stats.usage["sim"] = KindUsage(entries=sim_entries, total_bytes=sim_bytes)
    stats.corrupt_entries = corrupt
    if handle.cache_dir.is_dir():
        for child in sorted(handle.cache_dir.iterdir()):
            if not child.is_dir() or _SHARD_DIR.match(child.name):
                continue
            if not _KIND_NAME.match(child.name):
                continue
            entries, total, kind_corrupt = _scan_shards(child)
            stats.usage[child.name] = KindUsage(entries=entries, total_bytes=total)
            stats.corrupt_entries += kind_corrupt
    stats.tallies = read_tallies(handle.cache_dir)
    return stats
