"""Content-addressed on-disk cache for simulation results.

The paper's footnote 2 observes that a machine's latency profile "needs
to be computed only once per processor"; the JSON profiles under
:mod:`repro.memory.profile` already honor that.  This module extends the
same measured-once property to *every* simulation the pipeline runs: a
:func:`~repro.sim.hierarchy.run_trace` call is fully determined by its
``(machine, config, trace, latency model, repro version)`` inputs, so
its :class:`~repro.sim.stats.SimStats` can be memoized under a stable
SHA-256 digest of those inputs and replayed bit-for-bit on the next
invocation.

Digest stability rules
----------------------
* All inputs are reduced to plain JSON types (dataclasses to dicts,
  enums to values, tuples to lists) and serialized with sorted keys, so
  the digest is invariant under dict/field ordering.
* The digest includes :data:`SCHEMA_VERSION` and ``repro.__version__``:
  any release, or any change to the cached representation, invalidates
  the cache wholesale rather than risking stale replays.
* Any physical parameter change — machine calibration point, MSHR
  count, trace address, gap cycles, window size — changes the digest.

Storage
-------
One JSON document per digest under ``<cache_dir>/<digest[:2]>/<digest>.json``
(sharded to keep directories small), written atomically via
:func:`repro.io.atomic.atomic_write_text`.  A corrupted or truncated
entry is treated as a miss (with a :class:`UserWarning`), **quarantined**
by renaming it to ``<digest>.corrupt`` — so the bad bytes survive for
forensics and can never be re-read as a hit — then re-simulated and
re-stored.  The ``cache_corrupt``/``cache_truncate`` fault kinds
(:mod:`repro.resilience.faults`) damage entries right after a store to
keep this recovery path exercised.

Control knobs
-------------
* ``REPRO_CACHE_DIR`` — cache location (default
  ``$XDG_CACHE_HOME/repro/sim`` or ``~/.cache/repro/sim``);
* ``REPRO_CACHE=0`` (or ``off``/``false``/``no``) — disable entirely;
* :func:`configure_cache` — programmatic/CLI override (``--no-cache``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from .. import __version__
from ..analysis.sanitizer import sanitize_enabled
from ..errors import CacheKeyError
from ..sim.coltrace import AnyTrace, trace_digest
from ..sim.hierarchy import SimConfig, run_trace
from ..sim.stats import SimStats

#: Bump when the cached SimStats representation (or sim semantics whose
#: change is not reflected in ``repro.__version__``) changes.
#: v2: columnar trace layer — traces are digested zero-copy over their
#: canonical array bytes (repro.sim.coltrace.trace_digest) and the
#: vectorized generators changed trace content once, so v1 entries must
#: never be replayed.
#: v3: batch-stepping fast path — SimStats gained ``batch_accesses`` and
#: SimConfig gained ``batch`` (the flag enters the digest via the config
#: payload; the schema bump invalidates v2 entries whose stored stats
#: lack the new field).
SCHEMA_VERSION = 3

_DISABLE_VALUES = ("0", "off", "false", "no")


# -- canonical digests ----------------------------------------------------------


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON types with deterministic structure."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return _canonical(obj.value)
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise CacheKeyError(
        f"cannot canonicalize {type(obj).__name__} for a stable cache digest"
    )


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of ``payload`` in canonical JSON form.

    Dict key order never matters: serialization sorts keys at every
    nesting level.
    """
    doc = json.dumps(
        _canonical(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def digest_for(
    trace: AnyTrace,
    config: SimConfig,
    *,
    latency_model: Any = None,
    max_events: int = 50_000_000,
) -> str:
    """Stable digest of one simulation's complete physical inputs.

    The trace contributes via :func:`repro.sim.coltrace.trace_digest`
    — a zero-copy SHA-256 over its canonical array bytes — so digesting
    no longer walks the trace in Python, and object and columnar traces
    with the same content produce the same key.

    Raises :class:`~repro.errors.CacheKeyError` when an input (e.g. a
    hand-written latency-model object) cannot be canonicalized; callers
    should then run uncached rather than risk a wrong key.
    """
    if latency_model is None:
        # run_trace derives the model from the machine's calibration,
        # which is already part of the config payload.
        model_payload: Any = "machine-default"
    else:
        model_payload = {
            "class": type(latency_model).__name__,
            "params": _canonical(latency_model),
        }
    return stable_digest(
        {
            "schema": SCHEMA_VERSION,
            "repro_version": __version__,
            "config": _canonical(config),
            "trace": trace_digest(trace),
            "latency_model": model_payload,
            "max_events": max_events,
        }
    )


# -- the cache proper -----------------------------------------------------------


@dataclass
class CacheCounters:
    """Hit/miss/store accounting for one cache handle (or globally)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def snapshot(self) -> "CacheCounters":
        """An independent copy of the current counts."""
        return CacheCounters(self.hits, self.misses, self.stores, self.errors)

    def add(self, other: "CacheCounters") -> None:
        """Accumulate another counter set into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.errors += other.errors

    def diff(self, earlier: "CacheCounters") -> "CacheCounters":
        """Counts accumulated since ``earlier`` was snapshotted."""
        return CacheCounters(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.stores - earlier.stores,
            self.errors - earlier.errors,
        )

    def summary(self) -> str:
        """One-line human-readable form."""
        return f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} stored"


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sim"


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in _DISABLE_VALUES


class SimCache:
    """Content-addressed store of :class:`~repro.sim.stats.SimStats`."""

    __slots__ = ("cache_dir", "enabled", "counters")

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        *,
        enabled: Optional[bool] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.enabled = _env_enabled() if enabled is None else enabled
        self.counters = CacheCounters()

    def path_for(self, digest: str) -> Path:
        """On-disk location of one entry (sharded by digest prefix)."""
        return self.cache_dir / digest[:2] / f"{digest}.json"

    def load(self, digest: str) -> Optional[SimStats]:
        """Fetch a cached result; corrupt/truncated entries are misses.

        A decode failure quarantines the entry: the file is renamed to
        ``<digest>.corrupt`` so the damaged bytes are preserved for
        inspection but can never satisfy a future lookup.
        """
        if not self.enabled:
            return None
        path = self.path_for(digest)
        try:
            doc = json.loads(path.read_text())
            if doc.get("schema") != SCHEMA_VERSION or doc.get("digest") != digest:
                raise ValueError("schema/digest mismatch")
            stats = SimStats.from_dict(doc["stats"])
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.counters.misses += 1
            self.counters.errors += 1
            quarantined = self._quarantine(path)
            warnings.warn(
                f"discarding corrupt sim-cache entry {path.name}: {exc}"
                + (f" (quarantined as {quarantined.name})" if quarantined else ""),
                stacklevel=2,
            )
            return None
        self.counters.hits += 1
        return stats

    @staticmethod
    def _quarantine(path: Path) -> Optional[Path]:
        """Move a corrupt entry aside as ``<digest>.corrupt``; best-effort."""
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # repro: noqa[RES001] - quarantine is best-effort
            return None
        return target

    def store(self, digest: str, stats: SimStats) -> None:
        """Persist one result atomically (temp file + rename)."""
        if not self.enabled:
            return
        path = self.path_for(digest)
        doc = {"schema": SCHEMA_VERSION, "digest": digest, "stats": stats.to_dict()}
        try:
            from ..io.atomic import atomic_write_text

            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, json.dumps(doc))
        except OSError as exc:
            # A read-only or full disk must never fail the simulation.
            self.counters.errors += 1
            warnings.warn(f"could not write sim-cache entry: {exc}", stacklevel=2)
            return
        self.counters.stores += 1
        from ..resilience.faults import get_injector

        injector = get_injector()
        if injector.active:
            # Damage the freshly written entry so the quarantine/re-simulate
            # recovery path stays exercised under the CI fault leg.
            injector.maybe_corrupt_file("cache_corrupt", digest, path)
            injector.maybe_corrupt_file("cache_truncate", digest, path)


# -- process-global handle -------------------------------------------------------

_global_cache: Optional[SimCache] = None


def get_cache() -> SimCache:
    """The process-wide cache handle (created lazily from the environment)."""
    global _global_cache
    if _global_cache is None:
        _global_cache = SimCache()
    return _global_cache


def configure_cache(
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    enabled: Optional[bool] = None,
) -> SimCache:
    """Reconfigure the global cache (used by the CLI's ``--no-cache``).

    The settings are mirrored into the environment so worker processes
    spawned by :func:`repro.perf.parallel.fan_out` inherit them under
    any multiprocessing start method.
    """
    global _global_cache
    if cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    if enabled is not None:
        os.environ["REPRO_CACHE"] = "1" if enabled else "0"
    _global_cache = SimCache(cache_dir=cache_dir, enabled=enabled)
    return _global_cache


def cached_run_trace(
    trace: AnyTrace,
    config: SimConfig,
    *,
    latency_model: Any = None,
    max_events: int = 50_000_000,
    cache: Optional[SimCache] = None,
) -> SimStats:
    """Drop-in :func:`~repro.sim.hierarchy.run_trace` with memoization.

    Results are bit-identical to an uncached run: a hit replays the
    stored :class:`~repro.sim.stats.SimStats` (same counters, same
    occupancy integrals), a miss simulates and stores.  Inputs that
    cannot be digested fall back to plain simulation.

    Sanitized runs (``REPRO_SANITIZE=1``) are cache-inert: the whole
    point of the mode is to *execute* the simulator under instrumented
    invariant checks, so a sanitized run neither replays a stored
    result nor stores its own — the cache's contents stay exactly what
    unsanitized runs produced.
    """
    if sanitize_enabled():
        return run_trace(
            trace, config, latency_model=latency_model, max_events=max_events
        )
    handle = cache if cache is not None else get_cache()
    if not handle.enabled:
        return run_trace(
            trace, config, latency_model=latency_model, max_events=max_events
        )
    try:
        digest = digest_for(
            trace, config, latency_model=latency_model, max_events=max_events
        )
    except CacheKeyError:
        return run_trace(
            trace, config, latency_model=latency_model, max_events=max_events
        )
    stats = handle.load(digest)
    if stats is not None:
        return stats
    stats = run_trace(
        trace, config, latency_model=latency_model, max_events=max_events
    )
    handle.store(digest, stats)
    return stats
