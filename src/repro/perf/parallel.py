"""Deterministic, fault-tolerant parallel fan-out over independent simulations.

:func:`fan_out` is the pipeline's single parallelism primitive: apply a
picklable callable to a list of items, return results **in item order**
regardless of completion order, and degrade gracefully:

* ``jobs=1`` (the default) runs serially in-process — bit-identical to
  the historical list-comprehension loops it replaces;
* ``jobs>1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`
  (simulations are pure CPU-bound Python, so threads cannot help);
* a pool that cannot start (sandboxed environments without working
  semaphores, unpicklable callables) falls back to serial execution
  with a :class:`UserWarning` rather than failing the experiment.

Fault tolerance (PR 4) extends the contract with per-item semantics:

* **retries** — each item may be re-attempted with deterministic,
  seeded, jittered exponential backoff
  (:func:`repro.resilience.retry.backoff_delay`).  *Infrastructure*
  failures (a killed worker breaking the pool, a per-task timeout) are
  always granted a small retry budget even with ``retries=0``, because
  they are environmental rather than properties of the item;
  exceptions raised by ``func`` itself are retried only when asked;
* **timeouts** — ``timeout_s`` bounds how long the parent waits on each
  task; a hung task (e.g. an injected ``task_hang``) times out, the
  pool is torn down, and every *unfinished* item is resubmitted to a
  fresh pool — only the timed-out item is charged an attempt;
* **partial results** — :func:`fan_out_outcomes` reports a per-item
  :class:`Ok`/:class:`Err` instead of raising, and
  :func:`fan_out`'s ``on_error="skip"`` keeps a sweep alive past
  permanently failing items;
* a :class:`~concurrent.futures.process.BrokenProcessPool` (worker
  killed by the OS, OOM, or the ``worker_kill`` fault injector) never
  loses completed work: finished results are kept and only unfinished
  items are resubmitted.

Worker processes run with their own :mod:`repro.perf.cache` handle; the
wrapper returns each call's cache-counter delta so hits/misses observed
inside workers are merged into the parent's counters — the CLI summary
stays truthful under any ``--jobs`` value.  Workers also re-arm the
``REPRO_FAULTS`` injector from the environment, so injected faults fire
identically under any start method.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..errors import ConfigurationError, RetryExhausted, TaskTimeout

T = TypeVar("T")
R = TypeVar("R")

#: Hard ceiling on worker counts: anything larger is certainly a typo
#: (no machine this code targets has more cores, and the pool would
#: fork-bomb the host).
MAX_JOBS = 4096

#: Hard ceiling on per-item retries (a failing item re-run thousands of
#: times is a misconfiguration, not resilience).
MAX_RETRIES = 64

#: Retry budget always granted for *infrastructure* failures (broken
#: pool, timeout), even with ``retries=0``: a killed worker says nothing
#: about the item it happened to be running.
INFRA_RETRIES = 2

_ON_ERROR_MODES = ("raise", "skip", "retry")

#: Default retry budget implied by ``on_error="retry"`` when the caller
#: did not size one explicitly.
_ON_ERROR_RETRY_DEFAULT = 2


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count resolution: explicit > ``REPRO_JOBS`` > serial.

    ``jobs=0`` (or ``REPRO_JOBS=0``) means "one worker per CPU".
    Negative, absurdly large (> :data:`MAX_JOBS`), or non-integer values
    are rejected with :class:`~repro.errors.ConfigurationError` whether
    they arrive via the parameter or the environment.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError as exc:
            raise ConfigurationError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from exc
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs > MAX_JOBS:
        raise ConfigurationError(
            f"jobs must be <= {MAX_JOBS}, got {jobs} — an absurd worker "
            "count is almost certainly a typo"
        )
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retry-budget resolution: explicit > ``REPRO_RETRIES`` > 0."""
    if retries is None:
        env = os.environ.get("REPRO_RETRIES", "").strip()
        if not env:
            return 0
        try:
            retries = int(env)
        except ValueError as exc:
            raise ConfigurationError(
                f"REPRO_RETRIES must be an integer, got {env!r}"
            ) from exc
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if retries > MAX_RETRIES:
        raise ConfigurationError(
            f"retries must be <= {MAX_RETRIES}, got {retries}"
        )
    return retries


def resolve_timeout_s(timeout_s: Optional[float] = None) -> Optional[float]:
    """Per-task timeout resolution: explicit > ``REPRO_TIMEOUT_S`` > none.

    ``0`` (either source) means "no timeout"; negative or non-finite
    values are rejected.
    """
    if timeout_s is None:
        env = os.environ.get("REPRO_TIMEOUT_S", "").strip()
        if not env:
            return None
        try:
            timeout_s = float(env)
        except ValueError as exc:
            raise ConfigurationError(
                f"REPRO_TIMEOUT_S must be a number, got {env!r}"
            ) from exc
    if math.isnan(timeout_s) or math.isinf(timeout_s):
        raise ConfigurationError(
            f"timeout_s must be finite, got {timeout_s!r}"
        )
    if timeout_s < 0:
        raise ConfigurationError(f"timeout_s must be >= 0, got {timeout_s}")
    return None if timeout_s == 0 else timeout_s


# -- per-item outcomes -----------------------------------------------------------


@dataclass(frozen=True)
class Ok(Generic[R]):
    """A successfully computed item: its value and the attempts it took."""

    value: R
    attempts: int
    index: int

    @property
    def ok(self) -> bool:
        """Always True; mirrors :attr:`Err.ok` for uniform filtering."""
        return True

    def reraise(self) -> None:
        """No-op on a success (mirrors :meth:`Err.reraise`)."""


@dataclass(frozen=True)
class Err:
    """A permanently failed item: the terminal exception and context."""

    exception: BaseException
    attempts: int
    index: int
    label: str

    @property
    def ok(self) -> bool:
        """Always False."""
        return False

    def reraise(self) -> None:
        """Raise the terminal failure the way ``on_error="raise"`` does.

        A single-attempt failure re-raises the original exception
        unchanged (bit-compatible with a plain loop); a retried one
        raises :class:`~repro.errors.RetryExhausted` with the original
        chained as ``__cause__``.
        """
        if self.attempts <= 1:
            raise self.exception
        raise RetryExhausted(
            f"{self.label}[{self.index}]", self.attempts, repr(self.exception)
        ) from self.exception


Outcome = Union[Ok[R], Err]


class _TrackedCall:
    """Picklable wrapper returning ``(result, cache-counter delta)``.

    Runs inside worker processes; the delta lets the parent account for
    cache traffic that happened out-of-process.  It is also the
    worker-side fault-injection site: ``worker_kill`` and ``task_hang``
    fire here, keyed by the task's ``(label, index, attempt)`` so a
    retried attempt re-rolls instead of re-firing forever.
    """

    __slots__ = ("func",)

    def __init__(self, func: Callable[[T], R]) -> None:
        self.func = func

    def __call__(self, item: T, fault_key: str) -> Tuple[R, Any]:
        from ..resilience.faults import get_injector

        injector = get_injector()
        if injector.active:
            injector.maybe_kill_worker(fault_key)
            injector.maybe_hang(fault_key)

        from .cache import get_cache

        counters = get_cache().counters
        before = counters.snapshot()
        result = self.func(item)
        return result, counters.diff(before)


@dataclass
class _Task:
    """One in-flight item: its position, payload, and attempts so far."""

    index: int
    item: Any
    attempts: int = 0


def _func_label(func: Callable[..., Any]) -> str:
    name = getattr(func, "__qualname__", None)
    return name if isinstance(name, str) and name else type(func).__name__


def _is_pickling_failure(exc: BaseException) -> bool:
    """Did this failure come from the pickle layer, not from ``func``?"""
    if isinstance(exc, pickle.PicklingError):
        return True
    return isinstance(exc, (AttributeError, TypeError)) and "pickle" in str(
        exc
    ).lower()


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a broken/hung pool without waiting for stuck workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    try:
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
    except Exception:
        # Private-attribute layout differs across CPython versions; the
        # shutdown above already detached every future, so leaking a
        # finite-lifetime worker is the acceptable fallback.
        pass


class _FanOutRun:
    """State machine for one fan_out invocation (parallel path)."""

    def __init__(
        self,
        func: Callable[[T], R],
        items: Sequence[T],
        *,
        workers: int,
        retries: int,
        timeout_s: Optional[float],
        backoff_base_s: float,
        backoff_cap_s: float,
    ) -> None:
        self.func = func
        self.label = _func_label(func)
        self.tracked = _TrackedCall(func)
        self.workers = workers
        self.retries = retries
        self.timeout_s = timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.outcomes: dict[int, Outcome[R]] = {}
        self.pending: List[_Task] = [
            _Task(index=i, item=item) for i, item in enumerate(items)
        ]

    # -- shared bookkeeping ------------------------------------------------------

    def _fault_key(self, task: _Task) -> str:
        return f"{self.label}:{task.index}:a{task.attempts}"

    def _record_ok(self, task: _Task, value: R, delta: Any = None) -> None:
        if delta is not None:
            from .cache import get_cache

            get_cache().counters.add(delta)
        self.outcomes[task.index] = Ok(
            value=value, attempts=task.attempts + 1, index=task.index
        )

    def _note_failure(
        self, task: _Task, exc: BaseException, *, infra: bool
    ) -> Tuple[bool, float]:
        """Charge one failed attempt; requeue or finalize.

        Returns ``(requeued, backoff_delay_s)``.
        """
        from ..resilience.retry import backoff_delay

        failed_attempt = task.attempts
        task.attempts += 1
        budget = max(self.retries, INFRA_RETRIES) if infra else self.retries
        if task.attempts <= budget:
            delay = backoff_delay(
                failed_attempt,
                base_s=self.backoff_base_s,
                cap_s=self.backoff_cap_s,
                key=f"{self.label}:{task.index}",
            )
            return True, delay
        self.outcomes[task.index] = Err(
            exception=exc,
            attempts=task.attempts,
            index=task.index,
            label=self.label,
        )
        return False, 0.0

    # -- serial execution --------------------------------------------------------

    def run_serial(self, tasks: List[_Task]) -> None:
        """In-process execution with the same retry semantics as the pool."""
        for task in tasks:
            while True:
                try:
                    value = self.func(task.item)
                except Exception as exc:
                    requeued, delay = self._note_failure(task, exc, infra=False)
                    if not requeued:
                        break
                    if delay > 0:
                        time.sleep(delay)
                else:
                    self._record_ok(task, value)
                    break

    # -- pool execution ----------------------------------------------------------

    def run(self) -> List[Outcome[R]]:
        """Drive rounds of pool submission until every item resolves."""
        while self.pending:
            batch, self.pending = self.pending, []
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.workers, len(batch))
                )
            except (OSError, ImportError) as exc:
                self._serial_fallback(batch, exc)
                break
            max_delay = self._run_round(pool, batch)
            if self.pending and max_delay > 0:
                time.sleep(max_delay)
        return [self.outcomes[i] for i in sorted(self.outcomes)]

    def _run_round(self, pool: ProcessPoolExecutor, batch: List[_Task]) -> float:
        """One pool round; returns the backoff delay before the next.

        A broken pool cannot tell us *which* task killed the worker, so
        no individual task is blamed for it: unfinished tasks are
        requeued unchanged while any finished results are kept.  Only a
        round that makes no progress at all (nothing completed, nothing
        individually charged) charges every unfinished task one
        *infrastructure* attempt — that re-rolls the faulting task's
        injection key and bounds the total number of rounds, without
        letting one poisonous item exhaust innocent bystanders' budgets.
        """
        submitted: List[Tuple[_Task, Future[Tuple[R, Any]]]] = [
            (task, pool.submit(self.tracked, task.item, self._fault_key(task)))
            for task in batch
        ]
        broken = False
        broken_exc: Optional[BaseException] = None
        victims: List[_Task] = []
        unusable: Optional[BaseException] = None
        completed = 0
        charged = False
        max_delay = 0.0
        for task, future in submitted:
            if broken or unusable is not None:
                # The pool is gone; keep finished work, set the rest
                # aside (their fate depends on whether the round made
                # progress — decided below).
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    value, delta = future.result()
                    self._record_ok(task, value, delta)
                    completed += 1
                elif unusable is not None:
                    self.pending.append(task)
                else:
                    victims.append(task)
                continue
            try:
                value, delta = future.result(timeout=self.timeout_s)
            except FuturesTimeout:
                # Unlike a pool break, the culprit IS identified: we
                # were waiting on exactly this future.
                future.cancel()
                broken = True
                charged = True
                timeout = self.timeout_s if self.timeout_s is not None else 0.0
                requeued, delay = self._note_failure(
                    task,
                    TaskTimeout(f"{self.label}[{task.index}]", timeout),
                    infra=True,
                )
                if requeued:
                    self.pending.append(task)
                    max_delay = max(max_delay, delay)
            except BrokenProcessPool as exc:
                broken = True
                broken_exc = exc
                victims.append(task)
            except Exception as exc:
                if _is_pickling_failure(exc):
                    unusable = exc
                    self.pending.append(task)
                    continue
                charged = True
                requeued, delay = self._note_failure(task, exc, infra=False)
                if requeued:
                    self.pending.append(task)
                    max_delay = max(max_delay, delay)
            else:
                self._record_ok(task, value, delta)
                completed += 1
        if victims:
            if completed or charged:
                # Progress happened elsewhere this round: the victims
                # were innocent bystanders, requeue them unchanged.
                self.pending.extend(victims)
            else:
                # Futile round: charge everyone an infrastructure
                # attempt so injection keys re-roll and rounds stay
                # bounded.
                exc = broken_exc or BrokenProcessPool("process pool broke")
                for task in victims:
                    requeued, delay = self._note_failure(task, exc, infra=True)
                    if requeued:
                        self.pending.append(task)
                        max_delay = max(max_delay, delay)
        if broken:
            _terminate_pool(pool)
        else:
            pool.shutdown()
        if unusable is not None:
            fallback, self.pending = self.pending, []
            self._serial_fallback(fallback, unusable)
        return max_delay

    def _serial_fallback(
        self, tasks: List[_Task], exc: BaseException
    ) -> None:
        warnings.warn(
            f"process pool unavailable ({exc!r}); running {len(tasks)} "
            "task(s) serially",
            stacklevel=4,
        )
        self.run_serial(tasks)


def fan_out_outcomes(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
    backoff_base_s: float = 0.05,
    backoff_cap_s: float = 2.0,
) -> List[Outcome[R]]:
    """Apply ``func`` to every item; report a per-item :class:`Ok`/:class:`Err`.

    Never raises for item failures: after the retry budget
    (``retries``, default from ``REPRO_RETRIES``) an item's terminal
    exception is captured in its :class:`Err`, in item order with the
    successes.  ``timeout_s`` (default from ``REPRO_TIMEOUT_S``) bounds
    the wait per task in pool mode; serial execution cannot preempt a
    running callable, so timeouts apply only with ``jobs > 1``.
    """
    materialized = list(items)
    run: _FanOutRun = _FanOutRun(
        func,
        materialized,
        workers=min(resolve_jobs(jobs), max(len(materialized), 1)),
        retries=resolve_retries(retries),
        timeout_s=resolve_timeout_s(timeout_s),
        backoff_base_s=backoff_base_s,
        backoff_cap_s=backoff_cap_s,
    )
    if run.workers <= 1 or len(materialized) <= 1:
        tasks, run.pending = run.pending, []
        run.run_serial(tasks)
        return [run.outcomes[i] for i in sorted(run.outcomes)]
    return run.run()


def fan_out(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
    on_error: str = "raise",
) -> List[R]:
    """Apply ``func`` to every item, preserving item order in the result.

    ``on_error`` selects the partial-result policy once an item's retry
    budget is exhausted:

    * ``"raise"`` (default) — the first failing item's terminal
      exception propagates: unchanged original exception when it failed
      its only attempt, :class:`~repro.errors.RetryExhausted` (with the
      original chained) when retries were consumed;
    * ``"retry"`` — like ``"raise"`` but implies a retry budget of
      ``2`` when ``retries`` was not given;
    * ``"skip"`` — failed items are dropped from the result (use
      :func:`fan_out_outcomes` to know which).

    With ``jobs > 1`` both ``func`` and the items must be picklable;
    pool start-up failures degrade to serial execution.
    """
    if on_error not in _ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )
    resolved_retries = resolve_retries(retries)
    if on_error == "retry" and retries is None and resolved_retries == 0:
        resolved_retries = _ON_ERROR_RETRY_DEFAULT
    outcomes = fan_out_outcomes(
        func, items, jobs=jobs, retries=resolved_retries, timeout_s=timeout_s
    )
    results: List[R] = []
    for outcome in outcomes:
        if isinstance(outcome, Ok):
            results.append(outcome.value)
        elif on_error == "skip":
            continue
        else:
            outcome.reraise()
    return results
