"""Deterministic parallel fan-out over independent simulations.

:func:`fan_out` is the pipeline's single parallelism primitive: apply a
picklable callable to a list of items, return results **in item order**
regardless of completion order, and degrade gracefully:

* ``jobs=1`` (the default) runs serially in-process — bit-identical to
  the historical list-comprehension loops it replaces;
* ``jobs>1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`
  (simulations are pure CPU-bound Python, so threads cannot help);
* a pool that cannot start (sandboxed environments without working
  semaphores, unpicklable callables) falls back to serial execution
  with a :class:`UserWarning` rather than failing the experiment.

Worker processes run with their own :mod:`repro.perf.cache` handle; the
wrapper returns each call's cache-counter delta so hits/misses observed
inside workers are merged into the parent's counters — the CLI summary
stays truthful under any ``--jobs`` value.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count resolution: explicit > ``REPRO_JOBS`` > serial.

    ``jobs=0`` (or ``REPRO_JOBS=0``) means "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigurationError(f"REPRO_JOBS must be an integer, got {env!r}")
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class _TrackedCall:
    """Picklable wrapper returning ``(result, cache-counter delta)``.

    Runs inside worker processes; the delta lets the parent account for
    cache traffic that happened out-of-process.
    """

    __slots__ = ("func",)

    def __init__(self, func: Callable[[T], R]) -> None:
        self.func = func

    def __call__(self, item: T) -> Tuple[R, Any]:
        from .cache import get_cache

        counters = get_cache().counters
        before = counters.snapshot()
        result = self.func(item)
        return result, counters.diff(before)


def _run_serial(func: Callable[[T], R], items: Sequence[T]) -> List[R]:
    return [func(item) for item in items]


def fan_out(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: Optional[int] = None,
) -> List[R]:
    """Apply ``func`` to every item, preserving item order in the result.

    Exceptions raised by ``func`` propagate to the caller under every
    execution mode (the first failing item's exception, as with a plain
    loop).  With ``jobs > 1`` both ``func`` and the items must be
    picklable; pool start-up failures degrade to serial execution.
    """
    materialized = list(items)
    workers = min(resolve_jobs(jobs), max(len(materialized), 1))
    if workers <= 1 or len(materialized) <= 1:
        return _run_serial(func, materialized)

    from .cache import get_cache

    tracked = _TrackedCall(func)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            paired = list(pool.map(tracked, materialized))
    except (
        OSError,
        BrokenProcessPool,
        ImportError,
        pickle.PicklingError,
        AttributeError,  # "Can't pickle local object" on some platforms
    ) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); running {len(materialized)} "
            "task(s) serially",
            stacklevel=2,
        )
        return _run_serial(func, materialized)

    counters = get_cache().counters
    results: List[R] = []
    for result, delta in paired:
        counters.add(delta)
        results.append(result)
    return results
