"""Measurement-uncertainty propagation for the MLP metric.

The paper's n_avg is derived, not counted, so its error budget matters:

    n = BW * lat(BW) / cls / cores

Two error sources propagate into it:

* **counter error** on the observed bandwidth (vendors document a few
  percent; the paper cites outright-broken FLOP counters [3]), which
  enters twice — directly, and through the latency lookup's local
  slope;
* **profile error** on the X-Mem curve itself (measurement noise,
  admission-queueing bias).

First-order propagation:

    dn/n = dBW/BW * (1 + S)  +  dlat/lat

where ``S = (BW/lat) * d lat/d BW`` is the profile's local elasticity —
small on the flat part of the curve, large near the saturation knee.
:func:`mlp_uncertainty` evaluates this, and
:func:`decision_is_robust` answers the operational question: could the
measurement error flip the recipe's full-vs-headroom verdict?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..memory.profile import LatencyProfile
from ..resilience.quality import DataQualityIssue
from .mlp import MlpCalculator, MlpResult
from .recipe import FULL_RATIO, NEAR_FULL_RATIO

#: Extra relative bandwidth error charged per surviving data-quality
#: issue in degraded-mode ingestion (on top of the base counter error).
QUALITY_ERROR_PER_ISSUE = 0.01

#: Ceiling on the quality widening: beyond this the data is unusable
#: and the verdict column will say so anyway.
QUALITY_ERROR_CAP = 0.25


@dataclass(frozen=True)
class MlpUncertainty:
    """n_avg with its first-order error bar."""

    result: MlpResult
    bandwidth_rel_error: float
    latency_rel_error: float
    elasticity: float
    n_avg_rel_error: float

    @property
    def n_avg_low(self) -> float:
        """Lower edge of the n_avg error bar."""
        return self.result.n_avg * (1.0 - self.n_avg_rel_error)

    @property
    def n_avg_high(self) -> float:
        """Upper edge of the n_avg error bar."""
        return self.result.n_avg * (1.0 + self.n_avg_rel_error)

    def render(self) -> str:
        """One-line n_avg +/- error summary."""
        return (
            f"n_avg = {self.result.n_avg:.2f} "
            f"± {self.n_avg_rel_error:.0%} "
            f"[{self.n_avg_low:.2f}, {self.n_avg_high:.2f}] "
            f"(curve elasticity {self.elasticity:.2f})"
        )


def profile_elasticity(
    calculator: MlpCalculator, bandwidth_bytes: float, *, delta: float = 0.01
) -> float:
    """Local elasticity S = (BW/lat) * dlat/dBW of the latency curve."""
    if bandwidth_bytes <= 0:
        return 0.0
    lo = calculator.calculate(bandwidth_bytes * (1.0 - delta))
    hi = calculator.calculate(
        min(
            bandwidth_bytes * (1.0 + delta),
            calculator.profile.max_measured_bw_bytes,
        )
    )
    dlat = hi.latency_ns - lo.latency_ns
    dbw = hi.bandwidth_bytes - lo.bandwidth_bytes
    if dbw <= 0:
        return 0.0
    lat = calculator.calculate(bandwidth_bytes).latency_ns
    return (bandwidth_bytes / lat) * (dlat / dbw)


def mlp_uncertainty(
    machine: MachineSpec,
    bandwidth_bytes: float,
    *,
    bandwidth_rel_error: float = 0.03,
    latency_rel_error: float = 0.05,
    profile: Optional[LatencyProfile] = None,
) -> MlpUncertainty:
    """n_avg with a first-order error bar for one measurement.

    Defaults: 3 % counter error (typical of documented counter quality)
    and 5 % profile error (X-Mem run-to-run spread).
    """
    if bandwidth_rel_error < 0 or latency_rel_error < 0:
        raise ConfigurationError("relative errors must be >= 0")
    calculator = MlpCalculator(machine, profile)
    result = calculator.calculate(bandwidth_bytes)
    elasticity = profile_elasticity(calculator, bandwidth_bytes)
    n_error = bandwidth_rel_error * (1.0 + elasticity) + latency_rel_error
    return MlpUncertainty(
        result=result,
        bandwidth_rel_error=bandwidth_rel_error,
        latency_rel_error=latency_rel_error,
        elasticity=elasticity,
        n_avg_rel_error=n_error,
    )


def quality_widened_errors(
    issues: Sequence[DataQualityIssue],
    *,
    bandwidth_rel_error: float = 0.03,
    latency_rel_error: float = 0.05,
) -> Tuple[float, float]:
    """Widen the error budget to reflect degraded-mode ingestion.

    Every :class:`~repro.resilience.quality.DataQualityIssue` that
    survived ingestion (skipped rows, dropped samples, NaN counters)
    adds :data:`QUALITY_ERROR_PER_ISSUE` to the *bandwidth* relative
    error — the side the degraded counters actually feed — capped at
    :data:`QUALITY_ERROR_CAP`; the profile error is untouched.  Returns
    ``(bandwidth_rel_error, latency_rel_error)`` ready for
    :func:`mlp_uncertainty`: honest bars instead of silent optimism.
    """
    if bandwidth_rel_error < 0 or latency_rel_error < 0:
        raise ConfigurationError("relative errors must be >= 0")
    widening = min(QUALITY_ERROR_CAP, QUALITY_ERROR_PER_ISSUE * len(issues))
    return bandwidth_rel_error + widening, latency_rel_error


def analytic_widened_errors(
    *,
    bandwidth_rel_error: float = 0.03,
    latency_rel_error: float = 0.05,
) -> Tuple[float, float]:
    """Widen the error budget for answers from the ``--fast`` closed form.

    The analytic queueing model trades simulation time for a documented
    model error: the cross-validated worst-case deviations
    (:data:`~repro.perfmodel.queueing.ANALYTIC_BW_ERROR_BOUND` /
    :data:`~repro.perfmodel.queueing.ANALYTIC_LAT_ERROR_BOUND`) are
    added to the respective budgets so ``--fast`` verdicts carry error
    bars that cover the shortcut, not just the counters.  Returns
    ``(bandwidth_rel_error, latency_rel_error)`` ready for
    :func:`mlp_uncertainty` — the exact shape of
    :func:`quality_widened_errors`, for the analytic failure mode.
    """
    if bandwidth_rel_error < 0 or latency_rel_error < 0:
        raise ConfigurationError("relative errors must be >= 0")
    # Imported here: repro.core <-> repro.perfmodel is a package cycle
    # at init time (advisor imports the runtime model).
    from ..perfmodel.queueing import (
        ANALYTIC_BW_ERROR_BOUND,
        ANALYTIC_LAT_ERROR_BOUND,
    )

    return (
        bandwidth_rel_error + ANALYTIC_BW_ERROR_BOUND,
        latency_rel_error + ANALYTIC_LAT_ERROR_BOUND,
    )


def decision_is_robust(
    uncertainty: MlpUncertainty, machine: MachineSpec, binding_level: int
) -> bool:
    """Could the error bar flip the recipe's occupancy verdict?

    Returns True when the whole [low, high] interval lands in the same
    FULL / NEAR-FULL / HEADROOM band; False means "re-measure before
    acting" — operational advice the raw recipe cannot give.
    """
    limit = machine.mshr_limit(binding_level)

    def band(n: float) -> int:
        ratio = n / limit
        if ratio >= FULL_RATIO:
            return 2
        if ratio >= NEAR_FULL_RATIO:
            return 1
        return 0

    return band(uncertainty.n_avg_low) == band(uncertainty.n_avg_high)
