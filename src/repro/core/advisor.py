"""Iterative advisor: the Figure-1 loop run to convergence.

The paper's recipe is explicitly iterative — "the process may be
repeated to consider another optimization depending upon changes in
MSHRQ occupancy and observed performance".  :class:`Advisor` automates
that loop over a workload model:

1. predict the current version's operating point (bandwidth, latency,
   ``n_avg``) with the Little's-law solver,
2. run the recipe, take the highest-graded recommendation the workload
   can actually realize (its effect table knows which transforms the
   code structure admits),
3. apply it, keep it if the predicted speedup clears a threshold,
   otherwise roll back and try the next recommendation,
4. stop when the recipe says stop, nothing realizable remains, or an
   iteration cap is reached.

The result records the full trajectory, mirroring the "Source" columns
of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from ..errors import OptimizationError
from ..machines.spec import MachineSpec
from ..memory.latency_model import LatencyModel
from ..memory.profile import LatencyProfile
from ..optim.transforms import WorkloadState, lookup_effect
from ..perfmodel.runtime import RuntimeModel, RuntimePrediction
from .classify import Classification
from .recipe import RecipeContext

if TYPE_CHECKING:  # pragma: no cover - break the workloads<->core cycle
    from ..workloads.base import Workload
from .mlp import MlpResult
from .recipe import Recipe, RecipeDecision, Recommendation
from .optimizations import OptimizationKind

#: Keep a transform only if it is predicted to clear this speedup.
KEEP_THRESHOLD = 1.04


@dataclass(frozen=True)
class AdvisorStep:
    """One accepted iteration of the loop."""

    source_label: str
    step: str
    decision: RecipeDecision
    predicted_speedup: float
    prediction_after: RuntimePrediction


@dataclass(frozen=True)
class AdvisorResult:
    """The full optimization trajectory for one workload on one machine."""

    workload: str
    machine: str
    steps: Tuple[AdvisorStep, ...]
    final_state: WorkloadState
    final_decision: RecipeDecision
    stop_reason: str
    #: Prediction for the final state (carries ``solved_fast`` /
    #: ``fallback_reason`` provenance when the advisor ran in fast mode).
    final_prediction: Optional[RuntimePrediction] = None

    @property
    def cumulative_speedup(self) -> float:
        """Product of all accepted steps' predicted speedups."""
        total = 1.0
        for step in self.steps:
            total *= step.predicted_speedup
        return total

    def render(self) -> str:
        """Human-readable trajectory summary."""
        lines = [
            f"Advisor trajectory - {self.workload} on {self.machine}",
        ]
        for step in self.steps:
            lines.append(
                f"  {step.source_label:<24s} -> {step.step:<12s} "
                f"(n_avg {step.decision.mlp.n_avg:5.2f}, "
                f"{step.decision.status.value:<9s}) "
                f"predicted {step.predicted_speedup:.2f}x"
            )
        lines.append(
            f"  final: {self.final_state.label} "
            f"(cumulative {self.cumulative_speedup:.2f}x); stop: {self.stop_reason}"
        )
        if self.final_prediction is not None:
            if self.final_prediction.solved_fast:
                lines.append("  solved analytically (closed-form fast path)")
            elif self.final_prediction.fallback_reason:
                lines.append(
                    "  fell back to the full solver: "
                    f"{self.final_prediction.fallback_reason}"
                )
        return "\n".join(lines)


def _step_for_recommendation(
    rec: Recommendation, state: WorkloadState, machine: MachineSpec
) -> Optional[str]:
    """Translate a recipe recommendation into a named transform step."""
    kind = rec.kind
    if kind is OptimizationKind.VECTORIZATION:
        return "vectorize"
    if kind is OptimizationKind.SMT:
        next_ways = state.smt_ways * 2
        if next_ways > machine.smt_ways:
            return None
        return f"smt{next_ways}"
    if kind is OptimizationKind.SW_PREFETCH_L2:
        return "l2_prefetch"
    if kind is OptimizationKind.SW_PREFETCH_L1:
        return "sw_prefetch"
    if kind is OptimizationKind.LOOP_TILING:
        return "loop_tiling"
    if kind is OptimizationKind.LOOP_FUSION:
        return "loop_fusion"
    if kind is OptimizationKind.LOOP_DISTRIBUTION:
        return "loop_distribution"
    if kind is OptimizationKind.UNROLL_AND_JAM:
        return "unroll_and_jam"
    return None


class Advisor:
    """Runs the recipe loop automatically over a workload model."""

    def __init__(
        self,
        workload: "Workload",
        machine: MachineSpec,
        *,
        curve: Optional[Union[LatencyModel, LatencyProfile]] = None,
        max_iterations: int = 8,
        fast: bool = False,
    ) -> None:
        self.workload = workload
        self.machine = machine
        self.model = RuntimeModel(machine, curve=curve, fast=fast)
        self.recipe = Recipe(machine)
        self.max_iterations = max_iterations

    def _decide(self, state: WorkloadState, pred: RuntimePrediction) -> RecipeDecision:
        classification = Classification(
            pattern=state.pattern,
            prefetch_fraction=1.0 - state.random_fraction,
            rationale="workload model",
        )
        mlp = MlpResult(
            bandwidth_bytes=pred.point.bandwidth_bytes,
            utilization=pred.point.bandwidth_bytes / self.machine.memory.peak_bw_bytes,
            latency_ns=pred.point.latency_ns,
            n_avg=pred.point.n_observed,
            n_total=pred.point.n_observed * self.machine.active_cores,
            cores=self.machine.active_cores,
            line_bytes=self.machine.line_bytes,
        )
        context = RecipeContext(
            applied=frozenset(state.applied_kinds),
            smt_ways_used=state.smt_ways,
        )
        return self.recipe.decide(mlp, classification, context)

    def run(self) -> AdvisorResult:
        """Iterate measure → recommend → apply until the recipe stops."""
        state = self.workload.base_state(self.machine)
        prediction = self.model.predict(state)
        steps: List[AdvisorStep] = []
        stop_reason = "iteration cap reached"

        for _ in range(self.max_iterations):
            decision = self._decide(state, prediction)
            if decision.stop:
                stop_reason = "recipe says stop"
                break

            accepted = False
            for rec in decision.recommendations:
                if not rec.benefit.expects_speedup:
                    continue
                step = _step_for_recommendation(rec, state, self.machine)
                if step is None or step in state.applied:
                    continue
                try:
                    effect = lookup_effect(
                        self.workload.effects, step, self.machine.name
                    )
                except OptimizationError:
                    continue  # code structure does not admit this transform
                candidate = effect.apply(state, step)
                candidate_pred = self.model.predict(candidate)
                speedup = candidate_pred.speedup_over(prediction)
                if speedup < KEEP_THRESHOLD:
                    continue  # tried it, rolled it back
                steps.append(
                    AdvisorStep(
                        source_label=state.label,
                        step=step,
                        decision=decision,
                        predicted_speedup=speedup,
                        prediction_after=candidate_pred,
                    )
                )
                state, prediction = candidate, candidate_pred
                accepted = True
                break

            if not accepted:
                stop_reason = "no realizable recommendation pays off"
                break
        final_decision = self._decide(state, prediction)
        return AdvisorResult(
            workload=self.workload.name,
            machine=self.machine.name,
            steps=tuple(steps),
            final_state=state,
            final_decision=final_decision,
            stop_reason=stop_reason,
            final_prediction=prediction,
        )
