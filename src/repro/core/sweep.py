"""What-if sweeps: the operating-curve views behind the paper's figures.

Three exploration helpers a performance engineer reaches for once the
single-point analysis exists:

* :func:`operating_curve` — the machine's (bandwidth, loaded latency,
  per-core ``n_avg``) locus across utilization: Equation 2 drawn as a
  curve.  The MSHR file sizes cross this curve exactly where the
  paper's ceilings sit;
* :func:`demand_sweep` — solved operating points across expressible
  MLP: "what do I get for each extra in-flight request", including the
  saturation knee;
* :func:`headroom_map` — the recipe's verdict (headroom / near-full /
  full, saturated or not) over a utilization grid for each access
  pattern, i.e. the Figure-1 flowchart rendered as a lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..resilience.checkpoint import SweepCheckpoint
from ..machines.spec import MachineSpec
from ..memory.profile import LatencyProfile
from .classify import AccessPattern, Classification
from .mlp import MlpCalculator
from .recipe import OccupancyStatus, Recipe


@dataclass(frozen=True)
class OperatingPoint:
    """One sample of the machine's Equation-2 locus."""

    utilization: float
    bandwidth_gbs: float
    latency_ns: float
    n_avg: float


def operating_curve(
    machine: MachineSpec,
    *,
    profile: Optional[LatencyProfile] = None,
    points: int = 33,
    max_utilization: Optional[float] = None,
    checkpoint: Optional["SweepCheckpoint"] = None,
) -> List[OperatingPoint]:
    """Sample (utilization → bandwidth, latency, n_avg).

    With a ``checkpoint``
    (:class:`repro.resilience.checkpoint.SweepCheckpoint`) each computed
    point is durably recorded, keyed by a digest of the machine,
    profile, and utilization, and replayed on resume — byte-identical
    to an uninterrupted run.
    """
    if points < 2:
        raise ConfigurationError("need at least two points")
    calc = MlpCalculator(machine, profile)
    top = (
        max_utilization
        if max_utilization is not None
        else machine.memory.achievable_fraction
    )
    if not 0 < top <= 1.0:
        raise ConfigurationError("max_utilization must be in (0,1]")
    utilizations = [top * i / (points - 1) for i in range(points)]

    def sample(u: float) -> OperatingPoint:
        result = calc.calculate(u * machine.memory.peak_bw_bytes)
        return OperatingPoint(
            utilization=u,
            bandwidth_gbs=result.bandwidth_gbs,
            latency_ns=result.latency_ns,
            n_avg=result.n_avg,
        )

    if checkpoint is None:
        return [sample(u) for u in utilizations]

    from ..perf.cache import stable_digest
    from ..resilience.checkpoint import dataclass_codec, run_checkpointed

    encode, decode = dataclass_codec(OperatingPoint)
    return run_checkpointed(
        sample,
        utilizations,
        checkpoint=checkpoint,
        key_fn=lambda u: stable_digest(
            {
                "harness": "operating_curve",
                "machine": machine,
                "profile": profile,
                "utilization": u,
            }
        ),
        encode=encode,
        decode=decode,
    )


def utilization_where_mshrs_bind(
    machine: MachineSpec,
    level: int,
    *,
    profile: Optional[LatencyProfile] = None,
) -> Optional[float]:
    """Lowest utilization at which n_avg reaches the MSHR file at ``level``.

    Returns None when even achievable bandwidth never fills the file —
    today's parts at L2, versus the HBM3 concept part where this
    crossing *disappears below* achievable bandwidth (paper §IV-G).
    """
    limit = machine.mshr_limit(level)
    for point in operating_curve(machine, profile=profile, points=201):
        if point.n_avg >= limit:
            return point.utilization
    return None


def demand_sweep(
    machine: MachineSpec,
    binding_level: int,
    demands: Sequence[float],
) -> List[Tuple[float, float, float]]:
    """(demand_mlp, achieved GB/s, observed n_avg) across demand levels."""
    from ..perfmodel.solver import solve_operating_point

    out = []
    for demand in demands:
        point = solve_operating_point(machine, demand, binding_level)
        out.append((demand, point.bandwidth_gbs, point.n_observed))
    return out


@dataclass(frozen=True)
class HeadroomCell:
    """One cell of the recipe-verdict map."""

    pattern: AccessPattern
    utilization: float
    n_avg: float
    status: OccupancyStatus
    saturated: bool
    stop: bool


def headroom_map(
    machine: MachineSpec,
    *,
    profile: Optional[LatencyProfile] = None,
    utilizations: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.8, 0.85),
) -> List[HeadroomCell]:
    """The Figure-1 verdict over (pattern x utilization)."""
    calc = MlpCalculator(machine, profile)
    recipe = Recipe(machine)
    cells = []
    for pattern in AccessPattern:
        pf = {"random": 0.05, "streaming": 0.8, "mixed": 0.35}[pattern.value]
        for u in utilizations:
            if not 0 <= u <= 1:
                raise ConfigurationError("utilizations must be in [0,1]")
            mlp = calc.calculate(u * machine.memory.peak_bw_bytes)
            decision = recipe.decide(
                mlp, Classification(pattern, pf, rationale="sweep")
            )
            cells.append(
                HeadroomCell(
                    pattern=pattern,
                    utilization=u,
                    n_avg=mlp.n_avg,
                    status=decision.status,
                    saturated=decision.bandwidth_saturated,
                    stop=decision.stop,
                )
            )
    return cells


def render_headroom_map(cells: Sequence[HeadroomCell]) -> str:
    """Compact text rendering of :func:`headroom_map`."""
    lines = [f"{'pattern':<10s} {'util':>6s} {'n_avg':>7s}  verdict"]
    for cell in cells:
        verdict = cell.status.value + (" + saturated" if cell.saturated else "")
        if cell.stop:
            verdict += " -> STOP"
        lines.append(
            f"{cell.pattern.value:<10s} {cell.utilization:>5.0%} "
            f"{cell.n_avg:>7.2f}  {verdict}"
        )
    return "\n".join(lines)
