"""Little's law, as the paper applies it (Section III-B).

Equation 1:  ``n_avg = lat_avg * R / T``
    the long-term average number of outstanding memory requests equals
    the request arrival rate ``R/T`` times the average latency.

Equation 2:  ``n_avg = lat_avg * BW / cls``
    the same thing with the arrival rate re-expressed through achieved
    bandwidth ``BW = R * cls / T`` at cache-line granularity ``cls``.

The paper reports ``n_avg`` **per core** (its Tables IV–IX divide the
socket-level product by the core count; that is what makes the numbers
comparable to per-core MSHR file sizes).  The functions below take an
explicit ``cores`` argument so both the socket-level and per-core views
are available, with per-core being the default reading everywhere else
in the library.

Little's law assumes a *stationary* system; the paper therefore applies
it per routine/loop, never to a whole program (footnote 1).  The
stationarity guard lives in :mod:`repro.core.analyzer`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import GIGA, NANO, ns


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def mlp_from_requests(
    requests: float, latency_ns: float, time_ns: float, *, cores: int = 1
) -> float:
    """Equation 1: per-core average outstanding requests.

    Parameters
    ----------
    requests:
        Total memory requests ``R`` (including hardware prefetches) over
        the measurement window.
    latency_ns:
        Average observed (loaded) latency ``lat_avg``.
    time_ns:
        Window length ``T``.
    cores:
        Cores that generated the requests; result is per core.
    """
    if requests < 0:
        raise ConfigurationError(f"requests must be >= 0, got {requests}")
    _check_positive("latency_ns", latency_ns)
    _check_positive("time_ns", time_ns)
    _check_positive("cores", cores)
    return latency_ns * requests / time_ns / cores


def mlp_from_bandwidth(
    bandwidth_bytes: float,
    latency_ns: float,
    line_bytes: int,
    *,
    cores: int = 1,
) -> float:
    """Equation 2: per-core average MSHR occupancy from bandwidth.

    ``n_avg = lat_avg * BW / cls / cores`` with ``BW`` in bytes/s and
    ``lat_avg`` in ns.

    >>> round(mlp_from_bandwidth(106.9e9, 145, 64, cores=24), 1)  # ISx/SKL
    10.1
    """
    if bandwidth_bytes < 0:
        raise ConfigurationError(f"bandwidth must be >= 0, got {bandwidth_bytes}")
    _check_positive("latency_ns", latency_ns)
    _check_positive("line_bytes", line_bytes)
    _check_positive("cores", cores)
    return ns(latency_ns) * bandwidth_bytes / line_bytes / cores


def bandwidth_from_mlp(
    n_avg: float, latency_ns: float, line_bytes: int, *, cores: int = 1
) -> float:
    """Equation 2 solved for bandwidth (bytes/s).

    This is the paper's Figure 2 ceiling: the maximum bandwidth ``n``
    MSHRs per core can sustain at loaded latency ``lat``.
    """
    if n_avg < 0:
        raise ConfigurationError(f"n_avg must be >= 0, got {n_avg}")
    _check_positive("latency_ns", latency_ns)
    _check_positive("line_bytes", line_bytes)
    _check_positive("cores", cores)
    return n_avg * cores * line_bytes / ns(latency_ns)


def latency_from_mlp(
    n_avg: float, bandwidth_bytes: float, line_bytes: int, *, cores: int = 1
) -> float:
    """Equation 2 solved for latency (ns) — the third rearrangement."""
    _check_positive("n_avg", n_avg)
    _check_positive("bandwidth_bytes", bandwidth_bytes)
    _check_positive("line_bytes", line_bytes)
    _check_positive("cores", cores)
    return n_avg * cores * line_bytes / bandwidth_bytes * GIGA


def requests_from_bandwidth(
    bandwidth_bytes: float, time_ns: float, line_bytes: int
) -> float:
    """``R = BW * T / cls``: request count over a window."""
    if bandwidth_bytes < 0:
        raise ConfigurationError("bandwidth must be >= 0")
    _check_positive("time_ns", time_ns)
    _check_positive("line_bytes", line_bytes)
    return bandwidth_bytes * time_ns * NANO / line_bytes
