"""The optimization catalog of paper Section III-C.

Each :class:`OptimizationInfo` records how an optimization interacts
with MLP / MSHR-queue occupancy, which is exactly the property the
recipe keys on:

* *MLP-increasing* optimizations (vectorization, SMT, software
  prefetching) help only while the binding MSHR file has headroom;
* *occupancy-reducing* optimizations (loop tiling, loop fusion) are the
  ones to reach for when the MSHRQ is full;
* *L2 software prefetching* is the special move that shifts the binding
  queue from L1 to L2 for random-access routines (the ISx story);
* supporting transforms (unroll-and-jam, loop distribution) have their
  own applicability notes.

The catalog is data, not logic — :mod:`repro.core.recipe` selects from
it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from .classify import AccessPattern


class OptimizationKind(enum.Enum):
    """Identifiers for every optimization the paper discusses."""

    VECTORIZATION = "vectorization"
    SMT = "smt"
    SW_PREFETCH_L1 = "sw_prefetch_l1"
    SW_PREFETCH_L2 = "sw_prefetch_l2"
    LOOP_TILING = "loop_tiling"
    UNROLL_AND_JAM = "unroll_and_jam"
    LOOP_FUSION = "loop_fusion"
    LOOP_DISTRIBUTION = "loop_distribution"


@dataclass(frozen=True)
class OptimizationInfo:
    """Recipe-relevant properties of one optimization."""

    kind: OptimizationKind
    #: Does it raise the demanded MLP (needs MSHR headroom to pay off)?
    increases_mlp: bool
    #: Does it cut total memory requests (helps when MSHRQ/bandwidth bound)?
    reduces_requests: bool
    #: Does it shift the binding MSHR file from L1 to L2?
    shifts_binding_to_l2: bool
    #: Access patterns it is applicable to.
    applicable_patterns: Tuple[AccessPattern, ...]
    #: Paper's one-line guidance.
    guidance: str

    @property
    def name(self) -> str:
        """Catalog name (the kind's string value)."""
        return self.kind.value


_ALL = (AccessPattern.RANDOM, AccessPattern.STREAMING, AccessPattern.MIXED)

CATALOG: Mapping[OptimizationKind, OptimizationInfo] = {
    OptimizationKind.VECTORIZATION: OptimizationInfo(
        kind=OptimizationKind.VECTORIZATION,
        increases_mlp=True,
        reduces_requests=False,
        shifts_binding_to_l2=False,
        applicable_patterns=_ALL,
        guidance=(
            "Very effective at increasing MLP; no additional benefit once "
            "average MSHRQ occupancy is close to MSHRQ size."
        ),
    ),
    OptimizationKind.SMT: OptimizationInfo(
        kind=OptimizationKind.SMT,
        increases_mlp=True,
        reduces_requests=False,
        shifts_binding_to_l2=False,
        applicable_patterns=_ALL,
        guidance=(
            "Threads share the core's MSHRs; profitable unless MSHRQ is "
            "near full, with caveats for cache-residency contention."
        ),
    ),
    OptimizationKind.SW_PREFETCH_L1: OptimizationInfo(
        kind=OptimizationKind.SW_PREFETCH_L1,
        increases_mlp=True,
        reduces_requests=False,
        shifts_binding_to_l2=False,
        applicable_patterns=_ALL,
        guidance=(
            "Each software prefetch occupies an MSHR, denying demand loads; "
            "not recommended when MSHRQ occupancy is already high. Useful "
            "for short inner loops the hardware prefetcher cannot cover "
            "timely (SNAP)."
        ),
    ),
    OptimizationKind.SW_PREFETCH_L2: OptimizationInfo(
        kind=OptimizationKind.SW_PREFETCH_L2,
        increases_mlp=True,
        reduces_requests=False,
        shifts_binding_to_l2=True,
        applicable_patterns=(AccessPattern.RANDOM, AccessPattern.MIXED),
        guidance=(
            "Prefetching to L2 uses the otherwise-idle L2 MSHRs of "
            "random-access routines, breaking through the L1-MSHR ceiling "
            "(ISx)."
        ),
    ),
    OptimizationKind.LOOP_TILING: OptimizationInfo(
        kind=OptimizationKind.LOOP_TILING,
        increases_mlp=False,
        reduces_requests=True,
        shifts_binding_to_l2=False,
        applicable_patterns=(AccessPattern.STREAMING, AccessPattern.MIXED),
        guidance=(
            "Excellent when occupancy is high: tiling reduces memory "
            "requests and therefore MSHRQ occupancy (MiniGhost)."
        ),
    ),
    OptimizationKind.UNROLL_AND_JAM: OptimizationInfo(
        kind=OptimizationKind.UNROLL_AND_JAM,
        increases_mlp=False,
        reduces_requests=True,
        shifts_binding_to_l2=False,
        applicable_patterns=_ALL,
        guidance=(
            "Register tiling; beneficial when accesses already see small "
            "latency (most data in cache), inferable from low MSHRQ "
            "occupancy (dgemm)."
        ),
    ),
    OptimizationKind.LOOP_FUSION: OptimizationInfo(
        kind=OptimizationKind.LOOP_FUSION,
        increases_mlp=False,
        reduces_requests=True,
        shifts_binding_to_l2=False,
        applicable_patterns=(AccessPattern.STREAMING, AccessPattern.MIXED),
        guidance=(
            "Reduces reuse distance and MSHRQ occupancy like tiling; can "
            "rarely hurt by increasing the number of data streams."
        ),
    ),
    OptimizationKind.LOOP_DISTRIBUTION: OptimizationInfo(
        kind=OptimizationKind.LOOP_DISTRIBUTION,
        increases_mlp=False,
        reduces_requests=False,
        shifts_binding_to_l2=False,
        applicable_patterns=(AccessPattern.STREAMING,),
        guidance=(
            "Helps only by reducing active streams / bandwidth contention; "
            "unlikely to benefit applications with low MLP."
        ),
    ),
}


def info(kind: OptimizationKind) -> OptimizationInfo:
    """Catalog lookup."""
    return CATALOG[kind]


def mlp_increasing() -> Tuple[OptimizationInfo, ...]:
    """All optimizations that raise demanded MLP."""
    return tuple(i for i in CATALOG.values() if i.increases_mlp)


def occupancy_reducing() -> Tuple[OptimizationInfo, ...]:
    """All optimizations that cut requests / occupancy."""
    return tuple(i for i in CATALOG.values() if i.reduces_requests)


def applicable_to(pattern: AccessPattern) -> Tuple[OptimizationInfo, ...]:
    """Catalog entries applicable to an access pattern."""
    return tuple(
        i for i in CATALOG.values() if pattern in i.applicable_patterns
    )
