"""Rendering helpers: paper-style tables for analyses and case studies.

The paper presents its evaluation as per-application tables (IV–IX)
whose columns are ``Source | BW_obs (GB/s) | lat_avg (ns) | n_avg |
Opt: Performance``.  :func:`render_case_study_table` reproduces that
layout from rows the experiments produce, and
:func:`render_comparison_table` adds paper-vs-measured columns for
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..resilience.quality import DataQualityIssue, issue_summary


@dataclass(frozen=True)
class CaseStudyRow:
    """One row of a Table IV–IX style summary."""

    proc: str
    source: str
    bw_gbs: float
    bw_pct: float
    latency_ns: float
    n_avg: float
    opt_label: str
    speedup: Optional[float]

    def perf_cell(self) -> str:
        """The paper's 'Opt: Performance' cell text."""
        if self.speedup is None:
            return "-"
        return f"{self.opt_label}: {self.speedup:.2f}x"


def render_case_study_table(title: str, rows: Sequence[CaseStudyRow]) -> str:
    """Render rows in the paper's table layout."""
    header = (
        f"{'Proc':<7s} {'Source':<24s} {'BW_obs (GB/s)':>15s} "
        f"{'lat_avg (ns)':>13s} {'n_avg':>7s}  Opt: Performance"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.proc:<7s} {row.source:<24s} "
            f"{row.bw_gbs:>8.1f} ({row.bw_pct:>3.0f}%) "
            f"{row.latency_ns:>13.0f} {row.n_avg:>7.2f}  {row.perf_cell()}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ComparisonRow:
    """Paper-vs-measured for one experiment row."""

    label: str
    paper_n_avg: float
    measured_n_avg: float
    paper_speedup: Optional[float]
    measured_speedup: Optional[float]
    agrees: bool

    @property
    def n_avg_error(self) -> float:
        """Relative n_avg error versus the paper's value."""
        if self.paper_n_avg == 0:
            return 0.0
        return abs(self.measured_n_avg - self.paper_n_avg) / self.paper_n_avg


def render_data_quality(issues: Sequence[DataQualityIssue]) -> str:
    """Render a degraded-mode ingestion report.

    A census line (``3 issue(s): 2 skipped-row, 1 nan-bandwidth``)
    followed by one indented line per issue, so a report built from
    imperfect data carries its caveats with it.  Empty input renders
    the all-clear line.
    """
    lines = [f"data quality: {issue_summary(issues)}"]
    lines.extend(f"  - {issue.render()}" for issue in issues)
    return "\n".join(lines)


def render_comparison_table(title: str, rows: Sequence[ComparisonRow]) -> str:
    """Render a paper-vs-measured table for EXPERIMENTS.md."""
    header = (
        f"{'row':<30s} {'n_avg paper':>12s} {'n_avg ours':>11s} "
        f"{'speedup paper':>14s} {'speedup ours':>13s}  verdict"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        paper_s = f"{row.paper_speedup:.2f}x" if row.paper_speedup else "-"
        ours_s = f"{row.measured_speedup:.2f}x" if row.measured_speedup else "-"
        verdict = "agree" if row.agrees else "DISAGREE"
        lines.append(
            f"{row.label:<30s} {row.paper_n_avg:>12.2f} {row.measured_n_avg:>11.2f} "
            f"{paper_s:>14s} {ours_s:>13s}  {verdict}"
        )
    return "\n".join(lines)
