"""The paper's Figure 1 recipe: from n_avg to concrete optimization advice.

Decision structure (following the flowchart and the Section IV case
studies):

1. Compute ``n_avg`` (done upstream by :class:`~repro.core.mlp.MlpCalculator`).
2. Decide the **binding MSHR file**: L1 for random-access routines,
   L2 for prefetcher-covered streaming routines.
3. Compare ``n_avg`` against that file's size:

   * occupancy ≈ size → **stop**, or apply only occupancy-*reducing*
     optimizations (tiling, fusion); if the routine is random-access,
     the binding is L1 and the L2 MSHRs sit idle — recommend **L2
     software prefetching** to shift the bottleneck (ISx);
   * occupancy < size → MLP-increasing optimizations apply
     (vectorization first, then SMT, then software prefetch), *unless*
     bandwidth is already at the achievable-streams ceiling, in which
     case only request-reducing optimizations can help (HPCG/MiniGhost
     on SKL).

4. Re-measure and repeat after each applied optimization.

The decision also grades the **expected benefit** of each optimization
(none / marginal / moderate / significant), which is what the
experiments check against the paper's observed speedups row by row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from .classify import AccessPattern, Classification
from .mlp import MlpResult
from .optimizations import (
    CATALOG,
    OptimizationInfo,
    OptimizationKind,
)

#: Occupancy/limit ratio at and above which the MSHRQ counts as full.
FULL_RATIO = 0.95
#: Ratio above which gains from MLP-increasing optimizations are marginal.
NEAR_FULL_RATIO = 0.82
#: Fraction of achievable-streams bandwidth that counts as saturated.
BW_SATURATED_RATIO = 0.93
#: Prefetch streams one thread of a streaming routine typically carries
#: (paper Section IV-B: "each thread introduces 8-10 prefetch streams").
STREAMS_PER_THREAD = 8
#: Fraction of achievable bandwidth the paper treats as "very high",
#: where request-reducing optimizations (tiling) become the clear lever
#: (MiniGhost base runs at 67-84% and the paper's recipe "deems it
#: beneficial to perform loop tiling").
BW_HIGH_RATIO = 0.60


class OccupancyStatus(enum.Enum):
    """Where n_avg sits relative to the binding MSHR file."""

    HEADROOM = "headroom"
    NEAR_FULL = "near_full"
    FULL = "full"


class Benefit(enum.Enum):
    """Expected benefit grade for one optimization in one state."""

    NONE = 0
    MARGINAL = 1
    MODERATE = 2
    SIGNIFICANT = 3

    @property
    def expects_speedup(self) -> bool:
        """Does this grade predict a measurable (>= ~5%) speedup?"""
        return self.value >= Benefit.MODERATE.value


@dataclass(frozen=True)
class Recommendation:
    """One recommended (or contraindicated) optimization with a reason."""

    info: OptimizationInfo
    benefit: Benefit
    reason: str

    @property
    def kind(self) -> OptimizationKind:
        """The recommended optimization's kind."""
        return self.info.kind


@dataclass(frozen=True)
class RecipeContext:
    """What has already been done to the code (the 'Source' column)."""

    applied: FrozenSet[OptimizationKind] = frozenset()
    smt_ways_used: int = 1
    #: Force the binding level (overrides classification), for expert use.
    binding_level_override: Optional[int] = None

    def with_applied(self, kind: OptimizationKind) -> "RecipeContext":
        """A copy of this context with one more optimization applied."""
        return RecipeContext(
            applied=self.applied | {kind},
            smt_ways_used=self.smt_ways_used,
            binding_level_override=self.binding_level_override,
        )


@dataclass(frozen=True)
class RecipeDecision:
    """Full output of one pass through the Figure-1 flowchart."""

    mlp: MlpResult
    classification: Classification
    binding_level: int
    mshr_limit: int
    occupancy_ratio: float
    status: OccupancyStatus
    bandwidth_ratio: float  # of achievable-streams bandwidth
    bandwidth_saturated: bool
    recommendations: Tuple[Recommendation, ...]
    notes: Tuple[str, ...]

    @property
    def stop(self) -> bool:
        """True when no optimization is expected to help."""
        return not any(r.benefit.expects_speedup for r in self.recommendations)

    def benefit_of(self, kind: OptimizationKind) -> Benefit:
        """Expected benefit of a specific optimization (NONE if absent)."""
        for rec in self.recommendations:
            if rec.kind == kind:
                return rec.benefit
        return Benefit.NONE

    def top_recommendation(self) -> Optional[Recommendation]:
        """Highest-benefit recommendation, or None when stopping."""
        viable = [r for r in self.recommendations if r.benefit.expects_speedup]
        return viable[0] if viable else None


class Recipe:
    """The Figure-1 decision engine for one machine."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine

    # -- main entry -------------------------------------------------------------

    def decide(
        self,
        mlp: MlpResult,
        classification: Classification,
        context: Optional[RecipeContext] = None,
    ) -> RecipeDecision:
        """Run the flowchart once for a measured routine state."""
        ctx = context or RecipeContext()
        machine = self.machine

        binding = ctx.binding_level_override or classification.binding_level
        if binding not in (1, 2):
            raise ConfigurationError(f"binding level must be 1 or 2, got {binding}")
        limit = machine.mshr_limit(binding)
        ratio = mlp.n_avg / limit if limit else float("inf")
        status = self._status(ratio)

        achievable = machine.memory.achievable_bw_bytes
        bw_ratio = mlp.bandwidth_bytes / achievable
        saturated = bw_ratio >= BW_SATURATED_RATIO

        notes: List[str] = [
            f"binding MSHRQ: L{binding} ({limit} entries/core), "
            f"n_avg {mlp.n_avg:.2f} -> {ratio:.0%} occupied",
            f"bandwidth {mlp.bandwidth_gbs:.1f} GB/s = {bw_ratio:.0%} of "
            f"achievable streams bandwidth",
        ]
        recs = self._recommend(mlp, classification, ctx, binding, status, saturated, notes)
        return RecipeDecision(
            mlp=mlp,
            classification=classification,
            binding_level=binding,
            mshr_limit=limit,
            occupancy_ratio=ratio,
            status=status,
            bandwidth_ratio=bw_ratio,
            bandwidth_saturated=saturated,
            recommendations=tuple(recs),
            notes=tuple(notes),
        )

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _status(ratio: float) -> OccupancyStatus:
        if ratio >= FULL_RATIO:
            return OccupancyStatus.FULL
        if ratio >= NEAR_FULL_RATIO:
            return OccupancyStatus.NEAR_FULL
        return OccupancyStatus.HEADROOM

    def _recommend(
        self,
        mlp: MlpResult,
        classification: Classification,
        ctx: RecipeContext,
        binding: int,
        status: OccupancyStatus,
        saturated: bool,
        notes: List[str],
    ) -> List[Recommendation]:
        recs: List[Recommendation] = []
        machine = self.machine
        pattern = classification.pattern

        # -- MLP-increasing family -------------------------------------------
        mlp_benefit = self._mlp_increasing_benefit(status, saturated, notes)

        if OptimizationKind.VECTORIZATION not in ctx.applied:
            recs.append(
                Recommendation(
                    CATALOG[OptimizationKind.VECTORIZATION],
                    mlp_benefit,
                    self._mlp_reason("vectorization", status, saturated),
                )
            )
        if machine.smt_ways > ctx.smt_ways_used:
            smt_benefit = mlp_benefit
            smt_reason = self._mlp_reason(
                f"{ctx.smt_ways_used * 2}-way SMT", status, saturated
            )
            # Paper Section IV-B: the L2 prefetcher tracks a bounded
            # number of streams; a streaming routine's threads each
            # bring ~8-10 streams, so going past the tracker capacity
            # caps the SMT gain (HPCG 4-way on KNL: 1.03x).
            next_ways = ctx.smt_ways_used * 2
            if (
                pattern is AccessPattern.STREAMING
                and next_ways * STREAMS_PER_THREAD > machine.prefetch_streams
                and smt_benefit.value > Benefit.MARGINAL.value
            ):
                smt_benefit = Benefit.MARGINAL
                smt_reason = (
                    f"{next_ways} threads x ~{STREAMS_PER_THREAD} streams "
                    f"exceed the {machine.prefetch_streams}-stream L2 "
                    "prefetch tracker; gains will be marginal"
                )
                notes.append(
                    "SMT gain limited by the hardware prefetcher's stream "
                    "tracking capacity"
                )
            recs.append(
                Recommendation(
                    CATALOG[OptimizationKind.SMT], smt_benefit, smt_reason
                )
            )
        elif machine.smt_ways == 1:
            notes.append("machine has no SMT; skipping the SMT recommendation")

        # -- the L1 -> L2 shift (ISx move) --------------------------------------
        if (
            binding == 1
            and pattern in (AccessPattern.RANDOM, AccessPattern.MIXED)
            and OptimizationKind.SW_PREFETCH_L2 not in ctx.applied
        ):
            l2_limit = machine.mshr_limit(2)
            if l2_limit > machine.mshr_limit(1) and not saturated:
                benefit = (
                    Benefit.SIGNIFICANT
                    if status in (OccupancyStatus.FULL, OccupancyStatus.NEAR_FULL)
                    else Benefit.MODERATE
                )
                recs.append(
                    Recommendation(
                        CATALOG[OptimizationKind.SW_PREFETCH_L2],
                        benefit,
                        (
                            f"L1 MSHRQ binds ({machine.mshr_limit(1)}/core) but "
                            f"{l2_limit} L2 MSHRs/core sit idle for this "
                            "random-access routine; prefetching to L2 shifts the "
                            "bottleneck and unlocks surplus bandwidth"
                        ),
                    )
                )

        # -- L1 software prefetch (short-loop timeliness, SNAP) ------------------
        if (
            OptimizationKind.SW_PREFETCH_L1 not in ctx.applied
            and status is OccupancyStatus.HEADROOM
            and not saturated
        ):
            if machine.hw_prefetcher_aggressive or pattern is AccessPattern.STREAMING:
                swpf_benefit = Benefit.MARGINAL
                swpf_reason = (
                    "the hardware prefetcher already covers most of what "
                    "software prefetches could add; expect only marginal gains "
                    "(plus prefetch-instruction overhead)"
                )
            else:
                swpf_benefit = Benefit.MODERATE
                swpf_reason = (
                    "MSHRQ occupancy is low; software prefetches can add MLP "
                    "where the hardware prefetcher is not timely"
                )
            recs.append(
                Recommendation(
                    CATALOG[OptimizationKind.SW_PREFETCH_L1],
                    swpf_benefit,
                    swpf_reason,
                )
            )
        elif status is not OccupancyStatus.HEADROOM:
            notes.append(
                "software prefetching to L1 not recommended: each prefetch "
                "occupies an MSHR the demand stream needs"
            )

        # -- occupancy-reducing family -------------------------------------------
        bw_ratio = mlp.bandwidth_bytes / machine.memory.achievable_bw_bytes
        if status in (OccupancyStatus.FULL, OccupancyStatus.NEAR_FULL) or saturated:
            reduce_benefit = Benefit.SIGNIFICANT
        elif bw_ratio >= BW_HIGH_RATIO:
            # Bandwidth already very high: cutting requests is the clear
            # lever (paper's MiniGhost guidance).
            reduce_benefit = Benefit.MODERATE
        else:
            reduce_benefit = Benefit.MARGINAL
        if pattern is not AccessPattern.RANDOM:
            if OptimizationKind.LOOP_TILING not in ctx.applied:
                recs.append(
                    Recommendation(
                        CATALOG[OptimizationKind.LOOP_TILING],
                        reduce_benefit,
                        "tiling reduces memory requests and MSHRQ occupancy; "
                        "the right lever when occupancy/bandwidth are high",
                    )
                )
            if OptimizationKind.LOOP_FUSION not in ctx.applied:
                recs.append(
                    Recommendation(
                        CATALOG[OptimizationKind.LOOP_FUSION],
                        Benefit.MARGINAL
                        if reduce_benefit is Benefit.SIGNIFICANT
                        else Benefit.NONE,
                        "fusion promotes reuse like tiling but can add streams; "
                        "secondary to tiling",
                    )
                )

        # -- register tiling at very low occupancy --------------------------------
        if mlp.n_avg < 1.0 and OptimizationKind.UNROLL_AND_JAM not in ctx.applied:
            recs.append(
                Recommendation(
                    CATALOG[OptimizationKind.UNROLL_AND_JAM],
                    Benefit.MODERATE,
                    "very low MSHRQ occupancy implies data largely in cache; "
                    "register tiling exploits that",
                )
            )

        recs.sort(key=lambda r: r.benefit.value, reverse=True)
        return recs

    @staticmethod
    def _mlp_increasing_benefit(
        status: OccupancyStatus, saturated: bool, notes: List[str]
    ) -> Benefit:
        if saturated:
            notes.append(
                "already at peak achievable streams bandwidth: MLP-increasing "
                "optimizations cannot help (HPCG/MiniGhost-on-SKL scenario)"
            )
            return Benefit.NONE
        if status is OccupancyStatus.FULL:
            notes.append(
                "MSHRQ effectively full: no headroom to push MLP further"
            )
            return Benefit.NONE
        if status is OccupancyStatus.NEAR_FULL:
            return Benefit.MARGINAL
        return Benefit.SIGNIFICANT

    @staticmethod
    def _mlp_reason(name: str, status: OccupancyStatus, saturated: bool) -> str:
        if saturated:
            return f"{name}: no benefit expected, bandwidth already saturated"
        if status is OccupancyStatus.FULL:
            return f"{name}: no benefit expected, MSHRQ is full"
        if status is OccupancyStatus.NEAR_FULL:
            return f"{name}: only marginal benefit, MSHRQ nearly full"
        return f"{name}: MSHRQ headroom available, expect a real speedup"
