"""MLP calculation: observed bandwidth + latency profile → n_avg.

This is the paper's central measurement pipeline (Figure 1, top half):

1. read the routine's observed bandwidth from portable counters
   (CrayPat substitute, :mod:`repro.counters`),
2. look up the loaded latency at that bandwidth on the machine's
   once-measured X-Mem profile,
3. apply Little's law (Equation 2) to get the average MSHR-queue
   occupancy per core.

No per-load latency counter is involved anywhere — that is the whole
portability argument of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..memory.latency_model import model_for_machine
from ..memory.profile import LatencyProfile
from ..units import gb_per_s, to_gb_per_s
from .littles_law import mlp_from_bandwidth


@dataclass(frozen=True)
class MlpResult:
    """The derived metrics for one routine measurement."""

    bandwidth_bytes: float
    utilization: float
    latency_ns: float
    #: Per-core average MSHR occupancy — the paper's ``n_avg``.
    n_avg: float
    #: Socket-level total outstanding requests.
    n_total: float
    cores: int
    line_bytes: int

    @property
    def bandwidth_gbs(self) -> float:
        """Observed bandwidth in GB/s."""
        return to_gb_per_s(self.bandwidth_bytes)

    def summary(self) -> str:
        """Paper-table-style one-liner: BW (xx%), lat, n_avg."""
        return (
            f"{self.bandwidth_gbs:.1f} GB/s ({self.utilization:.0%}), "
            f"lat {self.latency_ns:.0f} ns, n_avg {self.n_avg:.2f}"
        )


class MlpCalculator:
    """Computes :class:`MlpResult` from observed bandwidth.

    Parameters
    ----------
    machine:
        The host machine's spec (core count, line size, peak bandwidth).
    profile:
        The machine's loaded-latency profile.  If omitted, the profile
        is derived from the machine's calibrated latency model — the
        paper's workflow uses a measured X-Mem profile, and
        :func:`repro.xmem.characterize_machine` produces one.
    cores:
        Cores the measured routine ran on; defaults to the machine's
        loaded-run core count (the paper's recommended measurement
        condition is an all-cores run).
    """

    def __init__(
        self,
        machine: MachineSpec,
        profile: Optional[LatencyProfile] = None,
        *,
        cores: Optional[int] = None,
    ) -> None:
        self.machine = machine
        self.profile = profile or LatencyProfile.from_model(
            machine.name, machine.memory.peak_bw_bytes, model_for_machine(machine)
        )
        if self.profile.machine_name != machine.name:
            raise ConfigurationError(
                f"profile is for {self.profile.machine_name!r}, "
                f"machine is {machine.name!r}"
            )
        self.cores = cores if cores is not None else machine.active_cores
        if not 0 < self.cores <= machine.cores:
            raise ConfigurationError(
                f"cores must be in 1..{machine.cores}, got {self.cores}"
            )

    def calculate(self, bandwidth_bytes: float) -> MlpResult:
        """Derive latency and per-core MLP for one observed bandwidth."""
        if bandwidth_bytes < 0:
            raise ConfigurationError("bandwidth must be >= 0")
        latency_ns = self.profile.latency_at(bandwidth_bytes)
        line = self.machine.line_bytes
        n_avg = mlp_from_bandwidth(bandwidth_bytes, latency_ns, line, cores=self.cores)
        return MlpResult(
            bandwidth_bytes=bandwidth_bytes,
            utilization=bandwidth_bytes / self.machine.memory.peak_bw_bytes,
            latency_ns=latency_ns,
            n_avg=n_avg,
            n_total=n_avg * self.cores,
            cores=self.cores,
            line_bytes=line,
        )

    def calculate_gbs(self, bandwidth_gbs: float) -> MlpResult:
        """Same as :meth:`calculate` with bandwidth given in GB/s."""
        return self.calculate(gb_per_s(bandwidth_gbs))
