"""Access-pattern classification: which MSHR queue binds a routine.

Per paper Section III-A / III-D, the binding MSHR file depends on the
routine's access pattern:

* **random** accesses do not trigger the L2 hardware prefetcher, so the
  small **L1** MSHR file is the MLP bottleneck;
* **streaming** accesses are covered by the aggressive L2 prefetcher,
  which keeps many prefetch requests in flight, so the larger **L2**
  MSHR file binds.

The classification signal is "the fraction of memory requests that are
generated from hardware prefetcher versus demand loads — this data is
also often exposed through performance counters or one may determine it
by disabling the hardware prefetcher".  Both methods are implemented:
:func:`classify_from_prefetch_fraction` reads the counter, and
:func:`classify_by_prefetcher_toggle` compares simulation runs with the
prefetcher on and off.

The paper also warns that in a *mix* (e.g. SpMV) the random stream
"usually easily dominates memory traffic since each reference is
usually to a different cache line"; :func:`dominant_pattern` encodes
that dominance rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError


class AccessPattern(enum.Enum):
    """Coarse access-pattern classes the recipe distinguishes."""

    RANDOM = "random"
    STREAMING = "streaming"
    MIXED = "mixed"

    @property
    def binding_level(self) -> int:
        """Cache level whose MSHR file limits MLP for this pattern."""
        return 1 if self is AccessPattern.RANDOM else 2


@dataclass(frozen=True)
class Classification:
    """Pattern verdict plus the evidence that produced it."""

    pattern: AccessPattern
    prefetch_fraction: float
    rationale: str

    @property
    def binding_level(self) -> int:
        """Cache level whose MSHR file binds this pattern."""
        return self.pattern.binding_level


#: Below this prefetch share the prefetcher is "largely ineffective".
RANDOM_THRESHOLD = 0.20
#: Above this share the routine is clearly prefetcher-covered.
STREAMING_THRESHOLD = 0.50


def classify_from_prefetch_fraction(prefetch_fraction: float) -> Classification:
    """Classify from the hardware-prefetch share of memory traffic."""
    if not 0.0 <= prefetch_fraction <= 1.0:
        raise ConfigurationError(
            f"prefetch fraction must be in [0,1], got {prefetch_fraction}"
        )
    if prefetch_fraction < RANDOM_THRESHOLD:
        return Classification(
            AccessPattern.RANDOM,
            prefetch_fraction,
            f"hardware prefetcher covers only {prefetch_fraction:.0%} of traffic: "
            "largely ineffective, L1 MSHRQ binds",
        )
    if prefetch_fraction >= STREAMING_THRESHOLD:
        return Classification(
            AccessPattern.STREAMING,
            prefetch_fraction,
            f"hardware prefetcher covers {prefetch_fraction:.0%} of traffic: "
            "streaming, L2 MSHRQ binds",
        )
    return Classification(
        AccessPattern.MIXED,
        prefetch_fraction,
        f"prefetcher covers {prefetch_fraction:.0%} of traffic: mixed pattern",
    )


def classify_by_prefetcher_toggle(
    time_with_prefetch_ns: float, time_without_prefetch_ns: float
) -> Classification:
    """Classify by disabling the prefetcher (the paper's second method).

    A large slowdown without the prefetcher (HPCG: >3x on SKL) marks a
    streaming routine; near-identical time marks a random one.
    """
    if time_with_prefetch_ns <= 0 or time_without_prefetch_ns <= 0:
        raise ConfigurationError("run times must be positive")
    slowdown = time_without_prefetch_ns / time_with_prefetch_ns
    if slowdown >= 1.5:
        return Classification(
            AccessPattern.STREAMING,
            prefetch_fraction=float("nan"),
            rationale=(
                f"disabling the prefetcher slows the routine {slowdown:.1f}x: "
                "prefetcher-covered streaming accesses, L2 MSHRQ binds"
            ),
        )
    if slowdown <= 1.1:
        return Classification(
            AccessPattern.RANDOM,
            prefetch_fraction=float("nan"),
            rationale=(
                f"prefetcher toggle changes runtime only {slowdown:.2f}x: "
                "prefetcher ineffective, L1 MSHRQ binds"
            ),
        )
    return Classification(
        AccessPattern.MIXED,
        prefetch_fraction=float("nan"),
        rationale=f"prefetcher toggle slowdown {slowdown:.2f}x: mixed pattern",
    )


def dominant_pattern(
    random_traffic_bytes: float, streaming_traffic_bytes: float
) -> AccessPattern:
    """The paper's SpMV dominance rule for mixed routines.

    Random references usually touch a fresh cache line each while
    streaming references share lines, so random traffic dominates once
    it is a substantial share of bytes.
    """
    if random_traffic_bytes < 0 or streaming_traffic_bytes < 0:
        raise ConfigurationError("traffic volumes must be >= 0")
    total = random_traffic_bytes + streaming_traffic_bytes
    if total == 0:
        return AccessPattern.STREAMING
    random_share = random_traffic_bytes / total
    if random_share >= 0.5:
        return AccessPattern.RANDOM
    if random_share <= 0.1:
        return AccessPattern.STREAMING
    return AccessPattern.MIXED
