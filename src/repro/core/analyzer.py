"""End-to-end routine analysis: counters → MLP → recipe, per routine.

:class:`RoutineAnalyzer` is the user-facing entry point that strings the
whole method together the way the paper's Figure 1 prescribes:

* input is a **per-routine** observed bandwidth (from the CrayPat
  substitute or given directly) plus the access-pattern evidence,
* output is an :class:`AnalysisReport`: the Little's-law metrics, the
  binding MSHR file, and the graded optimization recommendations.

The stationarity footnote is enforced: :meth:`analyze_program` refuses
to average routines whose bandwidths differ materially, raising
:class:`~repro.errors.StationarityError` unless ``force=True`` — and
when forced, the report is stamped as unreliable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..counters.session import CounterSession
from ..errors import ConfigurationError, StationarityError
from ..machines.spec import MachineSpec
from ..memory.profile import LatencyProfile
from ..sim.stats import SimStats
from ..units import gb_per_s, ns, to_gb_per_s
from .classify import Classification, classify_from_prefetch_fraction
from .mlp import MlpCalculator, MlpResult
from .recipe import Recipe, RecipeContext, RecipeDecision

#: Routines whose bandwidths differ by more than this factor are
#: considered non-stationary when aggregated.
STATIONARITY_SPREAD = 2.0


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the method derives for one routine."""

    routine: str
    machine_name: str
    mlp: MlpResult
    classification: Classification
    decision: RecipeDecision
    #: True when produced by a forced whole-program aggregation.
    non_stationary: bool = False

    def render(self) -> str:
        """Human-readable report (the library's 'prescription glasses')."""
        lines = [
            f"== {self.routine} on {self.machine_name} ==",
            f"  observed: {self.mlp.summary()}",
            f"  pattern:  {self.classification.pattern.value} "
            f"({self.classification.rationale})",
        ]
        if self.non_stationary:
            lines.append(
                "  WARNING: aggregated across dissimilar routines; Little's law "
                "assumes stationarity and this guidance is unreliable"
            )
        for note in self.decision.notes:
            lines.append(f"  note: {note}")
        if self.decision.stop:
            lines.append("  verdict: STOP - no optimization expected to help")
        else:
            lines.append("  recommendations (best first):")
            for rec in self.decision.recommendations:
                lines.append(
                    f"    [{rec.benefit.name.lower():<11s}] {rec.info.name}: "
                    f"{rec.reason}"
                )
        return "\n".join(lines)


class RoutineAnalyzer:
    """Per-routine analysis engine for one machine + latency profile."""

    def __init__(
        self,
        machine: MachineSpec,
        profile: Optional[LatencyProfile] = None,
        *,
        cores: Optional[int] = None,
    ) -> None:
        self.machine = machine
        self.calculator = MlpCalculator(machine, profile, cores=cores)
        self.recipe = Recipe(machine)

    # -- direct-bandwidth entry (the paper's tables workflow) --------------------

    def analyze_bandwidth(
        self,
        bandwidth_bytes: float,
        *,
        routine: str = "kernel",
        prefetch_fraction: Optional[float] = None,
        classification: Optional[Classification] = None,
        context: Optional[RecipeContext] = None,
    ) -> AnalysisReport:
        """Analyze a routine from its observed bandwidth.

        Exactly one of ``prefetch_fraction`` / ``classification`` must
        be provided as the access-pattern evidence.
        """
        if (prefetch_fraction is None) == (classification is None):
            raise ConfigurationError(
                "provide exactly one of prefetch_fraction or classification"
            )
        if classification is None:
            classification = classify_from_prefetch_fraction(prefetch_fraction)
        mlp = self.calculator.calculate(bandwidth_bytes)
        decision = self.recipe.decide(mlp, classification, context)
        return AnalysisReport(
            routine=routine,
            machine_name=self.machine.name,
            mlp=mlp,
            classification=classification,
            decision=decision,
        )

    def analyze_bandwidth_gbs(self, bandwidth_gbs: float, **kwargs) -> AnalysisReport:
        """Same as :meth:`analyze_bandwidth` with GB/s input."""
        return self.analyze_bandwidth(gb_per_s(bandwidth_gbs), **kwargs)

    # -- simulator-run entry -------------------------------------------------------

    def analyze_run(
        self,
        stats: SimStats,
        *,
        context: Optional[RecipeContext] = None,
    ) -> AnalysisReport:
        """Analyze a finished simulation run through the counter facade.

        The bandwidth is read the way CrayPat would (vendor counters +
        writeback heuristic) and scaled from the simulated slice to the
        full socket, so reports are comparable to paper tables.
        """
        session = CounterSession(self.machine, stats)
        slice_cores = max(1, len(stats.l1_occupancy))
        scale = self.machine.active_cores / slice_cores
        socket_bw = session.bandwidth_bytes_per_s() * scale
        return self.analyze_bandwidth(
            socket_bw,
            routine=stats.routine,
            prefetch_fraction=stats.memory.prefetch_fraction,
            context=context,
        )

    # -- whole-program guard ----------------------------------------------------------

    def analyze_program(
        self,
        runs: Sequence[SimStats],
        *,
        force: bool = False,
        routine: str = "whole-program",
        context: Optional[RecipeContext] = None,
    ) -> AnalysisReport:
        """Aggregate several routines — which the paper warns against.

        Raises :class:`~repro.errors.StationarityError` when the
        routines' bandwidths spread more than
        :data:`STATIONARITY_SPREAD` apart, unless ``force=True``; forced
        reports carry ``non_stationary=True``.
        """
        if not runs:
            raise ConfigurationError("need at least one run")
        bws = [s.bandwidth_bytes_per_s() for s in runs]
        positive = [b for b in bws if b > 0]
        spread = (max(positive) / min(positive)) if positive else 1.0
        if spread > STATIONARITY_SPREAD and not force:
            raise StationarityError(
                f"routine bandwidths spread {spread:.1f}x apart "
                f"({[f'{to_gb_per_s(b):.1f}' for b in bws]} GB/s); Little's law assumes "
                "a stationary system - analyze per routine (or pass force=True)"
            )
        total_time = sum(s.elapsed_ns for s in runs)
        total_bytes = sum(s.memory.total_bytes for s in runs)
        pf_bytes = sum(s.memory.prefetch_bytes for s in runs)
        if total_time <= 0:
            raise ConfigurationError("runs have no elapsed time")
        slice_cores = max(1, max(len(s.l1_occupancy) for s in runs))
        scale = self.machine.active_cores / slice_cores
        agg_bw = total_bytes / ns(total_time) * scale
        pf_fraction = pf_bytes / total_bytes if total_bytes else 0.0
        report = self.analyze_bandwidth(
            agg_bw,
            routine=routine,
            prefetch_fraction=pf_fraction,
            context=context,
        )
        return AnalysisReport(
            routine=report.routine,
            machine_name=report.machine_name,
            mlp=report.mlp,
            classification=report.classification,
            decision=report.decision,
            non_stationary=spread > STATIONARITY_SPREAD,
        )
