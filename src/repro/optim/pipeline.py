"""Ordered application of optimization steps to a workload state.

The paper's case studies are *sequences*: measure, apply the recipe's
recommendation, re-measure, repeat ("+ vect" → "+ vect, 2-ht" → ...).
:class:`OptimizationPipeline` replays such a sequence against a
workload's effect table, yielding every intermediate state, and
:func:`recipe_context_for` translates a state into the
:class:`~repro.core.recipe.RecipeContext` the decision engine needs.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..core.recipe import RecipeContext
from ..errors import OptimizationError
from .transforms import (
    EffectTable,
    WorkloadState,
    kind_of_step,
    lookup_effect,
)


class OptimizationPipeline:
    """Replays optimization sequences over one workload's effect table."""

    def __init__(self, effects: EffectTable) -> None:
        self.effects = effects

    def apply(self, state: WorkloadState, step: str) -> WorkloadState:
        """Apply one named step."""
        effect = lookup_effect(self.effects, step, state.machine_name)
        return effect.apply(state, step)

    def run(
        self, base: WorkloadState, steps: Sequence[str]
    ) -> List[WorkloadState]:
        """All states along a sequence, starting with ``base`` itself."""
        states = [base]
        current = base
        for step in steps:
            current = self.apply(current, step)
            states.append(current)
        return states

    def pairs(
        self, base: WorkloadState, steps: Sequence[str]
    ) -> Iterator[Tuple[WorkloadState, str, WorkloadState]]:
        """(before, step, after) triples along a sequence."""
        current = base
        for step in steps:
            after = self.apply(current, step)
            yield current, step, after
            current = after


def recipe_context_for(state: WorkloadState) -> RecipeContext:
    """RecipeContext matching a workload state's applied optimizations."""
    return RecipeContext(
        applied=frozenset(state.applied_kinds),
        smt_ways_used=state.smt_ways,
    )


def validate_sequence(steps: Sequence[str]) -> None:
    """Sanity-check a step sequence (no duplicates, smt2 before smt4)."""
    seen = set()
    for step in steps:
        kind_of_step(step)  # raises on unknown steps
        if step in seen:
            raise OptimizationError(f"duplicate step {step!r} in sequence")
        seen.add(step)
    if "smt4" in seen and "smt2" not in seen:
        raise OptimizationError("smt4 requires smt2 earlier in the sequence")
