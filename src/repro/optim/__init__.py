"""Optimization transforms: workload states and effect application."""

from .pipeline import OptimizationPipeline, recipe_context_for, validate_sequence
from .transforms import (
    STEP_INFO,
    EffectTable,
    TransformEffect,
    WorkloadState,
    kind_of_step,
    label_of_step,
    lookup_effect,
)

__all__ = [
    "EffectTable",
    "OptimizationPipeline",
    "STEP_INFO",
    "TransformEffect",
    "WorkloadState",
    "kind_of_step",
    "label_of_step",
    "lookup_effect",
    "recipe_context_for",
    "validate_sequence",
]
