"""Optimization transforms over workload states.

A :class:`WorkloadState` is the analytic description of one *version* of
a routine on one machine (the paper's "Source" column): how much MLP the
code can express per core, how much memory traffic it moves relative to
the base version, which MSHR file binds it, and how many SMT ways it
runs.  A :class:`TransformEffect` describes what one optimization does
to that state:

* ``demand_factor`` / ``demand_absolute`` — change in expressible MLP
  (vectorization widens the independent-request window; SMT multiplies
  request sources per core; L2 software prefetch raises it a lot by
  engaging the idle L2 MSHRs),
* ``traffic_factor`` — change in *effective* memory traffic per unit of
  work (tiling cuts it via reuse; SMT can inflate it via cache
  contention — the paper observes exactly this on MiniGhost and SNAP),
* ``shift_binding_to`` — the ISx move: L2 software prefetching shifts
  the binding MSHR file from L1 to L2,
* ``smt_ways`` — thread count after the transform.

Effects are *workload- and machine-specific* (a gather loop vectorizes
very differently from a bucket-count loop); each workload module in
:mod:`repro.workloads` carries its own effect table with the paper's
reasoning attached.  The named steps (``vectorize``, ``smt2``, ``smt4``,
``l2_prefetch``, ``sw_prefetch``, ``loop_tiling``, ...) map onto the
recipe's :class:`~repro.core.optimizations.OptimizationKind` so recipe
predictions can be checked against the steps' measured outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple

from ..core.classify import AccessPattern
from ..core.optimizations import OptimizationKind
from ..errors import OptimizationError

#: Step name → (recipe optimization kind, paper-style label fragment).
STEP_INFO: Mapping[str, Tuple[OptimizationKind, str]] = {
    "vectorize": (OptimizationKind.VECTORIZATION, "vect"),
    "smt2": (OptimizationKind.SMT, "2-ht"),
    "smt4": (OptimizationKind.SMT, "4-ht"),
    "sw_prefetch": (OptimizationKind.SW_PREFETCH_L1, "pref"),
    "l2_prefetch": (OptimizationKind.SW_PREFETCH_L2, "l2-pref"),
    "loop_tiling": (OptimizationKind.LOOP_TILING, "tiling"),
    "unroll_and_jam": (OptimizationKind.UNROLL_AND_JAM, "unroll-jam"),
    "loop_fusion": (OptimizationKind.LOOP_FUSION, "fusion"),
    "loop_distribution": (OptimizationKind.LOOP_DISTRIBUTION, "distribution"),
}


def kind_of_step(step: str) -> OptimizationKind:
    """Recipe kind for a named transform step."""
    try:
        return STEP_INFO[step][0]
    except KeyError:
        raise OptimizationError(f"unknown optimization step {step!r}") from None


def label_of_step(step: str) -> str:
    """Paper-style label fragment for a step ('vect', '2-ht', ...)."""
    try:
        return STEP_INFO[step][1]
    except KeyError:
        raise OptimizationError(f"unknown optimization step {step!r}") from None


@dataclass(frozen=True)
class WorkloadState:
    """One version of one routine on one machine (analytic view)."""

    workload: str
    machine_name: str
    routine: str
    pattern: AccessPattern
    random_fraction: float
    binding_level: int
    #: Per-core expressible MLP (line-granular outstanding requests).
    demand_mlp: float
    #: Effective memory traffic relative to the base version.
    traffic_factor: float = 1.0
    smt_ways: int = 1
    applied: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.binding_level not in (1, 2):
            raise OptimizationError("binding_level must be 1 or 2")
        if self.demand_mlp <= 0:
            raise OptimizationError("demand_mlp must be positive")
        if self.traffic_factor <= 0:
            raise OptimizationError("traffic_factor must be positive")
        if self.smt_ways < 1:
            raise OptimizationError("smt_ways must be >= 1")

    @property
    def label(self) -> str:
        """The paper's Source label ('base', '+ vect, 2-ht', ...)."""
        if not self.applied:
            return "base"
        return "+ " + ", ".join(label_of_step(s) for s in self.applied)

    @property
    def applied_kinds(self) -> frozenset:
        """Recipe kinds of the applied steps."""
        return frozenset(kind_of_step(s) for s in self.applied)


@dataclass(frozen=True)
class TransformEffect:
    """What one optimization step does to a workload state."""

    demand_factor: float = 1.0
    demand_absolute: Optional[float] = None
    traffic_factor: float = 1.0
    shift_binding_to: Optional[int] = None
    smt_ways: Optional[int] = None
    #: Paper-grounded note on why the effect has this magnitude.
    rationale: str = ""

    def __post_init__(self) -> None:
        if self.demand_factor <= 0 or self.traffic_factor <= 0:
            raise OptimizationError("effect factors must be positive")
        if self.demand_absolute is not None and self.demand_absolute <= 0:
            raise OptimizationError("demand_absolute must be positive")
        if self.shift_binding_to not in (None, 1, 2):
            raise OptimizationError("shift_binding_to must be 1, 2 or None")

    def apply(self, state: WorkloadState, step: str) -> WorkloadState:
        """New state with this effect applied."""
        if step in state.applied:
            raise OptimizationError(
                f"step {step!r} already applied to {state.label!r}"
            )
        demand = (
            self.demand_absolute
            if self.demand_absolute is not None
            else state.demand_mlp * self.demand_factor
        )
        return replace(
            state,
            demand_mlp=demand,
            traffic_factor=state.traffic_factor * self.traffic_factor,
            binding_level=self.shift_binding_to or state.binding_level,
            smt_ways=self.smt_ways or state.smt_ways,
            applied=state.applied + (step,),
        )


#: Effect table type used by workload modules: step name (optionally
#: suffixed with "@machine") → effect.
EffectTable = Mapping[str, TransformEffect]


def lookup_effect(table: EffectTable, step: str, machine_name: str) -> TransformEffect:
    """Resolve a step's effect, preferring a machine-specific entry."""
    specific = table.get(f"{step}@{machine_name}")
    if specific is not None:
        return specific
    generic = table.get(step)
    if generic is None:
        raise OptimizationError(
            f"workload has no effect defined for step {step!r} on {machine_name!r}"
        )
    return generic
