"""Performance-event definitions across vendors.

Models the real-world mess the paper complains about (Section I,
Table I): each vendor exposes a different set of events under different
names, and some events simply do not exist on some parts.  A
:class:`CounterEvent` is the abstract quantity; :data:`VENDOR_EVENTS`
maps each vendor's native event names onto the abstract events it
actually supports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple


class CounterEvent(enum.Enum):
    """Abstract hardware events the library knows how to derive."""

    #: Cache-line reads that left the last private/shared cache for memory.
    MEM_READ_LINES = "mem_read_lines"
    #: Cache-line writes (incl. writebacks) that reached memory.
    MEM_WRITE_LINES = "mem_write_lines"
    #: Lines fetched by the hardware prefetcher.
    HW_PREFETCH_LINES = "hw_prefetch_lines"
    #: Cycles stalled because the L1 MSHR queue was full.
    L1_MSHR_FULL_STALLS = "l1_mshr_full_stalls"
    #: Cycles stalled because the L2 MSHR queue was full.
    L2_MSHR_FULL_STALLS = "l2_mshr_full_stalls"
    #: Loads whose latency exceeded a threshold (Intel PEBS-style bins).
    LOAD_LATENCY_GT_THRESHOLD = "load_latency_gt_threshold"
    #: Average memory latency derived metric (where the vendor offers one).
    AVG_MEM_LATENCY = "avg_mem_latency"
    #: Retired instructions (for TMA slot accounting).
    INSTRUCTIONS_RETIRED = "instructions_retired"
    #: Core clock cycles.
    CPU_CYCLES = "cpu_cycles"
    #: L1D misses (demand).
    L1D_MISSES = "l1d_misses"
    #: L2 misses (demand).
    L2_MISSES = "l2_misses"


@dataclass(frozen=True)
class NativeEvent:
    """A vendor's native name for an abstract event."""

    vendor: str
    native_name: str
    event: CounterEvent
    #: Notes on known inaccuracies (the paper documents several).
    caveat: str = ""


def _intel_skl() -> Tuple[NativeEvent, ...]:
    return (
        NativeEvent(
            "intel-skl",
            "OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL",
            CounterEvent.MEM_READ_LINES,
            caveat=(
                "Does not include L3 writebacks; includes page-table-walk "
                "traffic (paper footnote 4)."
            ),
        ),
        NativeEvent("intel-skl", "L2_RQSTS.MISS", CounterEvent.L2_MISSES),
        NativeEvent("intel-skl", "L1D.REPLACEMENT", CounterEvent.L1D_MISSES),
        NativeEvent(
            "intel-skl",
            "L1D_PEND_MISS.FB_FULL",
            CounterEvent.L1_MSHR_FULL_STALLS,
            caveat="Fill-buffer (L1 MSHR) full stalls only; no L2 equivalent.",
        ),
        NativeEvent(
            "intel-skl",
            "MEM_TRANS_RETIRED.LOAD_LATENCY_GT_*",
            CounterEvent.LOAD_LATENCY_GT_THRESHOLD,
            caveat=(
                "'Reported latency may be longer than just the memory "
                "latency' (Intel); includes re-dispatch and TLB walks."
            ),
        ),
        NativeEvent("intel-skl", "INST_RETIRED.ANY", CounterEvent.INSTRUCTIONS_RETIRED),
        NativeEvent("intel-skl", "CPU_CLK_UNHALTED.THREAD", CounterEvent.CPU_CYCLES),
        NativeEvent(
            "intel-skl",
            "OFFCORE_RESPONSE_1:PF_ANY:L3_MISS_LOCAL",
            CounterEvent.HW_PREFETCH_LINES,
        ),
    )


def _intel_knl() -> Tuple[NativeEvent, ...]:
    return (
        NativeEvent(
            "intel-knl",
            "OFFCORE_RESPONSE_0:ANY_REQUEST:MCDRAM",
            CounterEvent.MEM_READ_LINES,
            caveat="Flat-mode MCDRAM traffic; DDR counted separately.",
        ),
        NativeEvent(
            "intel-knl",
            "OFFCORE_RESPONSE_1:ANY_REQUEST:DDR",
            CounterEvent.MEM_WRITE_LINES,
            caveat="Paper sums MCDRAM+DDR offcore responses for bandwidth.",
        ),
        NativeEvent("intel-knl", "L2_REQUESTS.MISS", CounterEvent.L2_MISSES),
        NativeEvent("intel-knl", "INST_RETIRED.ANY", CounterEvent.INSTRUCTIONS_RETIRED),
        NativeEvent("intel-knl", "CPU_CLK_UNHALTED.THREAD", CounterEvent.CPU_CYCLES),
        NativeEvent(
            "intel-knl",
            "L1D_PEND_MISS.FB_FULL",
            CounterEvent.L1_MSHR_FULL_STALLS,
        ),
    )


def _amd() -> Tuple[NativeEvent, ...]:
    return (
        NativeEvent("amd", "LS_REFILLS_FROM_SYS.MEM_IO_LOCAL", CounterEvent.MEM_READ_LINES),
        NativeEvent("amd", "L2_CACHE_MISS", CounterEvent.L2_MISSES),
        NativeEvent(
            "amd",
            "LS_MAB_ALLOC_PIPE_FULL",
            CounterEvent.L1_MSHR_FULL_STALLS,
            caveat="Miss-address-buffer (L1 MSHR) allocation stalls.",
        ),
        NativeEvent("amd", "RETIRED_INSTRUCTIONS", CounterEvent.INSTRUCTIONS_RETIRED),
        NativeEvent("amd", "CYCLES_NOT_IN_HALT", CounterEvent.CPU_CYCLES),
    )


def _cavium() -> Tuple[NativeEvent, ...]:
    return (
        NativeEvent("cavium", "MEM_ACCESS_RD", CounterEvent.MEM_READ_LINES),
        NativeEvent("cavium", "MEM_ACCESS_WR", CounterEvent.MEM_WRITE_LINES),
        NativeEvent("cavium", "INST_RETIRED", CounterEvent.INSTRUCTIONS_RETIRED),
        NativeEvent("cavium", "CPU_CYCLES", CounterEvent.CPU_CYCLES),
    )


def _fujitsu() -> Tuple[NativeEvent, ...]:
    return (
        NativeEvent(
            "fujitsu",
            "BUS_READ_TOTAL_MEM",
            CounterEvent.MEM_READ_LINES,
            caveat="Counts 256B-line memory reads on A64FX.",
        ),
        NativeEvent("fujitsu", "BUS_WRITE_TOTAL_MEM", CounterEvent.MEM_WRITE_LINES),
        NativeEvent("fujitsu", "L2_MISS_COUNT", CounterEvent.L2_MISSES),
        NativeEvent("fujitsu", "INST_RETIRED", CounterEvent.INSTRUCTIONS_RETIRED),
        NativeEvent("fujitsu", "CPU_CYCLES", CounterEvent.CPU_CYCLES),
    )


#: Every native event each vendor exposes, keyed by vendor id.
VENDOR_EVENTS: Mapping[str, Tuple[NativeEvent, ...]] = {
    "intel-skl": _intel_skl(),
    "intel-knl": _intel_knl(),
    "amd": _amd(),
    "cavium": _cavium(),
    "fujitsu": _fujitsu(),
}


def events_supported(vendor: str) -> Dict[CounterEvent, NativeEvent]:
    """Abstract events a vendor supports, with their native spellings."""
    natives = VENDOR_EVENTS.get(vendor, ())
    out: Dict[CounterEvent, NativeEvent] = {}
    for native in natives:
        out.setdefault(native.event, native)
    return out
