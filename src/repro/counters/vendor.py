"""Vendor visibility matrix — the reproduction of paper Table I.

The paper's Table I summarizes "extent of visibility into specific
events across processor vendors": breakdown of stalls, L1/L2-MSHRQ-full
stalls, and memory latency.  Here the matrix is *derived* from the
native event lists in :mod:`repro.counters.events`, so the table stays
consistent with what the counter facade actually enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from .events import CounterEvent, events_supported


class Visibility(enum.Enum):
    """How much a vendor exposes of a capability (Table I vocabulary)."""

    YES = "Yes"
    LIMITED = "Limited"
    VERY_LIMITED = "Very limited"
    NO = "No"

    @property
    def available(self) -> bool:
        """Whether the capability exists at all on this vendor."""
        return self is not Visibility.NO


@dataclass(frozen=True)
class VendorVisibility:
    """One Table I row."""

    vendor: str
    stall_breakdown: Visibility
    l1_mshrq_full_stalls: Visibility
    l2_mshrq_full_stalls: Visibility
    memory_latency: Visibility


#: Qualitative judgments the paper makes that are not derivable from the
#: event lists alone (e.g. "Limited" vs "Very limited" stall breakdowns).
_STALL_BREAKDOWN: Mapping[str, Visibility] = {
    "intel-skl": Visibility.LIMITED,
    "intel-knl": Visibility.LIMITED,
    "amd": Visibility.LIMITED,
    "cavium": Visibility.VERY_LIMITED,
    "fujitsu": Visibility.LIMITED,
}

_MEMORY_LATENCY: Mapping[str, Visibility] = {
    "intel-skl": Visibility.LIMITED,  # PEBS latency bins, with caveats
    "intel-knl": Visibility.LIMITED,
    "amd": Visibility.LIMITED,  # IBS; old avg-L2-latency support withdrawn
    "cavium": Visibility.NO,
    "fujitsu": Visibility.NO,
}

#: Paper Table I merges Intel parts into one row; map vendor ids to rows.
TABLE1_ROW_OF: Mapping[str, str] = {
    "intel-skl": "Intel",
    "intel-knl": "Intel",
    "amd": "AMD",
    "cavium": "Cavium",
    "fujitsu": "Fujitsu",
}


def visibility_for(vendor: str) -> VendorVisibility:
    """Derive the Table I row for one vendor id."""
    supported = events_supported(vendor)
    l1 = (
        Visibility.YES
        if CounterEvent.L1_MSHR_FULL_STALLS in supported
        else Visibility.NO
    )
    l2 = (
        Visibility.YES
        if CounterEvent.L2_MSHR_FULL_STALLS in supported
        else Visibility.NO
    )
    return VendorVisibility(
        vendor=vendor,
        stall_breakdown=_STALL_BREAKDOWN.get(vendor, Visibility.VERY_LIMITED),
        l1_mshrq_full_stalls=l1,
        l2_mshrq_full_stalls=l2,
        memory_latency=_MEMORY_LATENCY.get(vendor, Visibility.NO),
    )


def table1_matrix() -> Dict[str, VendorVisibility]:
    """The full Table I, keyed by the paper's row labels."""
    out: Dict[str, VendorVisibility] = {}
    for vendor, row_label in TABLE1_ROW_OF.items():
        row = visibility_for(vendor)
        if row_label in out:
            # Intel row: keep the weaker visibility of the two parts so
            # the row reflects what is portable across the vendor.
            prev = out[row_label]
            row = VendorVisibility(
                vendor=row_label,
                stall_breakdown=_weaker(prev.stall_breakdown, row.stall_breakdown),
                l1_mshrq_full_stalls=_weaker(
                    prev.l1_mshrq_full_stalls, row.l1_mshrq_full_stalls
                ),
                l2_mshrq_full_stalls=_weaker(
                    prev.l2_mshrq_full_stalls, row.l2_mshrq_full_stalls
                ),
                memory_latency=_weaker(prev.memory_latency, row.memory_latency),
            )
        else:
            row = VendorVisibility(
                vendor=row_label,
                stall_breakdown=row.stall_breakdown,
                l1_mshrq_full_stalls=row.l1_mshrq_full_stalls,
                l2_mshrq_full_stalls=row.l2_mshrq_full_stalls,
                memory_latency=row.memory_latency,
            )
        out[row_label] = row
    return out


_ORDER = (
    Visibility.NO,
    Visibility.VERY_LIMITED,
    Visibility.LIMITED,
    Visibility.YES,
)


def _weaker(a: Visibility, b: Visibility) -> Visibility:
    return a if _ORDER.index(a) <= _ORDER.index(b) else b


def vendor_for_machine(machine_name: str) -> str:
    """Map a machine name to its counter-vendor id."""
    mapping = {"skl": "intel-skl", "knl": "intel-knl", "a64fx": "fujitsu"}
    return mapping.get(machine_name, machine_name)
