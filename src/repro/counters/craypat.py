"""CrayPat substitute: per-routine bandwidth attribution.

The paper measures each routine's observed bandwidth with CrayPat,
"which reports this number in its default output using readily available
counters for all three processors".  This module reproduces that layer:
a :class:`RoutineProfile` holds per-routine counter sessions and emits
the per-routine bandwidth report the analyzer consumes.

Per-routine (not whole-program) attribution is a stated requirement of
the method: "averaging counter data from multiple routines that often
behave differently usually provides misleading guidance" (Section
III-D).  :meth:`RoutineProfile.whole_program_bandwidth` exists precisely
so experiments can demonstrate that failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import CounterError
from ..machines.spec import MachineSpec
from ..sim.stats import SimStats
from ..units import ns_to_ms, to_gb_per_s
from .session import CounterSession


@dataclass(frozen=True)
class RoutineReport:
    """CrayPat-style one-routine summary."""

    routine: str
    time_ns: float
    bandwidth_bytes: float
    prefetch_fraction: float
    machine_name: str

    @property
    def bandwidth_gbs(self) -> float:
        """Observed bandwidth in GB/s."""
        return to_gb_per_s(self.bandwidth_bytes)

    def render(self, peak_bw_bytes: float) -> str:
        """One table line, paper style: 'BW (xx%)'."""
        pct = 100.0 * self.bandwidth_bytes / peak_bw_bytes
        return (
            f"{self.routine:<24s} {ns_to_ms(self.time_ns):>9.3f} ms  "
            f"{self.bandwidth_gbs:>8.1f} GB/s ({pct:.0f}%)  "
            f"pf={self.prefetch_fraction:.2f}"
        )


class RoutineProfile:
    """Accumulates per-routine simulation runs into a CrayPat-like report."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine
        self._sessions: Dict[str, CounterSession] = {}

    def add_run(self, stats: SimStats) -> CounterSession:
        """Record one routine's finished run; returns its counter session."""
        if stats.elapsed_ns <= 0:
            raise CounterError(f"run for routine {stats.routine!r} has no elapsed time")
        if stats.routine in self._sessions:
            raise CounterError(f"routine {stats.routine!r} already profiled")
        session = CounterSession(self.machine, stats)
        self._sessions[stats.routine] = session
        return session

    @property
    def routines(self) -> Tuple[str, ...]:
        """Names of the routines profiled so far."""
        return tuple(self._sessions)

    def session(self, routine: str) -> CounterSession:
        """The counter session recorded for ``routine``."""
        try:
            return self._sessions[routine]
        except KeyError:
            raise CounterError(f"routine {routine!r} was not profiled") from None

    def report(self, routine: str) -> RoutineReport:
        """Per-routine bandwidth report (the analyzer's input)."""
        session = self.session(routine)
        return RoutineReport(
            routine=routine,
            time_ns=session.stats.elapsed_ns,
            bandwidth_bytes=session.bandwidth_bytes_per_s(),
            prefetch_fraction=session.stats.memory.prefetch_fraction,
            machine_name=self.machine.name,
        )

    def reports(self) -> List[RoutineReport]:
        """Per-routine bandwidth reports, in insertion order."""
        return [self.report(name) for name in self._sessions]

    def whole_program_bandwidth(self) -> float:
        """Time-weighted whole-program bandwidth (the misleading average).

        Provided to demonstrate the paper's warning: two routines with
        very different behaviour average into a number that describes
        neither.
        """
        total_bytes = 0.0
        total_time = 0.0
        for session in self._sessions.values():
            total_bytes += session.bandwidth_bytes_per_s() * session.stats.elapsed_ns
            total_time += session.stats.elapsed_ns
        return total_bytes / total_time if total_time else 0.0

    def render(self) -> str:
        """The default-output table, one line per routine."""
        lines = [
            f"CrayPat-substitute profile on {self.machine.name} "
            f"(peak {self.machine.peak_bw_gbs:.0f} GB/s)",
            f"{'routine':<24s} {'time':>12s}  {'bandwidth':>16s}  prefetch",
        ]
        for report in self.reports():
            lines.append(report.render(self.machine.memory.peak_bw_bytes))
        return "\n".join(lines)
