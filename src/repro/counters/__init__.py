"""Performance-counter facade: vendor events, Table I visibility, CrayPat."""

from .craypat import RoutineProfile, RoutineReport
from .events import CounterEvent, NativeEvent, VENDOR_EVENTS, events_supported
from .session import LATENCY_THRESHOLDS, CounterReading, CounterSession
from .vendor import (
    TABLE1_ROW_OF,
    VendorVisibility,
    Visibility,
    table1_matrix,
    vendor_for_machine,
    visibility_for,
)

__all__ = [
    "CounterEvent",
    "CounterReading",
    "CounterSession",
    "LATENCY_THRESHOLDS",
    "NativeEvent",
    "RoutineProfile",
    "RoutineReport",
    "TABLE1_ROW_OF",
    "VENDOR_EVENTS",
    "VendorVisibility",
    "Visibility",
    "events_supported",
    "table1_matrix",
    "vendor_for_machine",
    "visibility_for",
]
