"""Counter sessions: vendor-faithful readings over a simulation run.

A :class:`CounterSession` plays the role of ``perf``/PAPI on real
hardware: it exposes the abstract events of
:mod:`repro.counters.events`, but **only** those the vendor actually
supports — reading anything else raises
:class:`~repro.errors.CounterUnavailableError`, reproducing the
portability wall of paper Table I.

It also reproduces the two documented ways the Intel load-latency
counter misleads (paper Sections I–II):

* for random-access routines, the counter *over*-reports latency
  because re-dispatch and TLB walks are attributed to it (ISx: 75 % of
  loads binned above 512 cycles while true loaded latency was ~378);
* for prefetch-covered streaming routines it *under*-reports
  (HPCG: ~32 cycles average while true loaded latency was ~378),
  because most demand loads hit already-prefetched lines.

:meth:`CounterSession.load_latency_histogram` synthesizes these bins
from the simulator's ground truth so that the experiments can
demonstrate why the paper rejects that counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import CounterUnavailableError
from ..machines.spec import MachineSpec
from ..resilience.quality import DataQualityIssue
from ..sim.stats import SimStats
from ..units import ns, ns_to_cycles
from .events import CounterEvent, NativeEvent, events_supported
from .vendor import vendor_for_machine

#: Intel PEBS-style latency thresholds, in cycles (paper Section II).
LATENCY_THRESHOLDS = (4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class CounterReading:
    """One event reading with its native name and caveat attached."""

    event: CounterEvent
    native: NativeEvent
    value: float


class CounterSession:
    """Vendor-filtered view of a finished simulation's statistics."""

    def __init__(self, machine: MachineSpec, stats: SimStats) -> None:
        self.machine = machine
        self.stats = stats
        self.vendor = vendor_for_machine(machine.name)
        self._supported = events_supported(self.vendor)

    # -- capability queries ------------------------------------------------------

    def supports(self, event: CounterEvent) -> bool:
        """Does this vendor expose ``event`` at all?"""
        return event in self._supported

    def supported_events(self) -> Mapping[CounterEvent, NativeEvent]:
        """All events this vendor can count."""
        return dict(self._supported)

    # -- readings -----------------------------------------------------------------

    def read(self, event: CounterEvent) -> CounterReading:
        """Read one event; raises if the vendor does not expose it."""
        native = self._supported.get(event)
        if native is None:
            raise CounterUnavailableError(self.vendor, event.value)
        return CounterReading(event=event, native=native, value=self._value(event))

    def read_with_quality(
        self, event: CounterEvent
    ) -> Tuple[Optional[CounterReading], List[DataQualityIssue]]:
        """Degraded-mode read: survive bad samples, report what happened.

        Real PMU sessions lose samples (multiplexing gaps) and return
        NaN (broken counters — the paper cites outright-broken FLOP
        counters); the ``counter_drop``/``counter_nan`` fault kinds
        reproduce both.  A dropped sample returns ``(None, [issue])``; a
        NaN sample returns the reading with a ``nan-counter`` issue so
        callers can substitute and widen.  An unsupported event is
        *also* degraded to ``(None, [missing-counter issue])`` — the
        strict :meth:`read` raises instead.
        """
        issues: List[DataQualityIssue] = []
        native = self._supported.get(event)
        if native is None:
            issues.append(
                DataQualityIssue(
                    kind="missing-counter",
                    location=event.value,
                    detail=f"vendor {self.vendor!r} does not expose this event",
                )
            )
            return None, issues
        from ..resilience.faults import get_injector

        injector = get_injector()
        key = f"{self.vendor}:{event.value}"
        if injector.active and injector.drops_sample(key):
            issues.append(
                DataQualityIssue(
                    kind="dropped-sample",
                    location=event.value,
                    detail="sample dropped (injected counter_drop fault)",
                )
            )
            return None, issues
        value = self._value(event)
        if injector.active and injector.nans_sample(key):
            value = math.nan
        if math.isnan(value):
            issues.append(
                DataQualityIssue(
                    kind="nan-counter",
                    location=event.value,
                    detail="counter read back as NaN",
                )
            )
        return CounterReading(event=event, native=native, value=value), issues

    def _value(self, event: CounterEvent) -> float:
        stats = self.stats
        line = self.machine.line_bytes
        if event == CounterEvent.MEM_READ_LINES:
            # x86 L3-miss / offcore counters include demand reads and
            # (on separate sub-events) prefetches but miss writebacks.
            return (stats.memory.demand_read_bytes + stats.memory.prefetch_bytes) / line
        if event == CounterEvent.MEM_WRITE_LINES:
            return stats.memory.demand_write_bytes / line
        if event == CounterEvent.HW_PREFETCH_LINES:
            return stats.memory.prefetch_bytes / line
        if event == CounterEvent.L1_MSHR_FULL_STALLS:
            return ns_to_cycles(
                stats.l1.mshr_full_stall_ns, self.machine.frequency_ghz
            )
        if event == CounterEvent.L2_MSHR_FULL_STALLS:
            return ns_to_cycles(
                stats.l2.mshr_full_stall_ns, self.machine.frequency_ghz
            )
        if event == CounterEvent.L1D_MISSES:
            return float(stats.l1.misses)
        if event == CounterEvent.L2_MISSES:
            return float(stats.l2.misses)
        if event == CounterEvent.CPU_CYCLES:
            return ns_to_cycles(stats.elapsed_ns, self.machine.frequency_ghz)
        if event == CounterEvent.INSTRUCTIONS_RETIRED:
            issued = sum(c.issued_accesses for c in stats.cores)
            compute = sum(c.compute_cycles for c in stats.cores)
            # Roughly one memory instruction per access plus ~1 ALU
            # instruction per compute cycle (issue width folded in).
            return issued + compute
        raise CounterUnavailableError(self.vendor, event.value)

    # -- derived, vendor-portable bandwidth ----------------------------------------

    def bandwidth_bytes_per_s(self, *, include_writeback_heuristic: bool = True) -> float:
        """Observed memory bandwidth the way CrayPat derives it.

        On x86 the L3-miss counters exclude writebacks, so (as the paper
        notes) a heuristic writeback estimate is added; on A64FX the bus
        counters include writes directly.
        """
        if self.stats.elapsed_ns <= 0:
            return 0.0
        line = self.machine.line_bytes
        seconds = ns(self.stats.elapsed_ns)
        reads = self.read(CounterEvent.MEM_READ_LINES).value * line
        if self.supports(CounterEvent.MEM_WRITE_LINES):
            writes = self.read(CounterEvent.MEM_WRITE_LINES).value * line
        elif include_writeback_heuristic:
            # Writebacks scale with dirty L2 evictions; estimate them as
            # a fraction of read traffic using L2 store locality.
            writes = self.stats.memory.demand_write_bytes
        else:
            writes = 0.0
        return (reads + writes) / seconds

    def bandwidth_with_quality(
        self, *, include_writeback_heuristic: bool = True
    ) -> Tuple[float, List[DataQualityIssue]]:
        """Degraded-mode :meth:`bandwidth_bytes_per_s`.

        Each contributing counter is read through
        :meth:`read_with_quality`; a dropped or NaN sample contributes
        zero traffic (an *under*-estimate, like a real multiplexing
        gap) and one :class:`DataQualityIssue`.  Feed the issues to
        :func:`repro.core.uncertainty.quality_widened_errors` so the
        resulting n_avg error bar reflects the degraded input.
        """
        if self.stats.elapsed_ns <= 0:
            return 0.0, []
        line = self.machine.line_bytes
        seconds = ns(self.stats.elapsed_ns)
        issues: List[DataQualityIssue] = []

        def lines_of(event: CounterEvent) -> float:
            reading, event_issues = self.read_with_quality(event)
            issues.extend(event_issues)
            if reading is None or math.isnan(reading.value):
                return 0.0
            return reading.value

        reads = lines_of(CounterEvent.MEM_READ_LINES) * line
        if self.supports(CounterEvent.MEM_WRITE_LINES):
            writes = lines_of(CounterEvent.MEM_WRITE_LINES) * line
        elif include_writeback_heuristic:
            writes = self.stats.memory.demand_write_bytes
        else:
            writes = 0.0
        return (reads + writes) / seconds, issues

    # -- the misleading load-latency counter ----------------------------------------

    def load_latency_histogram(
        self, *, random_fraction: Optional[float] = None
    ) -> Dict[int, float]:
        """Synthesize Intel's LOAD_LATENCY_GT_* bins for this run.

        Returns, for each threshold, the *fraction* of sampled loads
        whose reported latency exceeded it.  The reported latency is
        deliberately distorted the way the paper documents: random
        accesses gain TLB-walk/re-dispatch time (pushing them past the
        512 bin), while prefetch-covered loads report near-hit latency.

        Raises if the vendor has no such counter (ARM parts — Table I).
        """
        if not self.supports(CounterEvent.LOAD_LATENCY_GT_THRESHOLD):
            raise CounterUnavailableError(self.vendor, "load_latency_gt_threshold")
        stats = self.stats
        total_loads = max(1, stats.l1.hits + stats.l1.misses)
        covered = stats.memory.prefetch_fraction
        if random_fraction is None:
            random_fraction = max(0.0, 1.0 - covered)
        true_cycles = ns_to_cycles(
            stats.memory.avg_latency_ns, self.machine.frequency_ghz
        )
        hit_cycles = 8.0  # L1/L2-ish hit cost the counter reports for covered loads
        miss_fraction = stats.l1.misses / total_loads

        out: Dict[int, float] = {}
        for threshold in LATENCY_THRESHOLDS:
            frac = 0.0
            # Covered (prefetched) loads report ~hit latency.
            if hit_cycles > threshold:
                frac += (1.0 - random_fraction) * miss_fraction
            # Random-access loads report true latency inflated ~2x by
            # TLB walks, page-table walks and load re-dispatch (paper:
            # 75% of ISx loads binned above 512 cycles while the true
            # loaded latency was ~378).
            if true_cycles * 2.0 > threshold:
                frac += random_fraction * miss_fraction
            out[threshold] = min(1.0, frac)
        return out
