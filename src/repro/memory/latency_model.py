"""Loaded-latency models: latency as a function of bandwidth utilization.

The paper's method hinges on *loaded* memory latency — "the observed
latency increases as bandwidth utilization increases and can be 2x or
more than the idle latency at peak bandwidth utilization" (Section
III-B).  Two model classes are provided:

:class:`TabulatedLatencyModel`
    Monotone piecewise-linear interpolation through calibration control
    points.  This is the canonical per-machine model: the control points
    in :mod:`repro.machines` were fitted to every (bandwidth, latency)
    pair the paper quotes, so the simulator's memory controller, the
    X-Mem substitute, and the analytic solver all see one consistent
    curve per machine.

:class:`QueueingLatencyModel`
    A smooth M/M/1-flavoured curve
    ``lat(u) = idle * (1 + alpha*u + beta*u**gamma / (1 - min(u, cap)))``
    used for theory demonstrations, synthetic machines, and property
    tests (it is monotone by construction for non-negative parameters).

Both expose ``latency_ns(utilization)``; utilization is a fraction of
theoretical peak bandwidth in ``[0, 1]``.  Queries slightly above 1 are
clamped (counter jitter on real systems produces >100 % readings), but
far out-of-range queries raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, Tuple

import numpy as np

from ..errors import ProfileDomainError, ProfileError

#: Queries up to this utilization are clamped to 1.0 rather than rejected.
_CLAMP_LIMIT = 1.05


class LatencyModel(Protocol):
    """Anything that maps bandwidth utilization to loaded latency (ns)."""

    @property
    def idle_latency_ns(self) -> float:
        """Latency at zero load."""
        ...

    def latency_ns(self, utilization: float) -> float:
        """Loaded latency in ns at ``utilization`` in ``[0, 1]``."""
        ...


def _check_utilization(utilization: float) -> float:
    if not np.isfinite(utilization):
        raise ProfileDomainError(f"utilization must be finite, got {utilization}")
    if utilization < 0.0:
        raise ProfileDomainError(f"utilization must be >= 0, got {utilization}")
    if utilization > _CLAMP_LIMIT:
        raise ProfileDomainError(
            f"utilization {utilization:.3f} exceeds clamp limit {_CLAMP_LIMIT}"
        )
    return min(utilization, 1.0)


def _check_utilization_batch(utilization: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_check_utilization`: validate and clamp a vector."""
    if not np.isfinite(utilization).all():
        bad = utilization[~np.isfinite(utilization)][0]
        raise ProfileDomainError(f"utilization must be finite, got {bad}")
    if (utilization < 0.0).any():
        bad = float(utilization[utilization < 0.0][0])
        raise ProfileDomainError(f"utilization must be >= 0, got {bad}")
    if (utilization > _CLAMP_LIMIT).any():
        bad = float(utilization[utilization > _CLAMP_LIMIT][0])
        raise ProfileDomainError(
            f"utilization {bad:.3f} exceeds clamp limit {_CLAMP_LIMIT}"
        )
    return np.minimum(utilization, 1.0)


@dataclass(frozen=True)
class TabulatedLatencyModel:
    """Monotone piecewise-linear latency curve through control points.

    Parameters
    ----------
    points:
        ``(utilization, latency_ns)`` pairs.  They are sorted on
        construction; utilizations must be unique, latencies must be
        non-decreasing in utilization (a loaded-latency curve never
        improves under load).
    """

    points: Tuple[Tuple[float, float], ...]

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ProfileError("need at least two calibration points")
        ordered = sorted((float(u), float(l)) for u, l in points)
        utils = [u for u, _ in ordered]
        if len(set(utils)) != len(utils):
            raise ProfileError("duplicate utilization points in calibration")
        # Merge points spaced closer than float-safe interpolation allows
        # (a near-vertical segment overflows np.interp's slope); keep the
        # higher latency so monotonicity is preserved.
        merged = [ordered[0]]
        for u, lat in ordered[1:]:
            if u - merged[-1][0] < 1e-9:
                merged[-1] = (merged[-1][0], max(merged[-1][1], lat))
            else:
                merged.append((u, lat))
        if len(merged) < 2:
            raise ProfileError("calibration points collapse to a single point")
        ordered = tuple(merged)
        utils = [u for u, _ in ordered]
        lats = [l for _, l in ordered]
        if any(u < 0.0 or u > _CLAMP_LIMIT for u in utils):
            raise ProfileError("calibration utilizations must lie in [0, 1.05]")
        if any(l <= 0.0 for l in lats):
            raise ProfileError("calibration latencies must be positive")
        if any(b < a for a, b in zip(lats, lats[1:])):
            raise ProfileError("loaded latency must be non-decreasing in load")
        object.__setattr__(self, "points", ordered)

    @property
    def idle_latency_ns(self) -> float:
        """Latency at the lowest calibrated load (extrapolated flat to 0)."""
        return self.points[0][1]

    @property
    def saturated_latency_ns(self) -> float:
        """Latency at the highest calibrated load."""
        return self.points[-1][1]

    def latency_ns(self, utilization: float) -> float:
        """Interpolated loaded latency at ``utilization``."""
        u = _check_utilization(utilization)
        utils = np.array([p[0] for p in self.points])
        lats = np.array([p[1] for p in self.points])
        # np.interp clamps flat outside the domain, which is the right
        # behaviour at both ends (idle below, saturated above).  The
        # explicit clamp guards against float-overflow artifacts when
        # control points are pathologically close together: physically
        # the value must lie within the calibrated range.
        value = float(np.interp(u, utils, lats))
        return float(min(max(value, lats[0]), lats[-1]))

    def latency_ns_batch(self, utilization: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`latency_ns`, elementwise bit-identical.

        ``np.interp`` evaluates each element with the same compiled
        interpolation the scalar call uses, and ``np.clip`` performs the
        identical ``min(max(...))`` pair, so ``latency_ns_batch(u)[i] ==
        latency_ns(u[i])`` bit-for-bit.  Used by the batched miss fast
        path, where the per-call array construction of the scalar method
        dominates the planning cost.
        """
        u = _check_utilization_batch(utilization)
        utils = np.array([p[0] for p in self.points])
        lats = np.array([p[1] for p in self.points])
        return np.clip(np.interp(u, utils, lats), lats[0], lats[-1])


@dataclass(frozen=True)
class QueueingLatencyModel:
    """Smooth queueing-shaped loaded-latency curve.

    ``lat(u) = idle * (1 + alpha*u + beta * u**gamma / (1 - min(u, cap)))``

    * ``alpha`` — linear contention growth (bank conflicts, row misses),
    * ``beta``/``gamma`` — queueing blow-up near saturation,
    * ``cap`` — utilization at which the queueing term stops growing
      (keeps the curve finite at u=1; real controllers throttle).
    """

    idle_ns: float
    alpha: float = 0.3
    beta: float = 0.15
    gamma: float = 3.0
    cap: float = 0.95

    def __post_init__(self) -> None:
        if self.idle_ns <= 0:
            raise ProfileError("idle latency must be positive")
        if self.alpha < 0 or self.beta < 0 or self.gamma <= 0:
            raise ProfileError("queueing parameters must be non-negative")
        if not 0.0 < self.cap < 1.0:
            raise ProfileError(f"cap must be in (0, 1), got {self.cap}")

    @property
    def idle_latency_ns(self) -> float:
        """Latency at zero load."""
        return self.idle_ns

    def latency_ns(self, utilization: float) -> float:
        """Queueing-curve loaded latency at ``utilization``."""
        u = _check_utilization(utilization)
        queue_u = min(u, self.cap)
        growth = self.alpha * u + self.beta * (queue_u**self.gamma) / (1.0 - queue_u)
        return self.idle_ns * (1.0 + growth)

    def latency_ns_batch(self, utilization: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`latency_ns` (bit-identical scalar replay).

        Deliberately loops rather than using ``np.power``: numpy's pow
        special-cases small integer exponents (``u*u*u``) while Python's
        ``**`` always calls libm ``pow``, and the two can differ in the
        last ulp — which would break the fast path's bit-identity
        contract.  The queueing model is only used for synthetic
        machines, so the loop is not a measured bottleneck.
        """
        return np.array(
            [self.latency_ns(float(u)) for u in utilization.tolist()],
            dtype=np.float64,
        )


def model_for_machine(machine) -> LatencyModel:
    """The canonical latency model for a :class:`~repro.machines.MachineSpec`.

    Uses the machine's fitted calibration points when present, otherwise
    a generic queueing curve anchored at the machine's idle latency.
    """
    if machine.latency_calibration:
        return TabulatedLatencyModel(machine.latency_calibration)
    return QueueingLatencyModel(idle_ns=machine.memory.idle_latency_ns)
