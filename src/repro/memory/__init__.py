"""Memory-system models: loaded-latency curves and per-machine profiles.

This package is pure modeling (no simulation state): the discrete-event
memory controller that *uses* these models lives in :mod:`repro.sim`.
"""

from .latency_model import (
    LatencyModel,
    QueueingLatencyModel,
    TabulatedLatencyModel,
    model_for_machine,
)
from .profile import LatencyProfile, ProfilePoint

__all__ = [
    "LatencyModel",
    "LatencyProfile",
    "ProfilePoint",
    "QueueingLatencyModel",
    "TabulatedLatencyModel",
    "model_for_machine",
]
