"""Bandwidth → loaded-latency profiles (the paper's once-per-machine artifact).

A :class:`LatencyProfile` is what the paper obtains by running X-Mem on a
machine: a table of (achieved bandwidth, observed latency) samples that,
given any routine's observed bandwidth, yields the loaded latency to plug
into Little's law.  In this reproduction the profile is produced either

* directly from a machine's canonical latency model
  (:meth:`LatencyProfile.from_model`) — the "ground truth" curve, or
* by measurement with the X-Mem substitute (:mod:`repro.xmem`), which
  sweeps load generators through the simulated memory controller and
  records what it observes — the paper's actual workflow.

Profiles can be saved/loaded as JSON so the "computed once per
processor" property (paper footnote 2) holds across sessions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, Tuple, Union

import numpy as np

from ..errors import ProfileDomainError, ProfileError
from ..units import to_gb_per_s
from .latency_model import LatencyModel


@dataclass(frozen=True)
class ProfilePoint:
    """One measured sample: achieved bandwidth and observed latency."""

    bandwidth_bytes: float
    latency_ns: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes < 0:
            raise ProfileError("bandwidth must be non-negative")
        if self.latency_ns <= 0:
            raise ProfileError("latency must be positive")

    @property
    def bandwidth_gbs(self) -> float:
        """Sample bandwidth in GB/s."""
        return to_gb_per_s(self.bandwidth_bytes)


@dataclass(frozen=True)
class LatencyProfile:
    """Interpolatable bandwidth → loaded-latency table for one machine.

    Parameters
    ----------
    machine_name:
        Which machine this profile characterizes.
    peak_bw_bytes:
        Theoretical peak bandwidth; used to express queries as
        utilization and to validate the domain.
    points:
        Measured samples, sorted by bandwidth on construction.
    source:
        Provenance string ("model" or "xmem").
    """

    machine_name: str
    peak_bw_bytes: float
    points: Tuple[ProfilePoint, ...]
    source: str = "model"

    def __post_init__(self) -> None:
        if self.peak_bw_bytes <= 0:
            raise ProfileError("peak bandwidth must be positive")
        if len(self.points) < 2:
            raise ProfileError("profile needs at least two points")
        ordered = tuple(sorted(self.points, key=lambda p: p.bandwidth_bytes))
        bws = [p.bandwidth_bytes for p in ordered]
        if len(set(bws)) != len(bws):
            raise ProfileError("duplicate bandwidth samples in profile")
        lats = [p.latency_ns for p in ordered]
        if any(b < a - 1e-9 for a, b in zip(lats, lats[1:])):
            raise ProfileError("profile latency must be non-decreasing in bandwidth")
        object.__setattr__(self, "points", ordered)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_model(
        cls,
        machine_name: str,
        peak_bw_bytes: float,
        model: LatencyModel,
        *,
        samples: int = 64,
        source: str = "model",
    ) -> "LatencyProfile":
        """Sample a latency model into a profile with ``samples`` points."""
        if samples < 2:
            raise ProfileError("need at least two samples")
        utils = np.linspace(0.0, 1.0, samples)
        points = tuple(
            ProfilePoint(
                bandwidth_bytes=float(u) * peak_bw_bytes,
                latency_ns=model.latency_ns(float(u)),
            )
            for u in utils
        )
        return cls(machine_name, peak_bw_bytes, points, source=source)

    @classmethod
    def from_samples(
        cls,
        machine_name: str,
        peak_bw_bytes: float,
        samples: Sequence[Tuple[float, float]],
        *,
        source: str = "xmem",
    ) -> "LatencyProfile":
        """Build from raw (bandwidth_bytes, latency_ns) measurement pairs.

        Measurement noise can produce locally non-monotone latencies; the
        samples are rectified with a running maximum (a loaded-latency
        curve is physically non-decreasing) before validation.
        """
        ordered = sorted((float(b), float(l)) for b, l in samples)
        rectified = []
        running = 0.0
        for bw, lat in ordered:
            running = max(running, lat)
            rectified.append(ProfilePoint(bw, running))
        return cls(machine_name, peak_bw_bytes, tuple(rectified), source=source)

    # -- queries --------------------------------------------------------------

    @property
    def max_measured_bw_bytes(self) -> float:
        """Highest bandwidth actually reached while characterizing."""
        return self.points[-1].bandwidth_bytes

    @property
    def idle_latency_ns(self) -> float:
        """Latency of the least-loaded sample."""
        return self.points[0].latency_ns

    def latency_at(self, bandwidth_bytes: float) -> float:
        """Loaded latency (ns) at an observed bandwidth (bytes/s).

        Queries above the highest measured bandwidth are allowed up to
        5 % beyond it (counter jitter) and return the saturated latency;
        farther out raises :class:`~repro.errors.ProfileDomainError`.
        """
        if not np.isfinite(bandwidth_bytes) or bandwidth_bytes < 0:
            raise ProfileDomainError(
                f"bandwidth must be finite and >= 0, got {bandwidth_bytes}"
            )
        limit = self.max_measured_bw_bytes * 1.05
        if bandwidth_bytes > limit:
            raise ProfileDomainError(
                f"bandwidth {to_gb_per_s(bandwidth_bytes):.1f} GB/s exceeds "
                f"measured domain ({to_gb_per_s(self.max_measured_bw_bytes):.1f} GB/s)"
            )
        bws = np.array([p.bandwidth_bytes for p in self.points])
        lats = np.array([p.latency_ns for p in self.points])
        return float(np.interp(bandwidth_bytes, bws, lats))

    def utilization_of(self, bandwidth_bytes: float) -> float:
        """Bandwidth as a fraction of theoretical peak."""
        return bandwidth_bytes / self.peak_bw_bytes

    # -- persistence ----------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(
            {
                "machine": self.machine_name,
                "peak_bw_bytes": self.peak_bw_bytes,
                "source": self.source,
                "points": [
                    {"bandwidth_bytes": p.bandwidth_bytes, "latency_ns": p.latency_ns}
                    for p in self.points
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "LatencyProfile":
        """Deserialize from :meth:`to_json` output."""
        try:
            doc = json.loads(text)
            points = tuple(
                ProfilePoint(p["bandwidth_bytes"], p["latency_ns"])
                for p in doc["points"]
            )
            return cls(
                machine_name=doc["machine"],
                peak_bw_bytes=doc["peak_bw_bytes"],
                points=points,
                source=doc.get("source", "unknown"),
            )
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise ProfileError(f"malformed profile document: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        """Write the profile to ``path`` as JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LatencyProfile":
        """Read a profile previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())
