"""Measurement ingestion: feed *real* counter data into the analyzer.

The paper's workflow on actual hardware starts from CrayPat/perf
output.  This module lets a downstream user of the library do the same
without touching the simulator:

* :func:`from_csv` — per-routine rows
  (``routine,bandwidth_gbs,prefetch_fraction``) as exported from any
  profiler;
* :func:`from_perf_output` — ``perf stat -x,``-style (CSV) or aligned
  plain output: raw event counts are matched against the vendor's
  native event names (:mod:`repro.counters.events`), converted to bytes
  with the machine's line size, and divided by the elapsed time;
* :func:`analyze_measurements` — batch the results through
  :class:`~repro.core.analyzer.RoutineAnalyzer`.

Only bandwidth-class events are required — the paper's portability
argument — and unknown event lines are ignored rather than rejected, so
real ``perf stat`` dumps paste in unmodified.
"""

from __future__ import annotations

import csv
import io
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.analyzer import AnalysisReport, RoutineAnalyzer
from ..counters.events import CounterEvent, VENDOR_EVENTS
from ..counters.vendor import vendor_for_machine
from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..memory.profile import LatencyProfile
from ..units import gb_per_s


@dataclass(frozen=True)
class RoutineMeasurement:
    """One routine's measured bandwidth plus pattern evidence."""

    routine: str
    bandwidth_bytes: float
    prefetch_fraction: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes < 0:
            raise ConfigurationError("bandwidth must be >= 0")
        if not 0.0 <= self.prefetch_fraction <= 1.0:
            raise ConfigurationError("prefetch fraction must be in [0,1]")


def from_csv(text: str) -> List[RoutineMeasurement]:
    """Parse ``routine,bandwidth_gbs,prefetch_fraction`` rows.

    A header row is detected (non-numeric second column) and skipped.
    Blank lines and ``#`` comments are ignored.
    """
    measurements: List[RoutineMeasurement] = []
    reader = csv.reader(io.StringIO(text))
    for row in reader:
        if not row or row[0].lstrip().startswith("#"):
            continue
        if len(row) < 3:
            raise ConfigurationError(f"need 3 columns, got {row!r}")
        try:
            bw_gbs = float(row[1])
            pf = float(row[2])
        except ValueError:
            continue  # header row
        measurements.append(
            RoutineMeasurement(
                routine=row[0].strip(),
                bandwidth_bytes=gb_per_s(bw_gbs),
                prefetch_fraction=pf,
            )
        )
    if not measurements:
        raise ConfigurationError("no measurement rows found")
    return measurements


_PLAIN_LINE = re.compile(r"^\s*([\d,.]+)\s+(\S+)")


def _parse_event_counts(text: str) -> Dict[str, float]:
    """Extract (native event name -> count) from perf-style output.

    Handles both ``perf stat -x,`` CSV (``count,unit,event,...``) and
    the aligned human-readable format (``  1,234,567  EVENT_NAME``).
    Lines that don't parse are skipped.
    """
    counts: Dict[str, float] = {}
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "," in stripped and not _PLAIN_LINE.match(line):
            fields = stripped.split(",")
            raw, event = fields[0], None
            for candidate in fields[1:]:
                if candidate and not candidate.replace(".", "").isdigit():
                    event = candidate
                    break
            if event is None:
                continue
        else:
            match = _PLAIN_LINE.match(line)
            if not match:
                continue
            raw, event = match.group(1), match.group(2)
        try:
            value = float(raw.replace(",", ""))
        except ValueError:
            continue
        counts[event.strip()] = counts.get(event.strip(), 0.0) + value
    return counts


#: Events that count toward memory bandwidth, with their traffic class.
_BANDWIDTH_EVENTS = {
    CounterEvent.MEM_READ_LINES: "demand",
    CounterEvent.MEM_WRITE_LINES: "demand",
    CounterEvent.HW_PREFETCH_LINES: "prefetch",
}


def from_perf_output(
    text: str,
    machine: MachineSpec,
    *,
    elapsed_seconds: float,
    routine: str = "kernel",
) -> RoutineMeasurement:
    """Build a measurement from raw perf-style counter output.

    Event names are matched against the machine vendor's native
    spellings; ``*``-suffixed catalog names match as prefixes.
    """
    if elapsed_seconds <= 0:
        raise ConfigurationError("elapsed time must be positive")
    vendor = vendor_for_machine(machine.name)
    natives = VENDOR_EVENTS.get(vendor, ())
    counts = _parse_event_counts(text)
    if not counts:
        raise ConfigurationError("no counter lines recognized in input")

    demand_lines = 0.0
    prefetch_lines = 0.0
    matched = False
    for native in natives:
        kind = _BANDWIDTH_EVENTS.get(native.event)
        if kind is None:
            continue
        pattern = native.native_name
        for event_name, value in counts.items():
            if pattern.endswith("*"):
                hit = event_name.startswith(pattern[:-1])
            else:
                hit = event_name == pattern
            if hit:
                matched = True
                if kind == "prefetch":
                    prefetch_lines += value
                else:
                    demand_lines += value
    if not matched:
        raise ConfigurationError(
            f"no bandwidth events for vendor {vendor!r} found in input; "
            "expected e.g. "
            + ", ".join(
                n.native_name
                for n in natives
                if n.event in _BANDWIDTH_EVENTS
            )
        )
    total_lines = demand_lines + prefetch_lines
    bandwidth = total_lines * machine.line_bytes / elapsed_seconds
    prefetch_fraction = prefetch_lines / total_lines if total_lines else 0.0
    return RoutineMeasurement(
        routine=routine,
        bandwidth_bytes=bandwidth,
        prefetch_fraction=prefetch_fraction,
    )


def analyze_measurements(
    machine: MachineSpec,
    measurements: Sequence[RoutineMeasurement],
    *,
    profile: Optional[LatencyProfile] = None,
) -> List[AnalysisReport]:
    """Run each measurement through the per-routine analyzer."""
    analyzer = RoutineAnalyzer(machine, profile)
    return [
        analyzer.analyze_bandwidth(
            m.bandwidth_bytes,
            routine=m.routine,
            prefetch_fraction=m.prefetch_fraction,
        )
        for m in measurements
    ]
