"""Measurement ingestion: feed *real* counter data into the analyzer.

The paper's workflow on actual hardware starts from CrayPat/perf
output.  This module lets a downstream user of the library do the same
without touching the simulator:

* :func:`from_csv` — per-routine rows
  (``routine,bandwidth_gbs,prefetch_fraction``) as exported from any
  profiler; strict — the first bad row aborts with its 1-based line
  number and the offending cell;
* :func:`from_csv_degraded` — the same rows in *degraded mode*: bad
  rows are skipped and reported as structured
  :class:`~repro.resilience.quality.DataQualityIssue`\\ s, which
  :func:`repro.core.uncertainty.quality_widened_errors` converts into a
  wider error bar (report-and-widen, never die on the first bad row);
* :func:`from_perf_output` — ``perf stat -x,``-style (CSV) or aligned
  plain output: raw event counts are matched against the vendor's
  native event names (:mod:`repro.counters.events`), converted to bytes
  with the machine's line size, and divided by the elapsed time;
* :func:`analyze_measurements` — batch the results through
  :class:`~repro.core.analyzer.RoutineAnalyzer`.

Only bandwidth-class events are required — the paper's portability
argument — and unknown event lines are ignored rather than rejected, so
real ``perf stat`` dumps paste in unmodified.
"""

from __future__ import annotations

import csv
import io
import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.analyzer import AnalysisReport, RoutineAnalyzer
from ..counters.events import CounterEvent, VENDOR_EVENTS
from ..counters.vendor import vendor_for_machine
from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..memory.profile import LatencyProfile
from ..resilience.quality import DataQualityIssue
from ..units import gb_per_s


@dataclass(frozen=True)
class RoutineMeasurement:
    """One routine's measured bandwidth plus pattern evidence."""

    routine: str
    bandwidth_bytes: float
    prefetch_fraction: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes < 0:
            raise ConfigurationError("bandwidth must be >= 0")
        if not 0.0 <= self.prefetch_fraction <= 1.0:
            raise ConfigurationError("prefetch fraction must be in [0,1]")


def _parse_csv_row(
    row: List[str], line_num: int
) -> RoutineMeasurement:
    """One strict row parse; errors carry line number + offending cell."""
    if len(row) < 3:
        raise ConfigurationError(
            f"line {line_num}: need 3 columns "
            f"(routine,bandwidth_gbs,prefetch_fraction), got {row!r}"
        )
    cells = {"bandwidth_gbs": row[1], "prefetch_fraction": row[2]}
    values: Dict[str, float] = {}
    for column, cell in cells.items():
        try:
            values[column] = float(cell)
        except ValueError as exc:
            raise ConfigurationError(
                f"line {line_num}: column {column!r} needs a number, "
                f"got {cell.strip()!r}"
            ) from exc
        if math.isnan(values[column]):
            raise ConfigurationError(
                f"line {line_num}: column {column!r} is NaN"
            )
    try:
        return RoutineMeasurement(
            routine=row[0].strip(),
            bandwidth_bytes=gb_per_s(values["bandwidth_gbs"]),
            prefetch_fraction=values["prefetch_fraction"],
        )
    except ConfigurationError as exc:
        raise ConfigurationError(f"line {line_num}: {exc}") from exc


def from_csv(text: str) -> List[RoutineMeasurement]:
    """Parse ``routine,bandwidth_gbs,prefetch_fraction`` rows (strict).

    A leading header row is detected (non-numeric second column before
    any data row) and skipped.  Blank lines and ``#`` comments are
    ignored.  Any other malformed row aborts with a
    :class:`~repro.errors.ConfigurationError` naming the 1-based line
    number and the offending cell; use :func:`from_csv_degraded` to
    survive bad rows instead.
    """
    measurements: List[RoutineMeasurement] = []
    reader = csv.reader(io.StringIO(text))
    for row in reader:
        if not row or row[0].lstrip().startswith("#"):
            continue
        if not measurements and len(row) >= 3 and not _is_number(row[1]):
            continue  # header row
        measurements.append(_parse_csv_row(row, reader.line_num))
    if not measurements:
        raise ConfigurationError("no measurement rows found")
    return measurements


def _is_number(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True


def from_csv_degraded(
    text: str,
) -> Tuple[List[RoutineMeasurement], List[DataQualityIssue]]:
    """Degraded-mode CSV ingestion: collect issues instead of dying.

    Every malformed row (too few columns, non-numeric cell, NaN,
    out-of-range value) becomes a
    :class:`~repro.resilience.quality.DataQualityIssue` and the row is
    skipped; parsing always reaches the end of the input.  The
    ``counter_drop``/``counter_nan`` fault kinds
    (:mod:`repro.resilience.faults`) inject exactly these degradations,
    keyed by line number, so the path stays exercised.

    Raises only when *no* row survives — an all-bad input is a
    configuration problem, not a data-quality one.
    """
    from ..resilience.faults import get_injector

    injector = get_injector()
    measurements: List[RoutineMeasurement] = []
    issues: List[DataQualityIssue] = []
    reader = csv.reader(io.StringIO(text))
    saw_data = False
    for row in reader:
        if not row or row[0].lstrip().startswith("#"):
            continue
        if not saw_data and len(row) >= 3 and not _is_number(row[1]):
            continue  # header row
        saw_data = True
        line_num = reader.line_num
        location = f"line {line_num}"
        if injector.active and injector.drops_sample(f"csv:{line_num}"):
            issues.append(
                DataQualityIssue(
                    kind="dropped-sample",
                    location=location,
                    detail="row dropped by injected counter_drop fault",
                )
            )
            continue
        if injector.active and injector.nans_sample(f"csv:{line_num}"):
            issues.append(
                DataQualityIssue(
                    kind="nan-bandwidth",
                    location=location,
                    detail="bandwidth read back as NaN (injected counter_nan)",
                )
            )
            continue
        try:
            measurements.append(_parse_csv_row(row, line_num))
        except ConfigurationError as exc:
            kind = "skipped-row" if len(row) < 3 else "bad-cell"
            detail = str(exc)
            prefix = f"{location}: "
            if detail.startswith(prefix):
                detail = detail[len(prefix) :]
            issues.append(
                DataQualityIssue(kind=kind, location=location, detail=detail)
            )
    if not measurements:
        raise ConfigurationError(
            "no measurement rows survived degraded-mode parsing "
            f"({len(issues)} issue(s))"
        )
    return measurements, issues


_PLAIN_LINE = re.compile(r"^\s*([\d,.]+)\s+(\S+)")


def _parse_event_counts(text: str) -> Dict[str, float]:
    """Extract (native event name -> count) from perf-style output.

    Handles both ``perf stat -x,`` CSV (``count,unit,event,...``) and
    the aligned human-readable format (``  1,234,567  EVENT_NAME``).
    Lines that don't parse are skipped.
    """
    counts: Dict[str, float] = {}
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "," in stripped and not _PLAIN_LINE.match(line):
            fields = stripped.split(",")
            raw, event = fields[0], None
            for candidate in fields[1:]:
                if candidate and not candidate.replace(".", "").isdigit():
                    event = candidate
                    break
            if event is None:
                continue
        else:
            match = _PLAIN_LINE.match(line)
            if not match:
                continue
            raw, event = match.group(1), match.group(2)
        try:
            value = float(raw.replace(",", ""))
        except ValueError:
            continue
        counts[event.strip()] = counts.get(event.strip(), 0.0) + value
    return counts


#: Events that count toward memory bandwidth, with their traffic class.
_BANDWIDTH_EVENTS = {
    CounterEvent.MEM_READ_LINES: "demand",
    CounterEvent.MEM_WRITE_LINES: "demand",
    CounterEvent.HW_PREFETCH_LINES: "prefetch",
}


def from_perf_output(
    text: str,
    machine: MachineSpec,
    *,
    elapsed_seconds: float,
    routine: str = "kernel",
) -> RoutineMeasurement:
    """Build a measurement from raw perf-style counter output.

    Event names are matched against the machine vendor's native
    spellings; ``*``-suffixed catalog names match as prefixes.
    """
    if elapsed_seconds <= 0:
        raise ConfigurationError("elapsed time must be positive")
    vendor = vendor_for_machine(machine.name)
    natives = VENDOR_EVENTS.get(vendor, ())
    counts = _parse_event_counts(text)
    if not counts:
        raise ConfigurationError("no counter lines recognized in input")

    demand_lines = 0.0
    prefetch_lines = 0.0
    matched = False
    for native in natives:
        kind = _BANDWIDTH_EVENTS.get(native.event)
        if kind is None:
            continue
        pattern = native.native_name
        for event_name, value in counts.items():
            if pattern.endswith("*"):
                hit = event_name.startswith(pattern[:-1])
            else:
                hit = event_name == pattern
            if hit:
                matched = True
                if kind == "prefetch":
                    prefetch_lines += value
                else:
                    demand_lines += value
    if not matched:
        raise ConfigurationError(
            f"no bandwidth events for vendor {vendor!r} found in input; "
            "expected e.g. "
            + ", ".join(
                n.native_name
                for n in natives
                if n.event in _BANDWIDTH_EVENTS
            )
        )
    total_lines = demand_lines + prefetch_lines
    bandwidth = total_lines * machine.line_bytes / elapsed_seconds
    prefetch_fraction = prefetch_lines / total_lines if total_lines else 0.0
    return RoutineMeasurement(
        routine=routine,
        bandwidth_bytes=bandwidth,
        prefetch_fraction=prefetch_fraction,
    )


def analyze_measurements(
    machine: MachineSpec,
    measurements: Sequence[RoutineMeasurement],
    *,
    profile: Optional[LatencyProfile] = None,
) -> List[AnalysisReport]:
    """Run each measurement through the per-routine analyzer."""
    analyzer = RoutineAnalyzer(machine, profile)
    return [
        analyzer.analyze_bandwidth(
            m.bandwidth_bytes,
            routine=m.routine,
            prefetch_fraction=m.prefetch_fraction,
        )
        for m in measurements
    ]
