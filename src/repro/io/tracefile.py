"""On-disk trace files: ``.npz`` containers that load back memory-mapped.

A trace file is a standard (uncompressed by default) numpy ``.npz``
archive holding, per thread, the three canonical columnar arrays plus a
JSON ``meta`` member::

    meta      uint8 bytes of a JSON document (format/version/routine/
              line_bytes/thread ids/content sha256)
    t0_addr   <u8   thread 0 addresses
    t0_kind   |u1   thread 0 AccessKind codes
    t0_gap    <f8   thread 0 gap cycles
    t1_addr   ...

Because the members of an *uncompressed* zip are stored verbatim, each
array's bytes sit contiguously in the file and can be ``np.memmap``-ed
in place: :func:`load_trace` locates every member through the zip local
headers and maps it read-only, so importing a multi-gigabyte trace
costs no read I/O up front and shares pages between processes.
(``np.load(..., mmap_mode=...)`` silently ignores the request for
``.npz`` — hence the explicit offset work here.)  Compressed files and
anything else the fast path cannot handle fall back to a plain
``np.load`` copy, with identical results.

The ``meta`` digest is :func:`repro.sim.coltrace.trace_digest` of the
saved trace, so :func:`load_trace` verifies end-to-end integrity by
default, and a loaded trace produces the *same perf-cache key* as the
trace that was saved — cached simulation results survive the
export/import round trip.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Any, Dict, Tuple, Union

import numpy as np

from ..errors import TraceError
from ..sim.coltrace import (
    AnyTrace,
    ColumnarThreadTrace,
    ColumnarTrace,
    as_columnar,
    trace_digest,
)

#: Format tag stored in the meta member.
TRACE_FILE_FORMAT = "repro-trace-npz"

#: Bump on any layout change.
TRACE_FILE_VERSION = 1

#: Size of a zip local file header before the variable-length fields.
_ZIP_LOCAL_HEADER_BYTES = 30


def _member_names(index: int) -> Tuple[str, str, str]:
    return (f"t{index}_addr", f"t{index}_kind", f"t{index}_gap")


def save_trace(
    path: Union[str, Path],
    trace: AnyTrace,
    *,
    compress: bool = False,
) -> Dict[str, Any]:
    """Write ``trace`` to ``path`` as a trace file; returns its metadata.

    ``compress`` trades the mmap fast path on load for a smaller file
    (loads still work — through the ``np.load`` fallback).  Either
    representation can be saved; the file always stores columnar form.

    The write is atomic (temp file + rename via
    :func:`repro.io.atomic.atomic_writer`): a crash mid-save leaves the
    previous trace file — or nothing — never a torn archive.  The
    ``trace_corrupt``/``trace_truncate`` fault kinds damage the file
    *after* a successful save so :func:`load_trace`'s digest
    verification path stays exercised.
    """
    from .atomic import atomic_writer

    col = as_columnar(trace)
    path = Path(path)
    meta = {
        "format": TRACE_FILE_FORMAT,
        "version": TRACE_FILE_VERSION,
        "routine": col.routine,
        "line_bytes": col.line_bytes,
        "thread_ids": [t.thread_id for t in col.threads],
        "sha256": trace_digest(col),
    }
    members: Dict[str, np.ndarray] = {
        "meta": np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
    }
    for i, thread in enumerate(col.threads):
        addr_name, kind_name, gap_name = _member_names(i)
        members[addr_name] = thread.addr
        members[kind_name] = thread.kind
        members[gap_name] = thread.gap_cycles
    saver = np.savez_compressed if compress else np.savez
    # Hand savez an open handle so the exact path is honored (savez
    # appends ".npz" to bare string paths).
    with atomic_writer(path) as handle:
        saver(handle, **members)

    from ..resilience.faults import get_injector

    injector = get_injector()
    if injector.active:
        key = str(meta["sha256"])
        injector.maybe_corrupt_file("trace_corrupt", key, path)
        injector.maybe_corrupt_file("trace_truncate", key, path)
    return meta


def _mmap_members(path: Path) -> Dict[str, np.ndarray]:
    """Map every array member of an uncompressed npz without copying.

    Walks the zip local headers (the central directory's offsets point
    at them; the data starts after the header's variable-length name and
    extra fields), reads each member's npy header, and memmaps the
    payload in place.  Raises TraceError for anything but stored
    (uncompressed) members — callers fall back to ``np.load``.
    """
    out: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise TraceError(f"member {info.filename} is compressed")
            raw.seek(info.header_offset)
            header = raw.read(_ZIP_LOCAL_HEADER_BYTES)
            if len(header) != _ZIP_LOCAL_HEADER_BYTES or header[:4] != b"PK\x03\x04":
                raise TraceError(f"bad local header for {info.filename}")
            name_len = int.from_bytes(header[26:28], "little")
            extra_len = int.from_bytes(header[28:30], "little")
            raw.seek(info.header_offset + _ZIP_LOCAL_HEADER_BYTES + name_len + extra_len)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
            else:
                raise TraceError(f"unsupported npy version {version}")
            if fortran:
                raise TraceError("fortran-order member")
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            count = int(np.prod(shape)) if shape else 1
            if count == 0:
                out[name] = np.empty(shape, dtype=dtype)
                continue
            out[name] = np.memmap(
                path, dtype=dtype, mode="r", offset=raw.tell(), shape=shape
            )
    return out


def load_trace(
    path: Union[str, Path],
    *,
    mmap: bool = True,
    verify: bool = True,
) -> ColumnarTrace:
    """Read a trace file back as a :class:`ColumnarTrace`.

    With ``mmap`` (the default) the arrays of an uncompressed file are
    memory-mapped read-only straight out of the archive; otherwise (or
    whenever mapping is not possible) they are loaded as copies.  With
    ``verify`` the content digest recorded at save time is recomputed
    and must match, else :class:`~repro.errors.TraceError`.
    """
    path = Path(path)
    members: Dict[str, np.ndarray]
    if mmap:
        try:
            members = _mmap_members(path)
        except (TraceError, OSError, ValueError, zipfile.BadZipFile):
            members = {}
    else:
        members = {}
    if not members:
        try:
            with np.load(path) as archive:
                members = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise TraceError(f"cannot read trace file {path}: {exc}") from None

    if "meta" not in members:
        raise TraceError(f"{path} is not a repro trace file (no meta member)")
    try:
        meta = json.loads(bytes(members["meta"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"corrupt trace-file metadata in {path}: {exc}") from None
    if meta.get("format") != TRACE_FILE_FORMAT:
        raise TraceError(f"{path}: unknown trace-file format {meta.get('format')!r}")
    if meta.get("version") != TRACE_FILE_VERSION:
        raise TraceError(
            f"{path}: trace-file version {meta.get('version')!r} "
            f"(this build reads {TRACE_FILE_VERSION})"
        )

    threads = []
    for i, thread_id in enumerate(meta["thread_ids"]):
        addr_name, kind_name, gap_name = _member_names(i)
        try:
            addr, kind, gap = members[addr_name], members[kind_name], members[gap_name]
        except KeyError as exc:
            raise TraceError(f"{path}: missing member {exc}") from None
        threads.append(ColumnarThreadTrace(int(thread_id), addr, kind, gap))
    trace = ColumnarTrace(
        threads=tuple(threads),
        routine=str(meta["routine"]),
        line_bytes=int(meta["line_bytes"]),
    )
    if verify:
        actual = trace_digest(trace)
        if actual != meta.get("sha256"):
            raise TraceError(
                f"{path}: content digest mismatch (file corrupt or edited): "
                f"stored {meta.get('sha256')!r}, computed {actual!r}"
            )
    return trace
