"""I/O: measurement parsers and on-disk trace files."""

from .atomic import (
    append_jsonl,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
)
from .measurements import (
    RoutineMeasurement,
    analyze_measurements,
    from_csv,
    from_csv_degraded,
    from_perf_output,
)
from .tracefile import (
    TRACE_FILE_FORMAT,
    TRACE_FILE_VERSION,
    load_trace,
    save_trace,
)

__all__ = [
    "RoutineMeasurement",
    "TRACE_FILE_FORMAT",
    "TRACE_FILE_VERSION",
    "analyze_measurements",
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "from_csv",
    "from_csv_degraded",
    "from_perf_output",
    "load_trace",
    "save_trace",
]
