"""I/O: measurement parsers and on-disk trace files."""

from .measurements import (
    RoutineMeasurement,
    analyze_measurements,
    from_csv,
    from_perf_output,
)
from .tracefile import (
    TRACE_FILE_FORMAT,
    TRACE_FILE_VERSION,
    load_trace,
    save_trace,
)

__all__ = [
    "RoutineMeasurement",
    "TRACE_FILE_FORMAT",
    "TRACE_FILE_VERSION",
    "analyze_measurements",
    "from_csv",
    "from_perf_output",
    "load_trace",
    "save_trace",
]
