"""Measurement ingestion: CSV and perf-style counter output parsers."""

from .measurements import (
    RoutineMeasurement,
    analyze_measurements,
    from_csv,
    from_perf_output,
)

__all__ = [
    "RoutineMeasurement",
    "analyze_measurements",
    "from_csv",
    "from_perf_output",
]
