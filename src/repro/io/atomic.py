"""Crash-safe file primitives shared by the cache, trace, and checkpoint layers.

Three write disciplines cover every persistence need in the repo:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` — whole-file
  replacement via a same-directory temp file and ``os.replace``; a
  reader never observes a half-written file, and a crash leaves either
  the old content or the new, never a mix;
* :func:`atomic_writer` — the same discipline as a context manager, for
  writers that need an open handle (e.g. ``numpy.savez``);
* :func:`append_jsonl` — durably append one JSON document as one line:
  a single ``write`` of a ``\\n``-terminated line on an ``O_APPEND``
  handle, flushed and fsynced, so concurrent appenders never interleave
  within a line and a crash can lose at most the final partial line
  (which JSONL readers must tolerate — see
  :mod:`repro.resilience.checkpoint`).
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterator, Union

__all__ = [
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
]


@contextmanager
def atomic_writer(
    path: Union[str, Path], *, text: bool = False
) -> Iterator[IO[Any]]:
    """Open a temp file next to ``path``; on clean exit, replace ``path``.

    On an exception the temp file is removed and ``path`` is untouched.
    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    handle: IO[Any]
    try:
        handle = os.fdopen(fd, "w" if text else "wb")
        try:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            handle.close()
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: noqa[RES001] - best-effort tmp cleanup
            pass
        raise


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` with all-or-nothing visibility."""
    with atomic_writer(path) as handle:
        handle.write(data)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` with all-or-nothing visibility."""
    atomic_write_bytes(path, text.encode("utf-8"))


def append_jsonl(path: Union[str, Path], doc: Any, *, fsync: bool = True) -> None:
    """Durably append ``doc`` to ``path`` as one JSON line.

    The serialized line is written with a single ``os.write`` on an
    ``O_APPEND`` descriptor (atomic with respect to other appenders for
    any line shorter than ``PIPE_BUF``-scale sizes on every mainstream
    filesystem) and fsynced before returning, so a completed call
    survives an immediately following crash.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
