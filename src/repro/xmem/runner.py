"""X-Mem runner: sweep load levels and emit a machine's LatencyProfile.

This is the reproduction of the paper's once-per-machine
characterization step (Section IV): "we obtain the latency profile for
a processor using X-Mem, which lists the observed memory latency at
many values of bandwidth utilization (configured using user-specified
load on system through inserted delays or through thread-level
parallelism — this does not require root privileges)".

The runner simulates a small machine slice per load level, records the
achieved bandwidth and the average loaded latency observed at the
memory controller, and assembles the samples into a
:class:`~repro.memory.profile.LatencyProfile`.  Because the simulated
controller's latency comes from the machine's calibrated curve, the
measured profile recovers that curve (plus admission-queueing effects
near saturation) — closing the characterize→analyze loop end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ProfileError
from ..machines.spec import MachineSpec
from ..memory.profile import LatencyProfile
from ..perf.cache import cached_run_trace, stable_digest
from ..resilience.checkpoint import (
    SweepCheckpoint,
    dataclass_codec,
    run_checkpointed,
)
from ..sim.hierarchy import SimConfig
from .kernels import gap_sweep, throughput_trace


@dataclass(frozen=True)
class XMemMeasurement:
    """One load level's outcome."""

    gap_cycles: float
    bandwidth_bytes: float
    latency_ns: float
    utilization: float


@dataclass(frozen=True)
class XMemConfig:
    """Characterization sweep settings.

    ``sim_cores`` controls the simulated slice; the achieved bandwidths
    are scaled back to full-socket numbers so the resulting profile is
    directly usable with full-socket observed bandwidths.  ``batch``
    forwards to :attr:`repro.sim.hierarchy.SimConfig.batch` (the
    batch-stepping fast path; results are bit-identical either way).
    """

    sim_cores: int = 2
    accesses_per_thread: int = 3000
    streams_per_thread: int = 8
    levels: int = 12
    max_gap_cycles: float = 400.0
    hw_prefetch: bool = True
    window_per_core: int = 32
    batch: bool = True


class XMemRunner:
    """Sweeps load levels on one machine and builds its latency profile."""

    def __init__(self, machine: MachineSpec, config: Optional[XMemConfig] = None):
        self.machine = machine
        self.config = config or XMemConfig()
        if self.config.sim_cores > machine.active_cores:
            raise ProfileError("sim_cores exceeds machine cores")

    def measure_level(self, gap_cycles: float) -> XMemMeasurement:
        """Run one load level and return its (bandwidth, latency) sample."""
        cfg = self.config
        trace = throughput_trace(
            threads=cfg.sim_cores,
            accesses_per_thread=cfg.accesses_per_thread,
            line_bytes=self.machine.line_bytes,
            streams_per_thread=cfg.streams_per_thread,
            gap_cycles=gap_cycles,
            routine=f"xmem_gap{gap_cycles:.0f}",
        )
        sim_cfg = SimConfig(
            machine=self.machine,
            sim_cores=cfg.sim_cores,
            threads_per_core=1,
            window_per_core=cfg.window_per_core,
            hw_prefetch=cfg.hw_prefetch,
            batch=cfg.batch,
        )
        stats = cached_run_trace(trace, sim_cfg)
        slice_fraction = cfg.sim_cores / self.machine.active_cores
        socket_bw = stats.bandwidth_bytes_per_s() / slice_fraction
        return XMemMeasurement(
            gap_cycles=gap_cycles,
            bandwidth_bytes=socket_bw,
            latency_ns=stats.memory.avg_latency_ns,
            utilization=socket_bw / self.machine.memory.peak_bw_bytes,
        )

    def _level_key(self, gap_cycles: float) -> str:
        """Stable checkpoint key for one load level of this sweep."""
        return stable_digest(
            {
                "harness": "xmem",
                "machine": self.machine.name,
                "config": self.config,
                "gap_cycles": gap_cycles,
            }
        )

    def sweep(
        self,
        *,
        jobs: Optional[int] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        retries: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> List[XMemMeasurement]:
        """Measure all load levels, near-idle to saturation.

        Load levels are independent simulations, so with ``jobs > 1``
        they fan out across worker processes
        (:func:`repro.perf.parallel.fan_out`); the measurement order —
        and therefore the profile — is identical for any worker count.

        With a ``checkpoint`` each completed level is durably recorded
        (keyed by a digest of machine + sweep config + gap), so a run
        killed mid-characterization resumes exactly where it stopped —
        and returns byte-identical measurements to an uninterrupted run.
        """
        gaps = gap_sweep(self.config.levels, max_gap_cycles=self.config.max_gap_cycles)
        encode, decode = dataclass_codec(XMemMeasurement)
        return run_checkpointed(
            self.measure_level,
            gaps,
            checkpoint=checkpoint,
            key_fn=self._level_key,
            encode=encode,
            decode=decode,
            jobs=jobs,
            retries=retries,
            timeout_s=timeout_s,
        )

    def characterize(
        self,
        *,
        jobs: Optional[int] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        retries: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> LatencyProfile:
        """Produce this machine's measured LatencyProfile.

        An explicit near-zero-load anchor (idle latency) is added so the
        profile's domain starts at zero bandwidth.  ``checkpoint``,
        ``retries`` and ``timeout_s`` pass through to :meth:`sweep`.
        """
        measurements = self.sweep(
            jobs=jobs, checkpoint=checkpoint, retries=retries, timeout_s=timeout_s
        )
        samples: List[Tuple[float, float]] = [
            (m.bandwidth_bytes, m.latency_ns) for m in measurements
        ]
        idle = min(m.latency_ns for m in measurements)
        samples.append((0.0, idle))
        return LatencyProfile.from_samples(
            self.machine.name,
            self.machine.memory.peak_bw_bytes,
            samples,
            source="xmem",
        )


def characterize_machine(
    machine: MachineSpec,
    config: Optional[XMemConfig] = None,
    *,
    jobs: Optional[int] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> LatencyProfile:
    """One-call characterization: the paper's per-machine prerequisite."""
    return XMemRunner(machine, config).characterize(
        jobs=jobs, checkpoint=checkpoint, retries=retries, timeout_s=timeout_s
    )
