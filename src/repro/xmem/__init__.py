"""X-Mem substitute: cross-platform loaded-latency characterization."""

from .kernels import (
    gap_sweep,
    pointer_chase_addresses,
    pointer_chase_trace,
    throughput_thread,
    throughput_trace,
)
from .runner import XMemConfig, XMemMeasurement, XMemRunner, characterize_machine

__all__ = [
    "XMemConfig",
    "XMemMeasurement",
    "XMemRunner",
    "characterize_machine",
    "gap_sweep",
    "pointer_chase_addresses",
    "pointer_chase_trace",
    "throughput_thread",
    "throughput_trace",
]
