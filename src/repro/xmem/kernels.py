"""Load-generator kernels for memory characterization.

X-Mem [4] measures a machine's loaded-latency profile by combining a
latency-sensitive pointer chase with throughput threads whose injection
rate is controlled "through inserted delays or through thread-level
parallelism" (paper Section IV).  These builders produce the equivalent
traces for the simulator:

* :func:`pointer_chase_trace` — dependent random accesses (window 1),
  the pure-latency probe;
* :func:`throughput_trace` — multi-stream unit-stride reads with a
  configurable per-access delay (the "inserted delays" knob) across a
  configurable number of threads (the "thread-level parallelism" knob).

Addresses are spread across disjoint regions per thread so the probe
and load threads never share cache lines.
"""

from __future__ import annotations

import random
from typing import List, Sequence

import numpy as np

from ..errors import TraceError
from ..sim.coltrace import (
    ADDR_DTYPE,
    GAP_DTYPE,
    KIND_CODES,
    KIND_DTYPE,
    ColumnarThreadTrace,
    ColumnarTrace,
)
from ..sim.trace import Access, AccessKind, ThreadTrace

#: Region size per stream; large enough that streams never wrap into cache.
_REGION_BYTES = 64 * 1024 * 1024


def pointer_chase_addresses(
    count: int, line_bytes: int, *, region_bytes: int = 256 * 1024 * 1024, seed: int = 7
) -> List[int]:
    """Random line-granular addresses emulating a dependent pointer chase."""
    if count <= 0:
        raise TraceError("count must be positive")
    rng = random.Random(seed)
    lines = region_bytes // line_bytes
    return [rng.randrange(lines) * line_bytes for _ in range(count)]


def pointer_chase_trace(
    count: int,
    line_bytes: int,
    *,
    thread_id: int = 0,
    seed: int = 7,
) -> ThreadTrace:
    """A single dependent-chain thread trace (gap 1 cycle, window 1 intent).

    The simulator enforces dependence by running this thread with a
    window of 1 (see :class:`repro.xmem.runner.XMemRunner`).
    """
    addrs = pointer_chase_addresses(count, line_bytes, seed=seed)
    return ThreadTrace(
        thread_id=thread_id,
        accesses=tuple(Access(a, AccessKind.LOAD, gap_cycles=1.0) for a in addrs),
    )


def throughput_thread(
    thread_id: int,
    accesses_total: int,
    line_bytes: int,
    *,
    streams: int = 8,
    gap_cycles: float = 0.0,
    element_bytes: int = 0,
) -> ColumnarThreadTrace:
    """One load thread: ``streams`` unit-stride read streams, interleaved.

    ``gap_cycles`` is the inserted delay between consecutive accesses —
    X-Mem's load-control knob.  ``element_bytes`` of 0 means one access
    per line (maximum pressure); a positive value strides within lines.
    """
    if accesses_total <= 0 or streams <= 0:
        raise TraceError("accesses_total and streams must be positive")
    stride = element_bytes if element_bytes > 0 else line_bytes
    idx = np.arange(accesses_total, dtype=np.int64)
    stream = idx % streams
    step = idx // streams
    bases = (
        (thread_id * streams + stream) * _REGION_BYTES
        + stream * 128 * line_bytes
    )
    addr = (bases + step * stride).astype(ADDR_DTYPE)
    kind = np.full(accesses_total, KIND_CODES[AccessKind.LOAD], dtype=KIND_DTYPE)
    gap = np.full(accesses_total, gap_cycles, dtype=GAP_DTYPE)
    return ColumnarThreadTrace(thread_id, addr, kind, gap)


def resident_thread(
    thread_id: int,
    accesses_total: int,
    line_bytes: int,
    *,
    hot_lines: int = 384,
    gap_cycles: float = 6.0,
) -> ColumnarThreadTrace:
    """One thread looping over an L1-resident footprint.

    After one warm-up pass every access hits L1, which makes this the
    reference workload for the batch-stepping fast path (the event and
    batch engines must agree bit-for-bit while the batch path retires
    nearly the whole trace vectorized).  ``hot_lines`` must fit the
    target L1 for the "resident" premise to hold; the default suits a
    32 KiB / 64 B cache with room to spare.  Threads use disjoint
    regions, as elsewhere in this module.
    """
    if accesses_total <= 0 or hot_lines <= 0:
        raise TraceError("accesses_total and hot_lines must be positive")
    idx = np.arange(accesses_total, dtype=np.int64)
    base = thread_id * (1 << 36)
    addr = (base + (idx % hot_lines) * line_bytes).astype(ADDR_DTYPE)
    kind = np.full(accesses_total, KIND_CODES[AccessKind.LOAD], dtype=KIND_DTYPE)
    gap = np.full(accesses_total, gap_cycles, dtype=GAP_DTYPE)
    return ColumnarThreadTrace(thread_id, addr, kind, gap)


def resident_trace(
    *,
    threads: int,
    accesses_per_thread: int,
    line_bytes: int,
    hot_lines: int = 384,
    gap_cycles: float = 6.0,
    routine: str = "l1_resident",
) -> ColumnarTrace:
    """A multi-threaded L1-resident (all-hit after warm-up) workload."""
    if threads <= 0:
        raise TraceError("threads must be positive")
    return ColumnarTrace(
        threads=tuple(
            resident_thread(
                t,
                accesses_per_thread,
                line_bytes,
                hot_lines=hot_lines,
                gap_cycles=gap_cycles,
            )
            for t in range(threads)
        ),
        routine=routine,
        line_bytes=line_bytes,
    )


def scatter_thread(
    thread_id: int,
    accesses_total: int,
    line_bytes: int,
    *,
    footprint_lines: int = 1 << 22,
    gap_cycles: float = 400.0,
    seed: int = 11,
) -> ColumnarThreadTrace:
    """One thread of cold random loads with fill-drainable gaps.

    Nearly every access misses to memory (the footprint dwarfs any
    modeled cache) and the inserted delay exceeds the loaded memory
    latency, so each miss's fill drains before the next access issues.
    That is the regime the batched miss fast path retires closed-form
    (docs/PERFORMANCE.md): runs hand off cleanly because no fill
    outlives the next issue attempt.  Smaller gaps push the workload
    into the overlapped-MLP regime, which deliberately falls back to
    the event engine (``handoff`` fallback).
    """
    if accesses_total <= 0 or footprint_lines <= 0:
        raise TraceError("accesses_total and footprint_lines must be positive")
    rng = np.random.default_rng(seed + thread_id)
    base = thread_id * (1 << 40)
    addr = (
        base + rng.integers(0, footprint_lines, accesses_total) * line_bytes
    ).astype(ADDR_DTYPE)
    kind = np.full(accesses_total, KIND_CODES[AccessKind.LOAD], dtype=KIND_DTYPE)
    gap = np.full(accesses_total, gap_cycles, dtype=GAP_DTYPE)
    return ColumnarThreadTrace(thread_id, addr, kind, gap)


def scatter_trace(
    *,
    threads: int,
    accesses_per_thread: int,
    line_bytes: int,
    footprint_lines: int = 1 << 22,
    gap_cycles: float = 400.0,
    routine: str = "cold_scatter",
) -> ColumnarTrace:
    """A cold random-load (miss-heavy, drainable-gap) workload."""
    if threads <= 0:
        raise TraceError("threads must be positive")
    return ColumnarTrace(
        threads=tuple(
            scatter_thread(
                t,
                accesses_per_thread,
                line_bytes,
                footprint_lines=footprint_lines,
                gap_cycles=gap_cycles,
            )
            for t in range(threads)
        ),
        routine=routine,
        line_bytes=line_bytes,
    )


def throughput_trace(
    *,
    threads: int,
    accesses_per_thread: int,
    line_bytes: int,
    streams_per_thread: int = 8,
    gap_cycles: float = 0.0,
    routine: str = "xmem_load",
) -> ColumnarTrace:
    """A multi-threaded throughput workload at one load level."""
    if threads <= 0:
        raise TraceError("threads must be positive")
    return ColumnarTrace(
        threads=tuple(
            throughput_thread(
                t,
                accesses_per_thread,
                line_bytes,
                streams=streams_per_thread,
                gap_cycles=gap_cycles,
            )
            for t in range(threads)
        ),
        routine=routine,
        line_bytes=line_bytes,
    )


def gap_sweep(levels: int, *, max_gap_cycles: float = 400.0) -> Sequence[float]:
    """Geometric sweep of inserted delays from heavy load to near idle.

    Returns ``levels`` gap values ending at 0 (no delay = maximum load).
    """
    if levels < 2:
        raise TraceError("need at least two load levels")
    gaps = []
    g = max_gap_cycles
    for _ in range(levels - 1):
        gaps.append(g)
        g /= 2.2
    gaps.append(0.0)
    return gaps
