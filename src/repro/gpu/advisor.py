"""GPU MSHR-occupancy guidance — the paper's §III-H recommendations.

The paper's sketch, made executable:

* **low MSHRQ occupancy** → "increasing number of concurrent
  threads/warps, which could be achieved by reducing register usage per
  thread or amount of shared memory used per thread block" — the
  advisor identifies the occupancy limiter and names the cut;
* **high MSHRQ occupancy** → "(increased) use of shared memory to
  improve performance" — i.e. reduce memory requests, the GPU analogue
  of loop tiling;
* additionally, poor coalescing inflates per-warp line demand, so the
  advisor flags coalescing fixes before anything else when they apply.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from .model import (
    GpuSpec,
    KernelDescriptor,
    OccupancyReport,
    mshr_demand,
    occupancy,
    sustainable_bandwidth_bytes,
)
from ..units import to_gb_per_s

#: MSHR fill fraction above which the file counts as the bottleneck.
FULL_RATIO = 0.9
#: Below this fill fraction there is clear room for more warps.
LOW_RATIO = 0.5


class GpuAction(enum.Enum):
    """The §III-H action vocabulary."""

    REDUCE_REGISTERS = "reduce_registers_per_thread"
    REDUCE_SHARED_MEM = "reduce_shared_memory_per_block"
    INCREASE_BLOCKS = "launch_more_blocks"
    USE_SHARED_MEMORY = "use_shared_memory_for_reuse"
    IMPROVE_COALESCING = "improve_coalescing"
    NONE = "none"


@dataclass(frozen=True)
class GpuRecommendation:
    action: GpuAction
    reason: str


@dataclass(frozen=True)
class GpuAnalysis:
    """MSHR-occupancy analysis of one kernel on one GPU."""

    gpu_name: str
    kernel_name: str
    occupancy: OccupancyReport
    mshr_demand_per_sm: float
    mshr_fill_ratio: float
    sustainable_bw_gbs: float
    bandwidth_bound: bool
    recommendations: Tuple[GpuRecommendation, ...]

    def render(self) -> str:
        """Human-readable kernel analysis."""
        lines = [
            f"GPU analysis - {self.kernel_name} on {self.gpu_name}",
            f"  active warps/SM: {self.occupancy.active_warps} "
            f"(limited by {self.occupancy.limiter})",
            f"  MSHR demand/SM: {self.mshr_demand_per_sm:.1f} "
            f"({self.mshr_fill_ratio:.0%} of the file)",
            f"  sustainable bandwidth: {self.sustainable_bw_gbs:.0f} GB/s"
            + (" (bandwidth bound)" if self.bandwidth_bound else ""),
        ]
        for rec in self.recommendations:
            lines.append(f"  -> {rec.action.value}: {rec.reason}")
        return "\n".join(lines)


class GpuAdvisor:
    """Applies the §III-H occupancy rules."""

    def __init__(self, gpu: GpuSpec) -> None:
        self.gpu = gpu

    def analyze(self, kernel: KernelDescriptor) -> GpuAnalysis:
        """Analyze one kernel's MSHR occupancy and recommend actions."""
        gpu = self.gpu
        occ = occupancy(gpu, kernel)
        demand = mshr_demand(gpu, kernel)
        n_effective = min(demand, float(gpu.mshrs_per_sm))
        fill = demand / gpu.mshrs_per_sm
        bw = min(
            sustainable_bandwidth_bytes(gpu, n_effective), gpu.peak_bw_bytes
        )
        bandwidth_bound = bw >= 0.95 * gpu.peak_bw_bytes

        recs: List[GpuRecommendation] = []
        if kernel.coalescing < 0.5:
            recs.append(
                GpuRecommendation(
                    GpuAction.IMPROVE_COALESCING,
                    f"only {kernel.coalescing:.0%} of each warp's accesses "
                    "coalesce; scattered sectors burn MSHRs and bandwidth",
                )
            )
        if fill >= FULL_RATIO:
            recs.append(
                GpuRecommendation(
                    GpuAction.USE_SHARED_MEMORY,
                    "MSHR file effectively full: cut memory requests via "
                    "shared-memory reuse (the tiling analogue)",
                )
            )
        elif fill <= LOW_RATIO and not bandwidth_bound:
            if occ.limiter == "registers":
                recs.append(
                    GpuRecommendation(
                        GpuAction.REDUCE_REGISTERS,
                        f"occupancy is register-limited at {occ.active_warps} "
                        "warps/SM; fewer registers per thread admit more warps "
                        "and more outstanding misses",
                    )
                )
            elif occ.limiter == "shared_memory":
                recs.append(
                    GpuRecommendation(
                        GpuAction.REDUCE_SHARED_MEM,
                        f"occupancy is shared-memory-limited at "
                        f"{occ.active_warps} warps/SM; shrinking per-block "
                        "usage admits more blocks",
                    )
                )
            elif occ.limiter == "block_slots":
                recs.append(
                    GpuRecommendation(
                        GpuAction.INCREASE_BLOCKS,
                        "block-slot-limited: launch larger blocks to raise "
                        "warps per SM",
                    )
                )
            else:
                recs.append(
                    GpuRecommendation(
                        GpuAction.INCREASE_BLOCKS,
                        "warp slots free and MSHRs idle: raise per-warp MLP "
                        "(unroll, vector loads) or launch more work",
                    )
                )
        if not recs:
            recs.append(
                GpuRecommendation(
                    GpuAction.NONE,
                    "MSHR occupancy and bandwidth are balanced; no "
                    "occupancy-driven change indicated",
                )
            )
        return GpuAnalysis(
            gpu_name=gpu.name,
            kernel_name=kernel.name,
            occupancy=occ,
            mshr_demand_per_sm=demand,
            mshr_fill_ratio=fill,
            sustainable_bw_gbs=to_gb_per_s(bw),
            bandwidth_bound=bandwidth_bound,
            recommendations=tuple(recs),
        )
