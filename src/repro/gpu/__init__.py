"""GPU extension (paper §III-H): MSHR-occupancy guidance for kernels."""

from .advisor import (
    FULL_RATIO,
    GpuAction,
    GpuAdvisor,
    GpuAnalysis,
    GpuRecommendation,
    LOW_RATIO,
)
from .model import (
    GpuSpec,
    KernelDescriptor,
    OccupancyReport,
    a100_like,
    mshr_demand,
    occupancy,
    sustainable_bandwidth_bytes,
)

__all__ = [
    "FULL_RATIO",
    "GpuAction",
    "GpuAdvisor",
    "GpuAnalysis",
    "GpuRecommendation",
    "GpuSpec",
    "KernelDescriptor",
    "LOW_RATIO",
    "OccupancyReport",
    "a100_like",
    "mshr_demand",
    "occupancy",
    "sustainable_bandwidth_bytes",
]
