"""GPU machine and kernel models for the paper's §III-H extension.

"GPUs too rely on MSHRs in the same way as CPUs. ... analyzing the
occupancy of the MSHRQ, which tracks all the outstanding memory
requests from all the concurrent threads, could be directly useful in
understanding performance bottlenecks and guiding optimizations."

The model is per-SM (streaming multiprocessor): a warp scheduler keeps
``active_warps`` in flight, each expressing some memory-level
parallelism; all their outstanding misses share the SM's MSHR file.
Active warps are bounded by the classic occupancy limiters — the warp
slots themselves, the register file, and shared memory — computed here
exactly the way CUDA's occupancy calculator does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from ..units import gb_per_s, ns


@dataclass(frozen=True)
class GpuSpec:
    """One GPU's per-SM and socket-level resources."""

    name: str
    sms: int
    max_warps_per_sm: int
    warp_size: int
    registers_per_sm: int
    shared_mem_per_sm_bytes: int
    max_blocks_per_sm: int
    #: MSHR entries per SM (tracks all outstanding sector misses).
    mshrs_per_sm: int
    line_bytes: int
    peak_bw_gbs: float
    loaded_latency_ns: float

    def __post_init__(self) -> None:
        if min(
            self.sms,
            self.max_warps_per_sm,
            self.warp_size,
            self.registers_per_sm,
            self.shared_mem_per_sm_bytes,
            self.max_blocks_per_sm,
            self.mshrs_per_sm,
            self.line_bytes,
        ) <= 0:
            raise ConfigurationError("GPU resources must be positive")
        if self.peak_bw_gbs <= 0 or self.loaded_latency_ns <= 0:
            raise ConfigurationError("bandwidth and latency must be positive")

    @property
    def peak_bw_bytes(self) -> float:
        """Peak bandwidth in bytes/s."""
        return gb_per_s(self.peak_bw_gbs)


def a100_like() -> GpuSpec:
    """An A100-flavoured part (numbers rounded, HBM2e)."""
    return GpuSpec(
        name="gpu-a100-like",
        sms=108,
        max_warps_per_sm=64,
        warp_size=32,
        registers_per_sm=65536,
        shared_mem_per_sm_bytes=164 * 1024,
        max_blocks_per_sm=32,
        mshrs_per_sm=96,
        line_bytes=128,
        peak_bw_gbs=1555.0,
        loaded_latency_ns=450.0,
    )


@dataclass(frozen=True)
class KernelDescriptor:
    """Resource usage and memory behaviour of one GPU kernel."""

    name: str
    threads_per_block: int
    registers_per_thread: int
    shared_mem_per_block_bytes: int
    #: Outstanding memory requests one warp sustains (its per-warp MLP).
    mlp_per_warp: float
    #: Fraction of accesses that coalesce into one line per warp.
    coalescing: float = 1.0

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0 or self.registers_per_thread < 0:
            raise ConfigurationError("kernel resources must be sensible")
        if self.mlp_per_warp <= 0:
            raise ConfigurationError("mlp_per_warp must be positive")
        if not 0.0 < self.coalescing <= 1.0:
            raise ConfigurationError("coalescing must be in (0, 1]")


@dataclass(frozen=True)
class OccupancyReport:
    """Active warps per SM and what limits them."""

    active_warps: int
    limiter: str
    warp_limit: int
    register_limit: int
    shared_mem_limit: int
    block_limit: int


def occupancy(gpu: GpuSpec, kernel: KernelDescriptor) -> OccupancyReport:
    """CUDA-style occupancy: warps/SM bounded by each resource."""
    warps_per_block = max(
        1, (kernel.threads_per_block + gpu.warp_size - 1) // gpu.warp_size
    )

    warp_limit = gpu.max_warps_per_sm

    regs_per_block = kernel.registers_per_thread * kernel.threads_per_block
    if regs_per_block == 0:
        register_limit = warp_limit  # registers impose no constraint
    else:
        register_limit = (gpu.registers_per_sm // regs_per_block) * warps_per_block

    if kernel.shared_mem_per_block_bytes == 0:
        shared_mem_limit = warp_limit  # shared memory imposes no constraint
    else:
        shared_blocks = (
            gpu.shared_mem_per_sm_bytes // kernel.shared_mem_per_block_bytes
        )
        shared_mem_limit = shared_blocks * warps_per_block

    block_limit = gpu.max_blocks_per_sm * warps_per_block

    limits = {
        "warp_slots": warp_limit,
        "registers": register_limit,
        "shared_memory": shared_mem_limit,
        "block_slots": block_limit,
    }
    limiter, active = min(limits.items(), key=lambda item: item[1])
    active = max(0, min(active, warp_limit))
    return OccupancyReport(
        active_warps=active,
        limiter=limiter,
        warp_limit=warp_limit,
        register_limit=register_limit,
        shared_mem_limit=shared_mem_limit,
        block_limit=block_limit,
    )


def mshr_demand(gpu: GpuSpec, kernel: KernelDescriptor) -> float:
    """Per-SM MSHR demand: active warps × per-warp MLP ÷ coalescing gain."""
    report = occupancy(gpu, kernel)
    # Poor coalescing multiplies the lines one warp's access touches.
    lines_per_request = 1.0 / kernel.coalescing
    return report.active_warps * kernel.mlp_per_warp * lines_per_request


def sustainable_bandwidth_bytes(gpu: GpuSpec, n_per_sm: float) -> float:
    """Little's law at GPU scale: BW = SMs × n × line / latency."""
    if n_per_sm < 0:
        raise ConfigurationError("n_per_sm must be >= 0")
    return gpu.sms * n_per_sm * gpu.line_bytes / ns(gpu.loaded_latency_ns)
