"""Experiments E-T1..E-T3: the paper's descriptive tables.

These tables are structural rather than measured: Table I is derived
from the counter facade's vendor event lists, Tables II and III from
the workload and machine models.  The experiment functions verify that
the derived structures match the paper's rows exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..counters.vendor import table1_matrix
from ..errors import ExperimentError
from ..machines.registry import paper_machines
from ..workloads import ALL_WORKLOADS
from .paperdata import (
    TABLE1_VISIBILITY,
    TABLE2_APPLICATIONS,
    TABLE3_PLATFORMS,
    PaperTable1Row,
)


@dataclass(frozen=True)
class StructuralCheck:
    """One verified row of a descriptive table."""

    label: str
    expected: str
    actual: str

    @property
    def ok(self) -> bool:
        """Does the derived value match the paper's cell?"""
        return self.expected == self.actual


def check_table1() -> List[StructuralCheck]:
    """Derived counter-visibility matrix vs paper Table I."""
    derived = table1_matrix()
    checks: List[StructuralCheck] = []
    for row in TABLE1_VISIBILITY:
        got = derived.get(row.vendor)
        if got is None:
            raise ExperimentError(f"vendor {row.vendor!r} missing from matrix")
        checks.extend(
            [
                StructuralCheck(
                    f"{row.vendor}/stall_breakdown",
                    row.stall_breakdown,
                    got.stall_breakdown.value,
                ),
                StructuralCheck(
                    f"{row.vendor}/l1_mshrq_full",
                    row.l1_mshrq_full,
                    got.l1_mshrq_full_stalls.value,
                ),
                StructuralCheck(
                    f"{row.vendor}/l2_mshrq_full",
                    row.l2_mshrq_full,
                    got.l2_mshrq_full_stalls.value,
                ),
                StructuralCheck(
                    f"{row.vendor}/memory_latency",
                    row.memory_latency,
                    got.memory_latency.value,
                ),
            ]
        )
    return checks


def check_table2() -> List[StructuralCheck]:
    """Workload inventory vs paper Table II."""
    by_name = {w.name: w for w in ALL_WORKLOADS}
    checks: List[StructuralCheck] = []
    for app in TABLE2_APPLICATIONS:
        workload = by_name.get(app.name)
        if workload is None:
            raise ExperimentError(f"workload {app.name!r} not implemented")
        checks.append(
            StructuralCheck(f"{app.name}/routine", app.routine, workload.routine)
        )
        checks.append(
            StructuralCheck(
                f"{app.name}/problem_size", app.problem_size, workload.problem_size
            )
        )
    return checks


def check_table3() -> List[StructuralCheck]:
    """Machine models vs paper Table III."""
    by_name = {m.name: m for m in paper_machines()}
    checks: List[StructuralCheck] = []
    for plat in TABLE3_PLATFORMS:
        machine = by_name.get(plat.name)
        if machine is None:
            raise ExperimentError(f"machine {plat.name!r} not implemented")
        checks.extend(
            [
                StructuralCheck(
                    f"{plat.name}/cores", str(plat.cores), str(machine.cores)
                ),
                StructuralCheck(
                    f"{plat.name}/freq",
                    f"{plat.freq_ghz:.1f}",
                    f"{machine.frequency_ghz:.1f}",
                ),
                StructuralCheck(
                    f"{plat.name}/peak_bw",
                    f"{plat.peak_bw_gbs:.0f}",
                    f"{machine.peak_bw_gbs:.0f}",
                ),
                StructuralCheck(
                    f"{plat.name}/l1_mshrs",
                    str(plat.l1_mshrs),
                    str(machine.l1.mshrs),
                ),
                StructuralCheck(
                    f"{plat.name}/l2_mshrs",
                    str(plat.l2_mshrs),
                    str(machine.l2.mshrs),
                ),
            ]
        )
    return checks


def all_structural_checks() -> Dict[str, List[StructuralCheck]]:
    """Tables I-III in one call."""
    return {
        "table1": check_table1(),
        "table2": check_table2(),
        "table3": check_table3(),
    }
