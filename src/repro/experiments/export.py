"""Machine-readable export of the reproduction results.

Serializes the table/figure reproductions into plain dicts (and JSON),
so downstream tooling — plotting scripts, CI dashboards, regression
trackers — can consume the paper-vs-measured data without scraping the
text reports.  ``repro reproduce --json out.json`` uses this.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .figure1 import reproduce_figure1
from .figure2 import reproduce_figure2
from .harness import TableReproduction, reproduce_all_tables


def table_to_dict(table: TableReproduction) -> Dict[str, Any]:
    """One case-study table as a plain dict."""
    rows = []
    for comparison in table.comparisons:
        result = comparison.result
        rows.append(
            {
                "machine": result.machine,
                "source": result.source_label,
                "step": result.step,
                "measured": {
                    "bw_gbs": round(result.bw_gbs, 2),
                    "latency_ns": round(result.latency_ns, 1),
                    "n_avg": round(result.n_avg, 3),
                    "speedup": (
                        round(result.speedup, 3) if result.speedup else None
                    ),
                },
                "paper": {
                    "bw_gbs": comparison.paper.bw_gbs,
                    "latency_ns": comparison.paper.lat_ns,
                    "n_avg": comparison.paper.n_avg,
                    "speedup": comparison.paper.speedup,
                },
                "checks": {
                    "n_avg_ok": comparison.n_avg_ok,
                    "bw_ok": comparison.bw_ok,
                    "speedup_ok": comparison.speedup_ok,
                    "recipe_ok": comparison.recipe_ok,
                    "known_exception": comparison.known_exception,
                    "all_ok": comparison.all_ok,
                },
            }
        )
    return {
        "workload": table.workload,
        "table": table.table_number,
        "rows_ok": table.rows_ok,
        "rows_total": len(table.comparisons),
        "rows": rows,
    }


def figures_to_dict() -> Dict[str, Any]:
    """Figures 1 and 2 as plain dicts."""
    fig1 = reproduce_figure1()
    fig2 = reproduce_figure2()
    return {
        "figure1": {
            "total_rows": fig1.total,
            "agreeing": fig1.agreeing,
            "known_exceptions": fig1.known_exceptions,
            "unexplained_disagreements": fig1.unexplained_disagreements,
            "accuracy": fig1.accuracy,
        },
        "figure2": {
            "peak_bw_gbs": fig2.extended.roofline.peak_bw_gbs,
            "peak_gflops": fig2.extended.roofline.peak_gflops,
            "l1_ceiling_bw_gbs": round(fig2.l1_ceiling_bw_gbs, 1),
            "base_pinned_by_ceiling": fig2.base_pinned_by_ceiling,
            "optimized_breaks_ceiling": fig2.optimized_breaks_ceiling,
            "series": [
                {
                    "intensity": round(x, 4),
                    "classic_gflops": round(classic, 2),
                    "extended_gflops": round(extended, 2),
                }
                for x, classic, extended in fig2.series
            ],
        },
    }


def full_reproduction_dict() -> Dict[str, Any]:
    """Everything: all six tables plus both figures."""
    return {
        "tables": {
            name: table_to_dict(table)
            for name, table in reproduce_all_tables().items()
        },
        "figures": figures_to_dict(),
    }


def export_json(path: Optional[str] = None, *, indent: int = 2) -> str:
    """Serialize the full reproduction; optionally write it to ``path``."""
    text = json.dumps(full_reproduction_dict(), indent=indent)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
