"""SMT cache-residency contention — the mechanism behind the paper's
recipe exceptions, demonstrated on the simulator.

Three case-study rows defeat the paper's recipe (MiniGhost/KNL 2-ht,
SNAP 2-ht/4-ht), all with the same explanation: "contention between
hyperthreads for L2/LLC cache occupancy" inflates misses and eats the
MLP gain.  The MLP metric cannot see this coming — it is a
cache-capacity effect, not an MSHR effect — which is why the paper
files it under "user intuition... is still useful".

This experiment reproduces the mechanism directly: run the same total
work as

* **spread**: two threads on two cores (private caches each), versus
* **smt**: two threads sharing one core's caches,

and compare per-access memory traffic.  Cache-reliant workloads (CoMD's
hot footprint, SNAP's temporaries) suffer real traffic inflation under
SMT; ISx's random stream has no residency to lose and shows none —
exactly the split between the paper's exception rows and its clean SMT
wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..machines.registry import get_machine
from ..machines.spec import MachineSpec
from ..sim.hierarchy import SimConfig, run_trace
from ..units import KILO
from ..workloads import get_workload
from ..workloads.base import TraceSpec, Workload


@dataclass(frozen=True)
class ContentionResult:
    """Cache-pressure comparison for one workload: spread vs SMT placement."""

    workload: str
    machine: str
    spread_l1_miss_rate: float
    smt_l1_miss_rate: float
    #: Demand fetches that had to go to memory, per 1000 accesses.
    spread_dram_demand_per_kaccess: float
    smt_dram_demand_per_kaccess: float

    @property
    def l1_miss_inflation(self) -> float:
        """SMT's L1 miss-rate growth (cache-residency contention)."""
        if self.spread_l1_miss_rate <= 0:
            return 1.0
        return self.smt_l1_miss_rate / self.spread_l1_miss_rate

    @property
    def dram_demand_inflation(self) -> float:
        """SMT's growth in demand fetches reaching memory."""
        if self.spread_dram_demand_per_kaccess <= 0:
            return 1.0
        return (
            self.smt_dram_demand_per_kaccess / self.spread_dram_demand_per_kaccess
        )

    @property
    def contended(self) -> bool:
        """Does SMT placement cost this workload real cache residency?"""
        return self.l1_miss_inflation > 1.2 or self.dram_demand_inflation > 1.2

    def render(self) -> str:
        """One-line spread-vs-SMT comparison."""
        return (
            f"{self.workload:<11s} on {self.machine}: "
            f"L1 miss {self.spread_l1_miss_rate:5.1%} -> "
            f"{self.smt_l1_miss_rate:5.1%} ({self.l1_miss_inflation:4.2f}x), "
            f"DRAM demand/kacc {self.spread_dram_demand_per_kaccess:6.1f} -> "
            f"{self.smt_dram_demand_per_kaccess:6.1f} "
            f"({self.dram_demand_inflation:4.2f}x)"
            + ("  <- contended" if self.contended else "")
        )


def measure_contention(
    workload: Workload,
    machine: MachineSpec,
    *,
    steps: Sequence[str] = (),
    accesses_per_thread: int = 2000,
    seed: int = 5,
) -> ContentionResult:
    """Run the spread-vs-SMT comparison for one workload version."""
    spec = TraceSpec(threads=2, accesses_per_thread=accesses_per_thread, seed=seed)
    trace = workload.generate_trace(machine, steps=steps, spec=spec)

    spread = run_trace(
        trace,
        SimConfig(
            machine=machine, sim_cores=2, threads_per_core=1, window_per_core=16
        ),
    )
    smt = run_trace(
        trace,
        SimConfig(
            machine=machine, sim_cores=1, threads_per_core=2, window_per_core=16
        ),
    )
    accesses = trace.total_accesses
    return ContentionResult(
        workload=workload.name,
        machine=machine.name,
        spread_l1_miss_rate=spread.l1.miss_rate,
        smt_l1_miss_rate=smt.l1.miss_rate,
        spread_dram_demand_per_kaccess=KILO * spread.l2.misses / accesses,
        smt_dram_demand_per_kaccess=KILO * smt.l2.misses / accesses,
    )


def contention_survey(
    *, accesses_per_thread: int = 2500
) -> List[ContentionResult]:
    """The paper's split: cache-reliant workloads contend, random do not.

    The three probes mirror the exception rows and a clean SMT win:

    * CoMD on SKL — two hot footprints overflow the shared L1
      (paper IV-D's SMT traffic inflation is visible in its own table);
    * tiled MiniGhost on KNL — reuse segments thrash the shared L2
      (the paper's "contention between hyperthreads for L2/LLC cache
      occupancy");
    * ISx on SKL — random traffic with no residency to lose: the
      control case where SMT costs nothing (and the recipe's clean SMT
      recommendations hold).
    """
    return [
        measure_contention(
            get_workload("comd"),
            get_machine("skl"),
            accesses_per_thread=accesses_per_thread,
        ),
        measure_contention(
            get_workload("minighost"),
            get_machine("knl"),
            steps=("loop_tiling",),
            accesses_per_thread=accesses_per_thread,
        ),
        measure_contention(
            get_workload("isx"),
            get_machine("skl"),
            accesses_per_thread=accesses_per_thread,
        ),
    ]
