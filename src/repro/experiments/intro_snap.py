"""Experiment E-I1: the intro/related-work TMA critique, reproduced.

Two demonstrations from paper Sections I–II, run on the simulator:

* **SNAP on SKL**: whole-program TMA splits Memory Bound into a murky
  bandwidth/latency mix (paper: 27 % / 23 %) and its derived average
  memory latency is tiny (paper: 9 cycles) because interleaved compute
  and cache reuse hide the true loaded latency — "amid this unclear
  guidance", per-routine software prefetching still helps.  We run the
  SNAP trace, compute TMA, and contrast it with the MLP analysis, which
  says directly: occupancy 3.8/16, headroom, prefetch/SMT applicable.

* **HPCG's misleading latency counter**: on a streaming routine the
  PEBS-style latency metric reports near-hit latencies (paper: 32
  cycles) while the true loaded latency is ~378 cycles, because demand
  loads land on prefetched lines.  The counter-facade histogram
  reproduces both this under-report and the ISx over-report (75 % of
  loads binned >512 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.analyzer import AnalysisReport, RoutineAnalyzer
from ..counters.session import CounterSession
from ..machines.registry import get_machine
from ..sim.hierarchy import SimConfig, run_trace
from ..sim.stats import SimStats
from ..tma.analysis import TmaAnalysis, TmaReport
from ..tma.categories import TmaCategory
from ..workloads import get_workload
from ..workloads.base import TraceSpec


@dataclass(frozen=True)
class IntroSnapReproduction:
    """TMA-vs-MLP contrast on SNAP (SKL)."""

    tma: TmaReport
    mlp_report: AnalysisReport
    stats: SimStats

    @property
    def tma_bandwidth_bound(self) -> float:
        """TMA's bandwidth-bound fraction."""
        return self.tma.breakdown[TmaCategory.MEMORY_BANDWIDTH]

    @property
    def tma_latency_bound(self) -> float:
        """TMA's latency-bound fraction."""
        return self.tma.breakdown[TmaCategory.MEMORY_LATENCY]

    @property
    def tma_guidance_is_unclear(self) -> bool:
        """Neither bucket dominates — the paper's 27 %/23 % situation."""
        bw, lat = self.tma_bandwidth_bound, self.tma_latency_bound
        total = bw + lat
        if total <= 0:
            return False
        return 0.25 <= bw / total <= 0.75

    @property
    def tma_latency_misleading(self) -> bool:
        """Did TMA's derived latency miss the true loaded latency?"""
        return self.tma.latency_underreported

    @property
    def mlp_guidance_is_actionable(self) -> bool:
        """The MLP report names concrete optimizations with headroom."""
        return not self.mlp_report.decision.stop

    def render(self) -> str:
        """Side-by-side TMA-vs-MLP report."""
        return "\n".join(
            [
                "Intro reproduction - TMA vs MLP on SNAP (SKL)",
                "",
                self.tma.render(),
                "",
                f"TMA guidance unclear (neither sub-bucket dominates): "
                f"{self.tma_guidance_is_unclear}",
                f"TMA derived latency misleading: {self.tma_latency_misleading}",
                "",
                self.mlp_report.render(),
            ]
        )


def reproduce_intro_snap(
    *, sim_cores: int = 2, accesses_per_thread: int = 3000
) -> IntroSnapReproduction:
    """Run SNAP through the simulator; compute TMA and MLP analyses."""
    machine = get_machine("skl")
    workload = get_workload("snap")
    trace = workload.generate_trace(
        machine,
        spec=TraceSpec(threads=sim_cores, accesses_per_thread=accesses_per_thread),
    )
    stats = run_trace(
        trace, SimConfig(machine=machine, sim_cores=sim_cores, window_per_core=16)
    )
    tma = TmaAnalysis(machine).analyze(stats)
    mlp_report = RoutineAnalyzer(machine).analyze_run(stats)
    return IntroSnapReproduction(tma=tma, mlp_report=mlp_report, stats=stats)


@dataclass(frozen=True)
class LatencyCounterDemo:
    """The misleading load-latency counter, on streaming vs random runs."""

    streaming_histogram: Dict[int, float]
    random_histogram: Dict[int, float]
    streaming_true_latency_cycles: float
    random_true_latency_cycles: float

    @property
    def streaming_underreports(self) -> bool:
        """Most streaming loads report below even the 64-cycle bin."""
        return self.streaming_histogram[64] < 0.3

    @property
    def random_overreports(self) -> bool:
        """A large share of random loads lands above the top (512) bin."""
        return self.random_histogram[512] > 0.5

    def render(self) -> str:
        """Text summary of the two misleading-counter cases."""
        lines = ["Load-latency counter demo (paper Section II)"]
        lines.append(
            f"  streaming (hpcg-like): true loaded latency "
            f"{self.streaming_true_latency_cycles:.0f} cyc; fraction of loads "
            f"binned >64 cyc: {self.streaming_histogram[64]:.0%} (under-report)"
        )
        lines.append(
            f"  random (ISx-like): true loaded latency "
            f"{self.random_true_latency_cycles:.0f} cyc; fraction binned "
            f">512 cyc: {self.random_histogram[512]:.0%} (over-report)"
        )
        return "\n".join(lines)


def reproduce_latency_counter_demo(
    *, sim_cores: int = 2, accesses_per_thread: int = 3000
) -> LatencyCounterDemo:
    """Run HPCG-like and ISx-like traces; synthesize the PEBS histogram."""
    machine = get_machine("skl")
    cfg = SimConfig(machine=machine, sim_cores=sim_cores, window_per_core=16)
    spec = TraceSpec(threads=sim_cores, accesses_per_thread=accesses_per_thread)

    hpcg_stats = run_trace(
        get_workload("hpcg").generate_trace(machine, spec=spec), cfg
    )
    isx_stats = run_trace(
        get_workload("isx").generate_trace(machine, spec=spec),
        SimConfig(machine=machine, sim_cores=sim_cores, window_per_core=16),
    )
    freq = machine.frequency_ghz
    return LatencyCounterDemo(
        streaming_histogram=CounterSession(machine, hpcg_stats).load_latency_histogram(),
        random_histogram=CounterSession(machine, isx_stats).load_latency_histogram(),
        streaming_true_latency_cycles=hpcg_stats.memory.avg_latency_ns * freq,
        random_true_latency_cycles=isx_stats.memory.avg_latency_ns * freq,
    )
