"""Experiment E-F2: paper Figure 2 — ISx on KNL with the L1-MSHR ceiling.

Reproduces the plot's ingredients and its argument:

* the classic KNL roofline (400 GB/s diagonal, 2867 GFLOP/s roof),
* the additional L1-MSHR ceiling: 12 MSHRs/core at the observed loaded
  latency give ~256 GB/s — the paper's dotted line,
* point **O** (base ISx, n=10.23) sits essentially *on* that ceiling
  even though the classic roofline shows plenty of headroom (the
  misleading signal the paper calls out),
* point **O1** (+vect, 2-ht, L2 software prefetch, n=20) breaks through
  the L1 ceiling toward the true bandwidth roof.

ISx's arithmetic intensity is tiny (a couple of integer ops per 64-byte
line); the exact x position does not affect the argument, so a nominal
intensity is used and reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..machines.registry import get_machine
from ..perfmodel.casestudy import CaseStudyRunner
from ..roofline.model import Roofline, RooflinePoint, log_intensity_grid
from ..roofline.mshr_ceiling import ExtendedRoofline, mshr_ceiling
from ..workloads import get_workload
from .paperdata import FIGURE2

#: Nominal FLOP/byte for ISx's counting loop (integer ops counted as ops).
ISX_INTENSITY = 0.03


@dataclass(frozen=True)
class Figure2Reproduction:
    """Everything needed to redraw paper Figure 2."""

    extended: ExtendedRoofline
    point_base: RooflinePoint
    point_optimized: RooflinePoint
    l1_ceiling_bw_gbs: float
    series: List[Tuple[float, float, float]]

    @property
    def base_pinned_by_ceiling(self) -> bool:
        """Is O on the L1-MSHR ceiling while the classic roof shows headroom?"""
        return self.extended.explains_stall(self.point_base)

    @property
    def optimized_breaks_ceiling(self) -> bool:
        """Does O1 exceed what the L1 ceiling alone would allow?"""
        l1_bound = None
        for ceiling in self.extended.ceilings:
            if ceiling.level == 1:
                l1_bound = ceiling.attainable_gflops(
                    self.point_optimized.intensity_flops_per_byte
                )
        assert l1_bound is not None
        return self.point_optimized.performance_gflops > 1.1 * l1_bound

    def render(self) -> str:
        """Text summary of the reproduced Figure 2."""
        lines = [
            "Figure 2 reproduction - ISx on KNL (roofline + L1-MSHR ceiling)",
            f"  peak bandwidth roof:   {self.extended.roofline.peak_bw_gbs:.0f} GB/s",
            f"  peak compute roof:     {self.extended.roofline.peak_gflops:.0f} GFLOP/s",
            f"  L1-MSHR ceiling:       {self.l1_ceiling_bw_gbs:.0f} GB/s "
            f"(paper: {FIGURE2.l1_ceiling_bw_gbs:.0f})",
            f"  O  (base, n=10.23):    {self.point_base.performance_gflops:.2f} GFLOP/s"
            f" @ AI {self.point_base.intensity_flops_per_byte}",
            f"  O1 (optimized, n=20):  {self.point_optimized.performance_gflops:.2f}"
            f" GFLOP/s",
            f"  O pinned by L1 ceiling while classic roofline shows headroom: "
            f"{self.base_pinned_by_ceiling}",
            f"  O1 breaks the L1 ceiling: {self.optimized_breaks_ceiling}",
        ]
        return "\n".join(lines)


def reproduce_figure2() -> Figure2Reproduction:
    """Build the extended roofline and place the two ISx points."""
    machine = get_machine("knl")
    workload = get_workload("isx")
    runner = CaseStudyRunner(workload, machine)

    base = runner.predict(())
    optimized = runner.predict(("vectorize", "smt2", "l2_prefetch"))

    # The ceiling is evaluated at the loaded latency the base point sees
    # (paper uses ~the observed 180-190ns; 12 x 64B x 64 / 192ns = 256 GB/s).
    ceiling_l1 = mshr_ceiling(machine, 1, base.latency_ns)
    extended = ExtendedRoofline(
        roofline=Roofline.for_machine(machine),
        ceilings=(ceiling_l1,),
    )

    def place(prediction) -> RooflinePoint:
        gflops = prediction.bandwidth_gbs * ISX_INTENSITY
        return RooflinePoint(
            label="ISx",
            intensity_flops_per_byte=ISX_INTENSITY,
            performance_gflops=gflops,
        )

    return Figure2Reproduction(
        extended=extended,
        point_base=place(base),
        point_optimized=place(optimized),
        l1_ceiling_bw_gbs=ceiling_l1.bandwidth_gbs,
        series=extended.series(log_intensity_grid(0.01, 100.0, 25)),
    )
