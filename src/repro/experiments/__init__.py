"""Experiment harnesses: one per paper table/figure (see DESIGN.md §4)."""

from .ablation import (
    DEFAULT_THRESHOLDS,
    PerturbationResult,
    PrefetchDistancePoint,
    latency_curve_perturbation,
    prefetch_distance_sweep,
    scaled_latency_curves,
    threshold_sweep,
)
from .analytic_crossval import (
    AnalyticCrossValRow,
    crossval_analytic,
    render_analytic_crossval,
    table_ok,
)
from .cross_validation import (
    CrossValidationRow,
    cross_validate,
    render_cross_validation,
)
from .figure1 import DecisionTrace, Figure1Reproduction, reproduce_figure1
from .figure2 import Figure2Reproduction, reproduce_figure2
from .harness import (
    BW_TOLERANCE,
    KNOWN_EXCEPTIONS,
    N_AVG_TOLERANCE,
    RecipeScore,
    RowComparison,
    SPEEDUP_TOLERANCE,
    TableReproduction,
    reproduce_all_tables,
    reproduce_table,
    score_recipe,
)
from .intro_snap import (
    IntroSnapReproduction,
    LatencyCounterDemo,
    reproduce_intro_snap,
    reproduce_latency_counter_demo,
)
from .paperdata import (
    CASE_STUDY_TABLES,
    FIGURE2,
    INTRO_SNAP,
    TABLE_NUMBER,
    PaperRow,
    base_row,
    rows_for,
)
from .smt_contention import (
    ContentionResult,
    contention_survey,
    measure_contention,
)
from .stall_validation import StallMigration, reproduce_stall_migration
from .tables import (
    StructuralCheck,
    all_structural_checks,
    check_table1,
    check_table2,
    check_table3,
)

__all__ = [
    "AnalyticCrossValRow",
    "BW_TOLERANCE",
    "DEFAULT_THRESHOLDS",
    "crossval_analytic",
    "render_analytic_crossval",
    "table_ok",
    "PerturbationResult",
    "PrefetchDistancePoint",
    "ContentionResult",
    "contention_survey",
    "measure_contention",
    "CrossValidationRow",
    "cross_validate",
    "render_cross_validation",
    "latency_curve_perturbation",
    "prefetch_distance_sweep",
    "scaled_latency_curves",
    "threshold_sweep",
    "CASE_STUDY_TABLES",
    "DecisionTrace",
    "FIGURE2",
    "Figure1Reproduction",
    "Figure2Reproduction",
    "INTRO_SNAP",
    "IntroSnapReproduction",
    "KNOWN_EXCEPTIONS",
    "LatencyCounterDemo",
    "N_AVG_TOLERANCE",
    "PaperRow",
    "RecipeScore",
    "RowComparison",
    "SPEEDUP_TOLERANCE",
    "StallMigration",
    "StructuralCheck",
    "TABLE_NUMBER",
    "TableReproduction",
    "all_structural_checks",
    "base_row",
    "check_table1",
    "check_table2",
    "check_table3",
    "reproduce_all_tables",
    "reproduce_figure1",
    "reproduce_figure2",
    "reproduce_intro_snap",
    "reproduce_latency_counter_demo",
    "reproduce_stall_migration",
    "reproduce_table",
    "rows_for",
    "score_recipe",
]
