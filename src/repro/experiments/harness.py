"""Experiment harness: run reproductions and compare to the paper.

For each case-study table the harness produces a
:class:`TableReproduction`: the model-generated rows, row-by-row
comparisons against :mod:`repro.experiments.paperdata`, and the *shape
checks* DESIGN.md §4 commits to:

* base-row and per-row ``n_avg`` within tolerance of the paper's,
* observed bandwidth within tolerance,
* speedups within a band (who wins and by roughly what factor),
* recipe benefit/no-benefit agreement for every row, modulo the three
  **paper-documented caveat rows** (SMT cache-residency contention on
  MiniGhost-KNL and SNAP) listed in :data:`KNOWN_EXCEPTIONS` with the
  paper's own explanations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.report import CaseStudyRow, ComparisonRow, render_case_study_table
from ..errors import ExperimentError
from ..machines.registry import get_machine, paper_machines
from ..perfmodel.casestudy import SPEEDUP_HELPED, CaseStudyResult, run_case_study
from ..workloads import get_workload
from .paperdata import CASE_STUDY_TABLES, TABLE_NUMBER, PaperRow

#: Relative tolerance on n_avg and bandwidth versus the paper.
N_AVG_TOLERANCE = 0.20
BW_TOLERANCE = 0.15
#: Speedup band: |model - paper| must be within this (absolute).
SPEEDUP_TOLERANCE = 0.12

#: Rows where the paper itself reports that its recipe's expectation was
#: defeated by effects outside the MLP model, quoted from the text.
KNOWN_EXCEPTIONS: Mapping[Tuple[str, str, str, str], str] = {
    ("minighost", "knl", "+ tiling", "smt2"): (
        "paper IV-E: 'we observe a noticeable increase in the memory "
        "accesses due to contention between hyperthreads for L2/LLC cache "
        "occupancy'"
    ),
    ("minighost", "knl", "+ tiling, 2-ht", "smt4"): (
        "paper IV-E: 'This is again the effect of LLC cache contention or "
        "thrashing.'"
    ),
    ("snap", "skl", "+ pref", "smt2"): (
        "paper IV-F: 'this smaller gain from hyperthreading can be "
        "attributed to considerably more cache miss rates due to "
        "hyperthreading'"
    ),
    ("snap", "knl", "+ pref, 2-ht", "smt4"): (
        "paper IV-F: 'Again, the gain is reduced by increased cache misses.'"
    ),
}


@dataclass(frozen=True)
class RowComparison:
    """Model-vs-paper for one table row."""

    result: CaseStudyResult
    paper: PaperRow
    n_avg_ok: bool
    bw_ok: bool
    speedup_ok: Optional[bool]
    recipe_ok: Optional[bool]
    known_exception: Optional[str]

    @property
    def label(self) -> str:
        """'machine/source' row identifier."""
        return f"{self.result.machine}/{self.result.source_label}"

    @property
    def all_ok(self) -> bool:
        """Every applicable tolerance/agreement check passed."""
        checks = [self.n_avg_ok, self.bw_ok]
        if self.speedup_ok is not None:
            checks.append(self.speedup_ok)
        if self.recipe_ok is not None and self.known_exception is None:
            checks.append(self.recipe_ok)
        return all(checks)


@dataclass(frozen=True)
class TableReproduction:
    """One full table's reproduction and verdicts."""

    workload: str
    table_number: str
    comparisons: Tuple[RowComparison, ...]

    @property
    def rows_ok(self) -> int:
        """Rows with every check within tolerance."""
        return sum(1 for c in self.comparisons if c.all_ok)

    @property
    def all_ok(self) -> bool:
        """True when every row is within tolerance."""
        return all(c.all_ok for c in self.comparisons)

    def failures(self) -> List[RowComparison]:
        """Rows that fell outside the tolerance bands."""
        return [c for c in self.comparisons if not c.all_ok]

    def render(self) -> str:
        """Paper-style table rendering of the reproduced rows."""
        rows = [
            c.result.to_table_row(get_machine(c.result.machine).peak_bw_gbs)
            for c in self.comparisons
        ]
        title = (
            f"Table {self.table_number} reproduction - {self.workload} "
            f"({self.rows_ok}/{len(self.comparisons)} rows within tolerance)"
        )
        return render_case_study_table(title, rows)

    def comparison_rows(self) -> List[ComparisonRow]:
        """Paper-vs-measured rows for EXPERIMENTS.md-style tables."""
        out = []
        for c in self.comparisons:
            out.append(
                ComparisonRow(
                    label=c.label,
                    paper_n_avg=c.paper.n_avg,
                    measured_n_avg=c.result.n_avg,
                    paper_speedup=c.paper.speedup,
                    measured_speedup=c.result.speedup,
                    agrees=c.all_ok,
                )
            )
        return out


def _match_rows(
    results: Sequence[CaseStudyResult], paper_rows: Sequence[PaperRow]
) -> List[Tuple[CaseStudyResult, PaperRow]]:
    if len(results) != len(paper_rows):
        raise ExperimentError(
            f"row count mismatch: model produced {len(results)}, paper has "
            f"{len(paper_rows)}"
        )
    pairs = []
    for res, pap in zip(results, paper_rows):
        if res.machine != pap.proc:
            raise ExperimentError(
                f"row order mismatch: model {res.machine}, paper {pap.proc}"
            )
        pairs.append((res, pap))
    return pairs


def reproduce_table(workload_name: str) -> TableReproduction:
    """Run one case-study table end to end and compare to the paper."""
    workload = get_workload(workload_name)
    paper_rows = CASE_STUDY_TABLES[workload_name]
    results = run_case_study(workload, paper_machines())

    comparisons = []
    for res, pap in _match_rows(results, paper_rows):
        n_ok = abs(res.n_avg - pap.n_avg) <= N_AVG_TOLERANCE * max(pap.n_avg, 0.1)
        bw_ok = abs(res.bw_gbs - pap.bw_gbs) <= BW_TOLERANCE * pap.bw_gbs
        if res.speedup is None or pap.speedup is None:
            sp_ok: Optional[bool] = None
        else:
            sp_ok = abs(res.speedup - pap.speedup) <= SPEEDUP_TOLERANCE
        exception = KNOWN_EXCEPTIONS.get(
            (workload_name, res.machine, res.source_label, res.step or "")
        )
        comparisons.append(
            RowComparison(
                result=res,
                paper=pap,
                n_avg_ok=n_ok,
                bw_ok=bw_ok,
                speedup_ok=sp_ok,
                recipe_ok=res.recipe_agrees,
                known_exception=exception,
            )
        )
    return TableReproduction(
        workload=workload_name,
        table_number=TABLE_NUMBER[workload_name],
        comparisons=tuple(comparisons),
    )


@dataclass(frozen=True)
class TimedTableReproduction:
    """A reproduced table plus its execution cost (for CLI summaries)."""

    table: TableReproduction
    wall_s: float
    #: Sim-cache traffic attributable to this table (a
    #: :class:`repro.perf.cache.CacheCounters` delta; all-zero means the
    #: table ran zero simulations).
    cache_hits: int
    cache_misses: int

    def summary(self) -> str:
        """The ``repro reproduce`` one-liner for this table."""
        if self.cache_hits == 0 and self.cache_misses == 0:
            sims = "0 simulations"
        else:
            sims = (
                f"{self.cache_hits} sim(s) from cache, "
                f"{self.cache_misses} simulated"
            )
        return (
            f"table {self.table.table_number} ({self.table.workload}): "
            f"{self.wall_s:.2f}s wall, {sims}"
        )


def reproduce_table_timed(workload_name: str) -> TimedTableReproduction:
    """Reproduce one table, recording wall-clock and sim-cache traffic.

    Picklable by name so :func:`repro.perf.parallel.fan_out` can run
    tables in worker processes while each still reports its own cost.
    """
    from ..perf.cache import get_cache

    counters = get_cache().counters
    before = counters.snapshot()
    start = time.perf_counter()
    table = reproduce_table(workload_name)
    delta = counters.diff(before)
    return TimedTableReproduction(
        table=table,
        wall_s=time.perf_counter() - start,
        cache_hits=delta.hits,
        cache_misses=delta.misses,
    )


def reproduce_all_tables(
    *, jobs: Optional[int] = None
) -> Dict[str, TableReproduction]:
    """Reproduce Tables IV-IX.

    Tables are independent; ``jobs > 1`` reproduces them in worker
    processes (:func:`repro.perf.parallel.fan_out`) without changing
    the table order or any row.
    """
    from ..perf.parallel import fan_out

    names = list(CASE_STUDY_TABLES)
    return dict(zip(names, fan_out(reproduce_table, names, jobs=jobs)))


@dataclass(frozen=True)
class RecipeScore:
    """Aggregate recipe-validation score across all tables (Figure 1)."""

    total_rows: int
    agree: int
    known_exceptions: int
    disagree: int

    @property
    def accuracy_excluding_exceptions(self) -> float:
        """Agreement rate over rows not covered by documented caveats."""
        denom = self.total_rows - self.known_exceptions
        return self.agree / denom if denom else 1.0


def score_recipe() -> RecipeScore:
    """How often the recipe's benefit prediction matched the outcome."""
    total = agree = excepted = 0
    for name, table in reproduce_all_tables().items():
        for c in table.comparisons:
            if c.result.speedup is None:
                continue
            total += 1
            if c.recipe_ok:
                agree += 1
            elif c.known_exception is not None:
                excepted += 1
    return RecipeScore(
        total_rows=total,
        agree=agree,
        known_exceptions=excepted,
        disagree=total - agree - excepted,
    )
