"""Cross-validation of the closed-form queueing model vs the simulator.

The ``--fast`` mode answers characterize/advisor queries from the
calibrated M/M/1-with-ceiling closed form
(:mod:`repro.perfmodel.queueing`) instead of the discrete-event
simulator.  This experiment quantifies what that shortcut costs: for
every paper workload × machine cell it solves the *same* operating-point
query twice —

* **reference**: the bisection solver over the machine's full
  X-Mem-style simulator-measured latency profile (the slow, honest
  route ``--fast`` replaces), and
* **analytic**: the closed-form solve over the probe-calibrated
  queueing parameters (a handful of simulator runs, then pure algebra)

— and reports the relative bandwidth / latency / occupancy errors.
Cells whose fast-path preconditions fail (SMT contention,
prefetch-dominated mixes, pathological traces) are not graded on error:
they are exactly the cells ``--fast`` hands back to the simulator, and
the table instead records the stated fallback reason.  The in-bound
verdict uses the documented ceilings
:data:`~repro.perfmodel.queueing.ANALYTIC_BW_ERROR_BOUND` /
:data:`~repro.perfmodel.queueing.ANALYTIC_LAT_ERROR_BOUND` — the same
numbers that widen the ``--fast`` error bars — so CI failing this table
means the published bars are no longer honest.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from ..machines.registry import paper_machines
from ..machines.spec import MachineSpec
from ..perf.cache import SimCache
from ..perfmodel.queueing import (
    ANALYTIC_BW_ERROR_BOUND,
    ANALYTIC_LAT_ERROR_BOUND,
    QueueingParams,
    calibrate_from_probes,
    solve_operating_point_fast,
    state_eligibility,
    trace_eligibility,
)
from ..perfmodel.solver import solve_operating_point
from ..workloads import ALL_WORKLOADS
from ..workloads.base import TraceSpec, Workload
from ..xmem.runner import XMemConfig, XMemRunner


@dataclass(frozen=True)
class AnalyticCrossValRow:
    """One workload × machine analytic-vs-simulator comparison."""

    workload: str
    machine: str
    #: Whether the fast-path preconditions held for this cell.
    eligible: bool
    #: Stated fallback reason when ineligible ("" when eligible).
    fallback_reason: str
    sim_bandwidth_gbs: float
    sim_latency_ns: float
    analytic_bandwidth_gbs: float
    analytic_latency_ns: float
    bandwidth_rel_error: float
    latency_rel_error: float
    n_avg_rel_error: float

    @property
    def within_bound(self) -> bool:
        """Eligible cells must sit inside the documented error bounds.

        Ineligible cells pass vacuously: ``--fast`` never answers them
        analytically, so no bound applies — but they must carry a
        stated reason (checked separately by :func:`table_ok`).
        """
        if not self.eligible:
            return True
        return (
            self.bandwidth_rel_error <= ANALYTIC_BW_ERROR_BOUND
            and self.latency_rel_error <= ANALYTIC_LAT_ERROR_BOUND
        )


def _validate_cell(
    workload: Workload,
    machine: MachineSpec,
    params: QueueingParams,
    runner: XMemRunner,
) -> AnalyticCrossValRow:
    """Grade one workload × machine cell (profile/params precomputed)."""
    state = workload.base_state(machine)
    decision = state_eligibility(state)
    if decision.eligible:
        trace = workload.generate_trace(
            machine,
            spec=TraceSpec(threads=runner.config.sim_cores),
        )
        decision = trace_eligibility(trace)

    profile = runner.characterize()
    reference = solve_operating_point(
        machine, state.demand_mlp, state.binding_level, curve=profile
    )
    analytic = solve_operating_point_fast(
        machine, state.demand_mlp, state.binding_level, params=params
    )
    bw_err = (
        abs(analytic.bandwidth_bytes - reference.bandwidth_bytes)
        / reference.bandwidth_bytes
    )
    lat_err = abs(analytic.latency_ns - reference.latency_ns) / reference.latency_ns
    n_err = abs(analytic.n_observed - reference.n_observed) / max(
        reference.n_observed, 1e-9
    )
    return AnalyticCrossValRow(
        workload=workload.name,
        machine=machine.name,
        eligible=decision.eligible,
        fallback_reason=decision.reason,
        sim_bandwidth_gbs=reference.bandwidth_gbs,
        sim_latency_ns=reference.latency_ns,
        analytic_bandwidth_gbs=analytic.bandwidth_gbs,
        analytic_latency_ns=analytic.latency_ns,
        bandwidth_rel_error=bw_err,
        latency_rel_error=lat_err,
        n_avg_rel_error=n_err,
    )


def crossval_analytic(
    *,
    machines: Optional[Sequence[MachineSpec]] = None,
    workloads: Optional[Sequence[Workload]] = None,
    xmem_config: Optional[XMemConfig] = None,
    cache: Optional[SimCache] = None,
) -> List[AnalyticCrossValRow]:
    """Build the full analytic-vs-simulator error table.

    Per machine, the expensive parts — the probe calibration and the
    full X-Mem profile — are computed once and shared by every
    workload row; the per-cell work is then two algebraic solves.  All
    simulator runs go through the content-addressed SimStats cache, so
    a warm re-run of the whole table is seconds, not minutes.
    """
    config = xmem_config or XMemConfig()
    rows: List[AnalyticCrossValRow] = []
    for machine in machines or paper_machines():
        params = calibrate_from_probes(
            machine,
            sim_cores=config.sim_cores,
            accesses_per_thread=config.accesses_per_thread,
            cache=cache,
        )
        runner = XMemRunner(machine, config)
        for workload in workloads or ALL_WORKLOADS:
            if machine.name not in workload.machines():
                continue
            rows.append(_validate_cell(workload, machine, params, runner))
    return rows


def table_ok(rows: Sequence[AnalyticCrossValRow]) -> bool:
    """CI verdict: every eligible cell in bound, every fallback reasoned."""
    return all(
        row.within_bound and (row.eligible or row.fallback_reason)
        for row in rows
    )


def render_analytic_crossval(rows: Sequence[AnalyticCrossValRow]) -> str:
    """Text table of analytic-vs-simulator rows."""
    lines = [
        f"{'workload':<11s} {'machine':<7s} {'sim GB/s':>9s} {'fast GB/s':>9s} "
        f"{'bw err':>7s} {'lat err':>7s}  verdict"
    ]
    for row in rows:
        if not row.eligible:
            verdict = f"fallback: {row.fallback_reason}"
        elif row.within_bound:
            verdict = "in bound"
        else:
            verdict = "OUT OF BOUND"
        lines.append(
            f"{row.workload:<11s} {row.machine:<7s} "
            f"{row.sim_bandwidth_gbs:>9.1f} {row.analytic_bandwidth_gbs:>9.1f} "
            f"{row.bandwidth_rel_error:>6.1%} {row.latency_rel_error:>6.1%}  "
            f"{verdict}"
        )
    eligible = [r for r in rows if r.eligible]
    if eligible:
        lines.append(
            f"eligible cells: {len(eligible)}/{len(rows)}; worst bw err "
            f"{max(r.bandwidth_rel_error for r in eligible):.1%} "
            f"(bound {ANALYTIC_BW_ERROR_BOUND:.0%}), worst lat err "
            f"{max(r.latency_rel_error for r in eligible):.1%} "
            f"(bound {ANALYTIC_LAT_ERROR_BOUND:.0%})"
        )
    return "\n".join(lines)


def rows_to_json(rows: Sequence[AnalyticCrossValRow]) -> str:
    """Machine-readable form of the table (the CI artifact payload)."""
    return json.dumps(
        {
            "bounds": {
                "bandwidth_rel_error": ANALYTIC_BW_ERROR_BOUND,
                "latency_rel_error": ANALYTIC_LAT_ERROR_BOUND,
            },
            "rows": [
                {**asdict(row), "within_bound": row.within_bound} for row in rows
            ],
        },
        indent=2,
    )
