"""Experiment E-V1: ISx MSHR-stall migration (paper Section IV-A).

The paper validates its ISx story "separately using Cray/HPE's
proprietary cycle-level simulator: the original code leads to
significant L1 MSHRQ full stalls, whereas the bottleneck is transferred
to L2 MSHRQ after software prefetching".  Our discrete-event simulator
plays that role: run the ISx trace with and without L2 software
prefetching and watch

* the L1 MSHR file go from pegged-full to relaxed,
* the L2 MSHR occupancy take over as the busy queue,
* bandwidth rise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.spec import MachineSpec
from ..machines.registry import get_machine
from ..sim.hierarchy import SimConfig, run_trace
from ..sim.stats import SimStats
from ..units import to_gb_per_s
from ..workloads import get_workload
from ..workloads.base import TraceSpec


@dataclass(frozen=True)
class StallMigration:
    """Before/after statistics for the ISx L2-prefetch validation."""

    machine: MachineSpec
    base: SimStats
    prefetched: SimStats

    @property
    def base_l1_full_fraction(self) -> float:
        """Fraction of time the base run's L1 MSHR file was full."""
        return self.base.mshr_full_fraction(1)

    @property
    def prefetched_l1_full_fraction(self) -> float:
        """Fraction of time the prefetched run's L1 MSHR file was full."""
        return self.prefetched.mshr_full_fraction(1)

    @property
    def base_l1_occupancy(self) -> float:
        """Base run's average per-core L1 MSHR occupancy."""
        return self.base.avg_occupancy(1)

    @property
    def base_l2_occupancy(self) -> float:
        """Base run's average per-core L2 MSHR occupancy."""
        return self.base.avg_occupancy(2)

    @property
    def prefetched_l1_occupancy(self) -> float:
        """Prefetched run's average per-core L1 MSHR occupancy."""
        return self.prefetched.avg_occupancy(1)

    @property
    def prefetched_l2_occupancy(self) -> float:
        """Prefetched run's average per-core L2 MSHR occupancy."""
        return self.prefetched.avg_occupancy(2)

    @property
    def bottleneck_migrated(self) -> bool:
        """The paper's claim: L1-full stalls collapse, L2 becomes the
        busy queue, after L2 software prefetching."""
        l1_relaxed = (
            self.prefetched_l1_full_fraction < 0.5 * self.base_l1_full_fraction
        )
        l2_took_over = self.prefetched_l2_occupancy > self.base_l2_occupancy * 1.3
        return l1_relaxed and l2_took_over

    @property
    def bandwidth_improved(self) -> bool:
        """Prefetching raised achieved bandwidth materially (>8%).

        The simulated slice saturates its scaled bandwidth cap earlier
        than the real socket, so the threshold is below the paper's
        full-machine 1.2-1.4x gains.
        """
        return (
            self.prefetched.bandwidth_bytes_per_s()
            > 1.08 * self.base.bandwidth_bytes_per_s()
        )

    def render(self) -> str:
        """Before/after stall-migration summary."""
        return "\n".join(
            [
                f"ISx stall-migration validation on {self.machine.name} "
                "(cycle-level simulator substitute)",
                f"  base:       L1 occ {self.base_l1_occupancy:5.2f}  "
                f"L1 full {self.base_l1_full_fraction:5.1%}  "
                f"L2 occ {self.base_l2_occupancy:5.2f}  "
                f"BW {to_gb_per_s(self.base.bandwidth_bytes_per_s()):6.1f} GB/s (slice)",
                f"  +l2-pref:   L1 occ {self.prefetched_l1_occupancy:5.2f}  "
                f"L1 full {self.prefetched_l1_full_fraction:5.1%}  "
                f"L2 occ {self.prefetched_l2_occupancy:5.2f}  "
                f"BW {to_gb_per_s(self.prefetched.bandwidth_bytes_per_s()):6.1f} GB/s (slice)",
                f"  bottleneck migrated L1 -> L2: {self.bottleneck_migrated}",
                f"  bandwidth improved:           {self.bandwidth_improved}",
            ]
        )


def reproduce_stall_migration(
    machine_name: str = "knl",
    *,
    sim_cores: int = 2,
    accesses_per_thread: int = 4000,
) -> StallMigration:
    """Run ISx base and +l2-pref traces on the simulator."""
    machine = get_machine(machine_name)
    workload = get_workload("isx")
    spec = TraceSpec(threads=sim_cores, accesses_per_thread=accesses_per_thread)
    # A 14-deep demand window per core: slightly more concurrency than
    # the 12-entry L1 MSHR file, so the base run exposes MSHR-full
    # stalls the way the paper's cycle-level simulator did.
    cfg = SimConfig(machine=machine, sim_cores=sim_cores, window_per_core=14)

    base_stats = run_trace(workload.generate_trace(machine, spec=spec), cfg)
    pref_stats = run_trace(
        workload.generate_trace(machine, steps=("l2_prefetch",), spec=spec),
        SimConfig(machine=machine, sim_cores=sim_cores, window_per_core=14),
    )
    return StallMigration(machine=machine, base=base_stats, prefetched=pref_stats)
