"""Cross-validation of the two workload representations (DESIGN.md §5).

Each paper workload exists twice in this library: as an **analytic
descriptor** (calibrated demand MLP, binding level, pattern) and as a
**trace generator** for the discrete-event simulator.  The table
reproductions use the former; this experiment checks the latter agrees
with it *without any shared calibration*:

* the simulator's measured prefetch fraction must classify the routine
  onto the same binding MSHR file the descriptor declares (random → L1,
  streaming → L2),
* the relative occupancy signature must match: memory-bound workloads
  load their binding file, CoMD's compute-bound signature stays near
  empty, streaming workloads show L2 > L1 occupancy.

Disagreement here would mean the case-study tables rest on an access
pattern the micro-architecture model does not actually produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.classify import classify_from_prefetch_fraction
from ..machines.registry import paper_machines
from ..machines.spec import MachineSpec
from ..perf.cache import cached_run_trace, stable_digest
from ..resilience.checkpoint import (
    SweepCheckpoint,
    dataclass_codec,
    run_checkpointed,
)
from ..sim.hierarchy import SimConfig
from ..sim.stats import SimStats
from ..workloads import ALL_WORKLOADS
from ..workloads.base import TraceSpec, Workload


@dataclass(frozen=True)
class CrossValidationRow:
    """One workload × machine simulator-vs-descriptor comparison."""

    workload: str
    machine: str
    declared_binding: int
    measured_prefetch_fraction: float
    classified_binding: int
    l1_occupancy: float
    l2_occupancy: float
    binding_agrees: bool
    #: At near-empty files the binding question never changes a decision
    #: (CoMD: n ~ 0.2 against 10+ entries), so disagreement is benign.
    binding_immaterial: bool
    signature_ok: bool

    @property
    def ok(self) -> bool:
        """Overall verdict: binding agrees (or is immaterial) and the occupancy signature matches."""
        return (self.binding_agrees or self.binding_immaterial) and self.signature_ok


def _signature_ok(
    workload: Workload, machine: MachineSpec, stats: SimStats
) -> bool:
    """Qualitative occupancy signature for this workload class."""
    l1 = stats.avg_occupancy(1)
    l2 = stats.avg_occupancy(2)
    if max(l1, l2) < 0.3 * machine.l1.mshrs:
        # Near-empty files (CoMD everywhere; SNAP on A64FX's huge
        # bandwidth): the compute-dominated signature, by definition.
        return True
    if workload.name == "comd":
        # Compute bound: both files nearly idle.
        return l1 < 0.5 * machine.l1.mshrs and l2 < 0.5 * machine.l2.mshrs
    if workload.calibration(machine.name).binding_level == 1:
        # Random-dominated: the L1 file carries the outstanding misses.
        return l1 >= 0.3 * machine.l1.mshrs
    # Streaming: prefetches put the weight on the L2 file.
    return l2 > l1


def _validate_cell(
    args: Tuple[Workload, MachineSpec, int, int]
) -> CrossValidationRow:
    """One workload × machine cell; picklable unit for fan-out workers."""
    workload, machine, accesses_per_thread, sim_cores = args
    trace = workload.generate_trace(
        machine,
        spec=TraceSpec(threads=sim_cores, accesses_per_thread=accesses_per_thread),
    )
    stats = cached_run_trace(
        trace,
        SimConfig(machine=machine, sim_cores=sim_cores, window_per_core=14),
    )
    declared = workload.calibration(machine.name).binding_level
    classification = classify_from_prefetch_fraction(
        stats.memory.prefetch_fraction
    )
    l1_occ = stats.avg_occupancy(1)
    l2_occ = stats.avg_occupancy(2)
    immaterial = max(l1_occ, l2_occ) < 0.3 * machine.l1.mshrs
    return CrossValidationRow(
        workload=workload.name,
        machine=machine.name,
        declared_binding=declared,
        measured_prefetch_fraction=stats.memory.prefetch_fraction,
        classified_binding=classification.binding_level,
        l1_occupancy=l1_occ,
        l2_occupancy=l2_occ,
        binding_agrees=classification.binding_level == declared,
        binding_immaterial=immaterial,
        signature_ok=_signature_ok(workload, machine, stats),
    )


def _cell_key(args: Tuple[Workload, MachineSpec, int, int]) -> str:
    """Stable checkpoint key for one (workload, machine) grid cell."""
    workload, machine, accesses_per_thread, sim_cores = args
    return stable_digest(
        {
            "harness": "cross_validation",
            "workload": workload.name,
            "machine": machine.name,
            "accesses_per_thread": accesses_per_thread,
            "sim_cores": sim_cores,
        }
    )


def cross_validate(
    *,
    machines: Optional[Sequence[MachineSpec]] = None,
    workloads: Optional[Sequence[Workload]] = None,
    accesses_per_thread: int = 2200,
    sim_cores: int = 2,
    jobs: Optional[int] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> List[CrossValidationRow]:
    """Run every workload's base trace on every machine and compare.

    The (workload, machine) grid cells are independent simulations;
    ``jobs > 1`` distributes them over worker processes while keeping
    the row order identical to the serial nested loop.  With a
    ``checkpoint``, completed cells are durably recorded and replayed
    on resume (byte-identical to an uninterrupted run).
    """
    cells = [
        (workload, machine, accesses_per_thread, sim_cores)
        for workload in (workloads or ALL_WORKLOADS)
        for machine in (machines or paper_machines())
        if machine.name in workload.machines()
    ]
    encode, decode = dataclass_codec(CrossValidationRow)
    return run_checkpointed(
        _validate_cell,
        cells,
        checkpoint=checkpoint,
        key_fn=_cell_key,
        encode=encode,
        decode=decode,
        jobs=jobs,
        retries=retries,
        timeout_s=timeout_s,
    )


def render_cross_validation(rows: Sequence[CrossValidationRow]) -> str:
    """Text table of cross-validation rows."""
    lines = [
        f"{'workload':<11s} {'machine':<7s} {'pf frac':>8s} "
        f"{'binding (decl/sim)':>19s} {'L1 occ':>7s} {'L2 occ':>7s}  verdict"
    ]
    for row in rows:
        if row.ok and not row.binding_agrees:
            verdict = "ok (binding immaterial)"
        else:
            verdict = "ok" if row.ok else "MISMATCH"
        lines.append(
            f"{row.workload:<11s} {row.machine:<7s} "
            f"{row.measured_prefetch_fraction:>7.0%} "
            f"{f'L{row.declared_binding}/L{row.classified_binding}':>19s} "
            f"{row.l1_occupancy:>7.2f} {row.l2_occupancy:>7.2f}  {verdict}"
        )
    return "\n".join(lines)
