"""Experiment E-F1: paper Figure 1 — the recipe as a decision procedure.

Figure 1 is a flowchart, so its reproduction is behavioural: walk every
case-study row through :class:`repro.core.recipe.Recipe` and record the
decision path (binding queue, occupancy verdict, bandwidth verdict,
recommendation, expected benefit) next to the observed outcome.  The
aggregate accuracy — how often "recipe expects benefit" matched
"optimization helped" — is the headline number of the whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..machines.registry import paper_machines
from ..perfmodel.casestudy import SPEEDUP_HELPED, run_case_study
from ..workloads import ALL_WORKLOADS
from .harness import KNOWN_EXCEPTIONS


@dataclass(frozen=True)
class DecisionTrace:
    """One row's walk through the Figure-1 flowchart."""

    workload: str
    machine: str
    source: str
    step: str
    binding_level: int
    occupancy_ratio: float
    status: str
    bandwidth_saturated: bool
    expected_benefit: str
    expects_speedup: bool
    observed_speedup: float
    helped: bool
    known_exception: Optional[str]

    @property
    def agrees(self) -> bool:
        """Did the recipe's expectation match the observed outcome?"""
        return self.expects_speedup == self.helped

    def render(self) -> str:
        """One table line for this decision trace."""
        verdict = "agree" if self.agrees else (
            "known-exception" if self.known_exception else "DISAGREE"
        )
        return (
            f"{self.workload:<10s} {self.machine:<6s} {self.source:<22s} "
            f"{self.step:<12s} L{self.binding_level} occ={self.occupancy_ratio:.0%} "
            f"{self.status:<9s} sat={str(self.bandwidth_saturated):<5s} "
            f"expect={self.expected_benefit:<11s} got {self.observed_speedup:.2f}x "
            f"-> {verdict}"
        )


@dataclass(frozen=True)
class Figure1Reproduction:
    """All decision traces plus the aggregate score."""

    traces: Tuple[DecisionTrace, ...]

    @property
    def total(self) -> int:
        """Number of optimization rows walked through the recipe."""
        return len(self.traces)

    @property
    def agreeing(self) -> int:
        """Rows where the recipe's expectation matched the outcome."""
        return sum(1 for t in self.traces if t.agrees)

    @property
    def known_exceptions(self) -> int:
        """Disagreeing rows covered by paper-documented caveats."""
        return sum(
            1 for t in self.traces if not t.agrees and t.known_exception is not None
        )

    @property
    def unexplained_disagreements(self) -> int:
        """Disagreeing rows with no documented explanation (must be 0)."""
        return self.total - self.agreeing - self.known_exceptions

    @property
    def accuracy(self) -> float:
        """Agreement rate excluding the paper-documented caveat rows."""
        denom = self.total - self.known_exceptions
        return self.agreeing / denom if denom else 1.0

    def render(self) -> str:
        """The full decision-trace report with the accuracy summary."""
        lines = ["Figure 1 reproduction - recipe decisions vs outcomes", ""]
        lines.extend(t.render() for t in self.traces)
        lines.append("")
        lines.append(
            f"accuracy: {self.agreeing}/{self.total - self.known_exceptions} "
            f"({self.accuracy:.0%}) with {self.known_exceptions} "
            "paper-documented contention exceptions"
        )
        return "\n".join(lines)


def reproduce_figure1() -> Figure1Reproduction:
    """Walk every case-study row through the recipe."""
    machines = paper_machines()
    traces: List[DecisionTrace] = []
    for workload in ALL_WORKLOADS:
        for res in run_case_study(workload, machines):
            if res.step is None or res.speedup is None or res.recipe_benefit is None:
                continue
            exception = KNOWN_EXCEPTIONS.get(
                (workload.name, res.machine, res.source_label, res.step)
            )
            traces.append(
                DecisionTrace(
                    workload=workload.name,
                    machine=res.machine,
                    source=res.source_label,
                    step=res.step,
                    binding_level=res.decision.binding_level,
                    occupancy_ratio=res.decision.occupancy_ratio,
                    status=res.decision.status.value,
                    bandwidth_saturated=res.decision.bandwidth_saturated,
                    expected_benefit=res.recipe_benefit.name,
                    expects_speedup=res.recipe_benefit.expects_speedup,
                    observed_speedup=res.speedup,
                    helped=res.speedup >= SPEEDUP_HELPED,
                    known_exception=exception,
                )
            )
    return Figure1Reproduction(traces=tuple(traces))
