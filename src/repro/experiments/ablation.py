"""Ablation studies on the method's design choices (DESIGN.md §5).

Three sensitivity analyses, exposed as library functions so both the
benchmarks and downstream users can run them:

* :func:`threshold_sweep` — the recipe's FULL / NEAR-FULL / saturation
  thresholds: the chosen operating point must sit on a plateau;
* :func:`latency_curve_perturbation` — scale every machine's loaded-
  latency calibration by a factor (miscalibrated X-Mem) and re-score
  the recipe across all table rows: the portability claim requires the
  verdicts to be insensitive to ~10 % curve error;
* :func:`prefetch_distance_sweep` — software-pipelining distance on
  the ISx L2-prefetch unlock: timeliness (a full memory latency of
  lead) is what moves the bottleneck.
"""

from __future__ import annotations

import importlib
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core import recipe as recipe_module
from ..machines.registry import get_machine
from ..perf.cache import cached_run_trace, stable_digest
from ..resilience.checkpoint import (
    SweepCheckpoint,
    dataclass_codec,
    run_checkpointed,
)
from ..sim.coltrace import ColumnarThreadTrace, ColumnarTrace
from ..sim.hierarchy import SimConfig
from ..units import to_gb_per_s
from ..workloads.generators import random_updates, spawn_thread_generator
from .harness import RecipeScore, reproduce_all_tables, score_recipe

ThresholdSetting = Tuple[float, float, float]

#: The shipped recipe thresholds (full, near-full, bandwidth-saturated).
DEFAULT_THRESHOLDS: ThresholdSetting = (0.95, 0.82, 0.93)


@contextmanager
def _recipe_thresholds(setting: ThresholdSetting) -> Iterator[None]:
    full, near, saturated = setting
    original = (
        recipe_module.FULL_RATIO,
        recipe_module.NEAR_FULL_RATIO,
        recipe_module.BW_SATURATED_RATIO,
    )
    recipe_module.FULL_RATIO = full
    recipe_module.NEAR_FULL_RATIO = near
    recipe_module.BW_SATURATED_RATIO = saturated
    try:
        yield
    finally:
        (
            recipe_module.FULL_RATIO,
            recipe_module.NEAR_FULL_RATIO,
            recipe_module.BW_SATURATED_RATIO,
        ) = original


def threshold_sweep(
    settings: Sequence[ThresholdSetting] = (
        DEFAULT_THRESHOLDS,
        (0.93, 0.80, 0.91),
        (0.97, 0.84, 0.95),
        (0.95, 0.78, 0.93),
        (0.95, 0.86, 0.93),
    ),
) -> Dict[ThresholdSetting, RecipeScore]:
    """Recipe score at each threshold setting (defaults bracket ours)."""
    return {tuple(s): _scored(tuple(s)) for s in settings}


def _scored(setting: ThresholdSetting) -> RecipeScore:
    with _recipe_thresholds(setting):
        return score_recipe()


_CALIBRATION_MODULES = {
    "repro.machines.skl": "SKL_LATENCY_CALIBRATION",
    "repro.machines.knl": "KNL_LATENCY_CALIBRATION",
    "repro.machines.a64fx": "A64FX_LATENCY_CALIBRATION",
}


@contextmanager
def scaled_latency_curves(scale: float) -> Iterator[None]:
    """Scale every paper machine's latency calibration by ``scale``.

    The machine factories read the module-level calibration constants
    at build time, so every machine constructed inside the context sees
    the perturbed curve.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    originals = {}
    for module_name, attr in _CALIBRATION_MODULES.items():
        module = importlib.import_module(module_name)
        originals[(module, attr)] = getattr(module, attr)
        setattr(
            module,
            attr,
            tuple((u, lat * scale) for u, lat in originals[(module, attr)]),
        )
    try:
        yield
    finally:
        for (module, attr), value in originals.items():
            setattr(module, attr, value)


@dataclass(frozen=True)
class PerturbationResult:
    """Recipe verdict stability under a latency-curve scaling."""

    scale: float
    stable_rows: int
    total_rows: int

    @property
    def stability(self) -> float:
        """Fraction of rows whose recipe verdict survived the perturbation."""
        return self.stable_rows / self.total_rows if self.total_rows else 1.0


def latency_curve_perturbation(scale: float) -> PerturbationResult:
    """Re-run all tables with curves scaled by ``scale``; count rows
    whose recipe verdict is still fine (agreeing or a known exception)."""
    with scaled_latency_curves(scale):
        total = stable = 0
        for table in reproduce_all_tables().values():
            for comparison in table.comparisons:
                if comparison.result.speedup is None:
                    continue
                total += 1
                if comparison.recipe_ok or comparison.known_exception is not None:
                    stable += 1
    return PerturbationResult(scale=scale, stable_rows=stable, total_rows=total)


@dataclass(frozen=True)
class PrefetchDistancePoint:
    """One ISx run at a software-pipelining distance."""

    distance: int
    l1_full_fraction: float
    l2_occupancy: float
    bandwidth_gbs: float
    elapsed_ns: float


def _distance_point(args: Tuple[int, str, int, int]) -> PrefetchDistancePoint:
    """One sweep point, self-contained and picklable for fan-out workers."""
    distance, machine_name, accesses_per_thread, seed = args
    machine = get_machine(machine_name)
    rng = random.Random(seed)
    threads = []
    for t in range(2):
        accesses = random_updates(
            accesses_per_thread,
            machine.line_bytes,
            spawn_thread_generator(rng),
            region_id=4 * t,
            gap_cycles=12.0,
            prefetch_to_l2=distance > 0,
            prefetch_distance=max(distance, 1),
        )
        threads.append(ColumnarThreadTrace.from_columns(t, accesses))
    trace = ColumnarTrace(
        tuple(threads),
        routine=f"isx_d{distance}",
        line_bytes=machine.line_bytes,
    )
    stats = cached_run_trace(
        trace, SimConfig(machine=machine, sim_cores=2, window_per_core=14)
    )
    return PrefetchDistancePoint(
        distance=distance,
        l1_full_fraction=stats.mshr_full_fraction(1),
        l2_occupancy=stats.avg_occupancy(2),
        bandwidth_gbs=to_gb_per_s(stats.bandwidth_bytes_per_s()),
        elapsed_ns=stats.elapsed_ns,
    )


def prefetch_distance_sweep(
    distances: Sequence[int] = (0, 4, 16, 64),
    *,
    machine_name: str = "knl",
    accesses_per_thread: int = 3000,
    seed: int = 11,
    jobs: Optional[int] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> List[PrefetchDistancePoint]:
    """ISx-on-simulator sweep over the prefetch lead distance.

    Each distance is an independent (seeded) simulation; with
    ``jobs > 1`` the grid points run in worker processes and the result
    order still follows ``distances`` exactly.  With a ``checkpoint``,
    completed distances are durably recorded and replayed on resume
    (byte-identical to an uninterrupted run).
    """
    encode, decode = dataclass_codec(PrefetchDistancePoint)
    return run_checkpointed(
        _distance_point,
        [(d, machine_name, accesses_per_thread, seed) for d in distances],
        checkpoint=checkpoint,
        key_fn=lambda args: stable_digest(
            {
                "harness": "prefetch_distance",
                "distance": args[0],
                "machine": args[1],
                "accesses_per_thread": args[2],
                "seed": args[3],
            }
        ),
        encode=encode,
        decode=decode,
        jobs=jobs,
        retries=retries,
        timeout_s=timeout_s,
    )
