"""Every number reported in the paper's tables and Figure 2.

Transcribed from the ISPASS 2022 text.  These are the ground truth the
experiment harnesses compare against; nothing in the library *reads*
model parameters from here (workload calibrations carry their own
literals with rationale), so tests comparing model output to this data
are meaningful.

Layout: each case-study table (IV–IX) is a tuple of :class:`PaperRow`;
``source`` uses the paper's labels; ``opt``/``speedup`` describe the
optimization applied *on top of* that row's source and the performance
it yielded (None for terminal rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple


@dataclass(frozen=True)
class PaperRow:
    """One row of a Table IV–IX case study."""

    proc: str  # "skl" | "knl" | "a64fx"
    source: str  # paper's Source label, e.g. "+ vect, 2-ht"
    bw_gbs: float
    bw_pct: int  # paper's "(xx%)" column
    lat_ns: float
    n_avg: float
    opt: Optional[str]  # optimization applied on this source
    speedup: Optional[float]  # observed performance from that optimization


TABLE4_ISX: Tuple[PaperRow, ...] = (
    PaperRow("skl", "base", 106.9, 84, 145, 10.1, "vectorize", 1.0),
    PaperRow("skl", "+ vect", 107.1, 84, 145, 10.1, "smt2", 1.0),
    PaperRow("knl", "base", 233.0, 58, 180, 10.23, "vectorize", 1.02),
    PaperRow("knl", "+ vect", 240.0, 60, 182, 10.66, "smt2", 1.04),
    PaperRow("knl", "+ vect, 2-ht", 253.0, 63, 187, 11.6, "smt4", 0.98),
    PaperRow("knl", "+ vect, 2-ht", 253.0, 63, 187, 11.6, "l2_prefetch", 1.4),
    PaperRow("knl", "+ vect, 2-ht, l2-pref", 344.0, 86, 238, 20.0, None, None),
    PaperRow("a64fx", "base", 649.0, 63, 188, 9.92, "l2_prefetch", 1.3),
    PaperRow("a64fx", "+ l2-pref", 788.0, 77, 280, 17.95, None, None),
)

TABLE5_HPCG: Tuple[PaperRow, ...] = (
    PaperRow("skl", "base", 109.9, 86, 171, 12.6, "vectorize", 1.0),
    PaperRow("skl", "+ vect", 108.0, 84, 171, 12.6, "smt2", 0.98),
    PaperRow("knl", "base", 205.0, 51, 179, 8.95, "vectorize", 1.15),
    PaperRow("knl", "+ vect", 235.0, 59, 181, 10.38, "smt2", 1.26),
    PaperRow("knl", "+ vect, 2-ht", 296.0, 74, 209, 15.1, "smt4", 1.03),
    PaperRow("a64fx", "base", 271.0, 26, 156, 3.44, "vectorize", 1.7),
    PaperRow("a64fx", "+ vect", 418.0, 41, 165, 5.62, None, None),
)

TABLE6_PENNANT: Tuple[PaperRow, ...] = (
    PaperRow("skl", "base", 37.9, 30, 93, 2.29, "vectorize", 2.0),
    PaperRow("skl", "+ vect", 46.8, 37, 95, 2.89, "smt2", 1.4),
    PaperRow("skl", "+ vect, 2-ht", 58.5, 46, 98, 3.73, None, None),
    PaperRow("knl", "base", 78.2, 19, 183, 3.49, "vectorize", 5.76),
    PaperRow("knl", "+ vect", 130.6, 33, 187, 5.96, "smt2", 1.17),
    PaperRow("knl", "+ vect, 2-ht", 233.6, 58, 199, 11.34, "smt4", 1.0),
    PaperRow("a64fx", "base", 69.3, 7, 144, 0.81, "vectorize", 3.83),
    PaperRow("a64fx", "+ vect", 102.0, 10, 146, 1.21, None, None),
)

TABLE7_COMD: Tuple[PaperRow, ...] = (
    PaperRow("skl", "base", 3.19, 3, 82, 0.17, "vectorize", 1.4),
    PaperRow("skl", "+ vect", 4.56, 4, 82, 0.29, "smt2", 1.22),
    PaperRow("skl", "+ vect, 2-ht", 7.8, 6, 82, 0.41, None, None),
    PaperRow("knl", "base", 26.88, 7, 179, 1.17, "vectorize", 1.35),
    PaperRow("knl", "+ vect", 35.39, 9, 180, 1.55, "smt2", 1.52),
    PaperRow("knl", "+ vect, 2-ht", 82.82, 20, 186, 3.76, "smt4", 1.25),
    PaperRow("knl", "+ vect, 4-ht", 141.0, 35, 190, 6.54, None, None),
    PaperRow("a64fx", "base", 10.75, 1, 142, 0.12, "vectorize", 1.24),
    PaperRow("a64fx", "+ vect", 13.44, 1, 142, 0.16, None, None),
)

TABLE8_MINIGHOST: Tuple[PaperRow, ...] = (
    PaperRow("skl", "base", 92.93, 73, 117, 7.07, "loop_tiling", 1.14),
    PaperRow("skl", "+ tiling", 107.14, 84, 148, 10.32, "smt2", 1.02),
    PaperRow("knl", "base", 232.96, 58, 198, 11.26, "loop_tiling", 1.47),
    PaperRow("knl", "+ tiling", 260.8, 65, 201, 12.79, "smt2", 1.0),
    PaperRow("knl", "+ tiling, 2-ht", 274.56, 69, 205, 13.74, "smt4", 1.0),
    PaperRow("a64fx", "base", 575.0, 56, 179, 8.38, "loop_tiling", 1.51),
    PaperRow("a64fx", "+ tiling", 554.0, 54, 174, 7.85, None, None),
)

TABLE9_SNAP: Tuple[PaperRow, ...] = (
    PaperRow("skl", "base", 58.2, 45, 100.1, 3.79, "sw_prefetch", 1.01),
    PaperRow("skl", "+ pref", 59.0, 46, 101, 3.87, "smt2", 1.03),
    PaperRow("knl", "base", 122.9, 31, 167, 5.0, "sw_prefetch", 1.08),
    PaperRow("knl", "+ pref", 126.4, 32, 168, 5.2, "smt2", 1.14),
    PaperRow("knl", "+ pref, 2-ht", 166.4, 42, 172, 6.98, "smt4", 1.02),
    PaperRow("a64fx", "base", 93.88, 9, 145, 1.1, "sw_prefetch", 1.07),
    PaperRow("a64fx", "+ pref", 97.3, 10, 145, 1.2, None, None),
)

#: All case-study tables keyed by workload name.
CASE_STUDY_TABLES: Mapping[str, Tuple[PaperRow, ...]] = {
    "isx": TABLE4_ISX,
    "hpcg": TABLE5_HPCG,
    "pennant": TABLE6_PENNANT,
    "comd": TABLE7_COMD,
    "minighost": TABLE8_MINIGHOST,
    "snap": TABLE9_SNAP,
}

#: Table number per workload, for report labels.
TABLE_NUMBER: Mapping[str, str] = {
    "isx": "IV",
    "hpcg": "V",
    "pennant": "VI",
    "comd": "VII",
    "minighost": "VIII",
    "snap": "IX",
}


@dataclass(frozen=True)
class PaperTable1Row:
    """One row of Table I (counter visibility)."""

    vendor: str
    stall_breakdown: str
    l1_mshrq_full: str
    l2_mshrq_full: str
    memory_latency: str


TABLE1_VISIBILITY: Tuple[PaperTable1Row, ...] = (
    PaperTable1Row("Intel", "Limited", "Yes", "No", "Limited"),
    PaperTable1Row("AMD", "Limited", "Yes", "No", "Limited"),
    PaperTable1Row("Cavium", "Very limited", "No", "No", "No"),
    PaperTable1Row("Fujitsu", "Limited", "No", "No", "No"),
)


@dataclass(frozen=True)
class PaperApplication:
    """One row of Table II (applications)."""

    name: str
    description: str
    problem_size: str
    routine: str


TABLE2_APPLICATIONS: Tuple[PaperApplication, ...] = (
    PaperApplication(
        "isx", "Scalable Integer Sort", "Keys per PE = 25165824", "count_local_keys"
    ),
    PaperApplication(
        "hpcg", "Sparse matrix-vector multiplication", "40^3", "ComputeSPMV_ref"
    ),
    PaperApplication(
        "pennant",
        "Unstructured mesh physics miniapp",
        "meshparams = 960, 1080, 1.0, 1.125",
        "setCornerDiv",
    ),
    PaperApplication(
        "comd", "Classical molecular dynamics", "x=y=z=24, T=4000", "eamForce"
    ),
    PaperApplication(
        "minighost",
        "Difference stencil miniapp",
        "nx=504, ny=126, nz=768, num_vars=40",
        "mg_stencil_3d27pt",
    ),
    PaperApplication(
        "snap",
        "Discrete ordinates neutral particle transport",
        "nx=64, ny=16, nz=24, nang=48, ng=54, cor_swp=1",
        "dim3_sweep",
    ),
)


@dataclass(frozen=True)
class PaperPlatform:
    """One row of Table III (platforms)."""

    name: str
    cores: int
    freq_ghz: float
    peak_bw_gbs: float
    l1_mshrs: int
    l2_mshrs: int


TABLE3_PLATFORMS: Tuple[PaperPlatform, ...] = (
    PaperPlatform("skl", 24, 2.1, 128.0, 10, 16),
    PaperPlatform("knl", 68, 1.4, 400.0, 12, 32),
    PaperPlatform("a64fx", 48, 1.8, 1024.0, 12, 20),
)


@dataclass(frozen=True)
class Figure2Data:
    """Paper Figure 2: ISx-on-KNL roofline with the L1-MSHR ceiling."""

    peak_bw_gbs: float = 400.0
    peak_gflops: float = 2867.0
    l1_ceiling_bw_gbs: float = 256.0
    base_n_avg: float = 10.23
    optimized_n_avg: float = 20.0


FIGURE2: Figure2Data = Figure2Data()


@dataclass(frozen=True)
class IntroSnapData:
    """Intro case study: TMA on SNAP (Skylake Gold 6130, full socket)."""

    tma_bandwidth_bound_pct: float = 27.0
    tma_latency_bound_pct: float = 23.0
    tma_reported_latency_cycles: float = 9.0
    prefetch_speedup: float = 1.08
    true_loaded_latency_ns: float = 180.0
    true_loaded_latency_cycles: float = 378.0


INTRO_SNAP: IntroSnapData = IntroSnapData()


def rows_for(workload: str, proc: Optional[str] = None) -> Tuple[PaperRow, ...]:
    """Rows of one case-study table, optionally filtered to one machine."""
    rows = CASE_STUDY_TABLES[workload]
    if proc is None:
        return rows
    return tuple(r for r in rows if r.proc == proc)


def base_row(workload: str, proc: str) -> PaperRow:
    """The 'base' source row of one machine's case study."""
    for row in rows_for(workload, proc):
        if row.source == "base":
            return row
    raise KeyError(f"no base row for {workload} on {proc}")
