"""Unit-safe conversions used throughout the library.

The paper mixes units freely (GB/s for bandwidth, ns for latency, cycles
for core-visible latency, bytes for cache lines).  Getting a factor of
1e9 wrong silently corrupts every MLP number, so all conversions live
here, are tested, and the rest of the library imports these helpers
instead of open-coding constants.

Conventions
-----------
* Bandwidth is stored in **bytes per second** internally; ``GB/s`` means
  decimal gigabytes (1e9 bytes), matching the paper and vendor specs.
* Latency is stored in **seconds** internally; display units are ns.
* Frequencies are in Hz; ``GHz`` means 1e9 Hz.
"""

from __future__ import annotations

GIGA = 1.0e9
MEGA = 1.0e6
KILO = 1.0e3
NANO = 1.0e-9


def gb_per_s(value: float) -> float:
    """Convert decimal GB/s to bytes/s."""
    return value * GIGA


def to_gb_per_s(bytes_per_s: float) -> float:
    """Convert bytes/s to decimal GB/s."""
    return bytes_per_s / GIGA


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANO


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NANO


def ghz(value: float) -> float:
    """Convert GHz to Hz."""
    return value * GIGA


def to_ghz(hz: float) -> float:
    """Convert Hz to GHz."""
    return hz / GIGA


def ns_to_us(latency_ns: float) -> float:
    """Convert nanoseconds to microseconds (report rendering)."""
    return latency_ns / KILO


def ns_to_ms(latency_ns: float) -> float:
    """Convert nanoseconds to milliseconds (report rendering)."""
    return latency_ns / MEGA


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Express a duration in core cycles at ``frequency_hz``.

    The paper quotes latencies both ways ("180ns or 378 cycles" at
    2.1 GHz); keeping the conversion here makes the round trip exact.
    """
    return seconds * frequency_hz


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Express a cycle count as wall time at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def ns_to_cycles(latency_ns: float, frequency_ghz: float) -> float:
    """Convenience: ns latency to cycles at a GHz frequency.

    >>> round(ns_to_cycles(180, 2.1))
    378
    """
    return latency_ns * frequency_ghz


def cycles_to_ns(cycles: float, frequency_ghz: float) -> float:
    """Convenience: cycle latency to ns at a GHz frequency."""
    if frequency_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return cycles / frequency_ghz


def utilization(observed: float, peak: float) -> float:
    """Fraction of peak (0..1+).  Raises on non-positive peak."""
    if peak <= 0:
        raise ValueError(f"peak must be positive, got {peak}")
    if observed < 0:
        raise ValueError(f"observed must be non-negative, got {observed}")
    return observed / peak


def percent(fraction: float) -> float:
    """Fraction to percent, for report rendering."""
    return fraction * 100.0
