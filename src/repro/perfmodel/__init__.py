"""Analytic performance model: fixed-point solver, closed-form fast path,
and case-study driver."""

from .casestudy import (
    SPEEDUP_HELPED,
    CaseStudyResult,
    CaseStudyRunner,
    run_case_study,
)
from .queueing import (
    FastPathDecision,
    QueueingParams,
    analytic_profile,
    calibrate_from_model,
    calibrate_from_probes,
    solve_operating_point_fast,
    state_eligibility,
    trace_eligibility,
)
from .runtime import RuntimeModel, RuntimePrediction
from .solver import SolvedPoint, solve_operating_point

__all__ = [
    "CaseStudyResult",
    "CaseStudyRunner",
    "FastPathDecision",
    "QueueingParams",
    "RuntimeModel",
    "RuntimePrediction",
    "SPEEDUP_HELPED",
    "SolvedPoint",
    "analytic_profile",
    "calibrate_from_model",
    "calibrate_from_probes",
    "run_case_study",
    "solve_operating_point",
    "solve_operating_point_fast",
    "state_eligibility",
    "trace_eligibility",
]
