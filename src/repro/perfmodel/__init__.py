"""Analytic performance model: fixed-point solver and case-study driver."""

from .casestudy import (
    SPEEDUP_HELPED,
    CaseStudyResult,
    CaseStudyRunner,
    run_case_study,
)
from .runtime import RuntimeModel, RuntimePrediction
from .solver import SolvedPoint, solve_operating_point

__all__ = [
    "CaseStudyResult",
    "CaseStudyRunner",
    "RuntimeModel",
    "RuntimePrediction",
    "SPEEDUP_HELPED",
    "SolvedPoint",
    "run_case_study",
    "solve_operating_point",
]
