"""Execution-time model over solved operating points.

For the memory-phase routines the paper studies, the runtime of one
version is ``time ∝ effective_traffic / achieved_bandwidth``; the
speedup from an optimization is therefore

    speedup = (BW_after / BW_before) * (traffic_before / traffic_after)

The first factor is what MLP-increasing optimizations buy (more
outstanding requests → more bandwidth); the second is what
request-reducing optimizations buy (tiling) and what SMT cache
contention *costs* (the paper's MiniGhost/SNAP observations).  Very
compute-bound codes (CoMD) need no separate compute term: their low
expressible MLP already encodes the scarcity of memory requests, and
the paper's own CoMD rows satisfy speedup ≈ bandwidth ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..memory.latency_model import LatencyModel
from ..memory.profile import LatencyProfile
from ..optim.transforms import WorkloadState
from ..units import to_gb_per_s
from .queueing import QueueingParams, solve_operating_point_fast, state_eligibility
from .solver import SolvedPoint, solve_operating_point


@dataclass(frozen=True)
class RuntimePrediction:
    """Predicted observables for one workload state."""

    state: WorkloadState
    point: SolvedPoint
    #: Relative execution time (1.0 ≙ base traffic at base bandwidth).
    time_relative: float
    #: True when the point came from the closed-form analytic solve.
    solved_fast: bool = False
    #: Why a fast-mode query fell back to the full solver ("" if it
    #: did not fall back).
    fallback_reason: str = ""

    @property
    def bandwidth_gbs(self) -> float:
        """Predicted bandwidth in GB/s."""
        return self.point.bandwidth_gbs

    @property
    def latency_ns(self) -> float:
        """Predicted loaded latency in ns."""
        return self.point.latency_ns

    @property
    def n_avg(self) -> float:
        """Predicted per-core MSHR occupancy."""
        return self.point.n_observed

    def speedup_over(self, other: "RuntimePrediction") -> float:
        """Speedup of *this* version relative to ``other``."""
        if self.time_relative <= 0:
            raise ConfigurationError("time must be positive")
        return other.time_relative / self.time_relative


class RuntimeModel:
    """Predicts runtime observables for workload states on one machine."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        curve: Optional[Union[LatencyModel, LatencyProfile]] = None,
        fast: bool = False,
        params: Optional[QueueingParams] = None,
    ) -> None:
        self.machine = machine
        self.curve = curve
        #: Answer eligible queries from the closed-form queueing model;
        #: ineligible states transparently fall back to the full solver
        #: with the reason recorded on the prediction.
        self.fast = fast
        #: Calibration for the fast path (defaults to the model fit).
        self.params = params

    def predict(self, state: WorkloadState) -> RuntimePrediction:
        """Solve the state's operating point and derive relative time."""
        if state.machine_name != self.machine.name:
            raise ConfigurationError(
                f"state is for {state.machine_name!r}, model for "
                f"{self.machine.name!r}"
            )
        solved_fast = False
        fallback_reason = ""
        if self.fast:
            decision = state_eligibility(state)
            if decision.eligible:
                point = solve_operating_point_fast(
                    self.machine,
                    state.demand_mlp,
                    state.binding_level,
                    params=self.params,
                )
                solved_fast = True
            else:
                fallback_reason = decision.reason
        if not solved_fast:
            point = solve_operating_point(
                self.machine,
                state.demand_mlp,
                state.binding_level,
                curve=self.curve,
            )
        # time ∝ traffic / bandwidth, normalized so base traffic (1.0)
        # at 1 GB/s would take 1e9 relative units; only ratios matter.
        time_relative = state.traffic_factor / point.bandwidth_bytes
        return RuntimePrediction(
            state=state,
            point=point,
            time_relative=time_relative,
            solved_fast=solved_fast,
            fallback_reason=fallback_reason,
        )

    def speedup(self, before: WorkloadState, after: WorkloadState) -> float:
        """Predicted speedup of applying a transform (before → after)."""
        return self.predict(after).speedup_over(self.predict(before))
