"""Fixed-point bandwidth/latency/MLP solver (DESIGN.md §5).

Little's law closes a feedback loop between three quantities:

* the MLP a routine can sustain per core,
  ``n = min(demand_mlp, binding MSHR file size)``;
* the bandwidth that MLP drives, ``BW = cores * n * cls / lat``;
* the loaded latency that bandwidth causes, ``lat = curve(BW)``.

The solver finds the consistent operating point by damped fixed-point
iteration, capping bandwidth at the machine's achievable-streams
ceiling (when capped, latency is *backed out* of Little's law — the
queueing regime where extra demand just inflates latency, which is why
ISx-optimized on KNL reads 238 ns at 86 % utilization).

The curve is monotone non-decreasing, so the iteration map is monotone
non-increasing in bandwidth and 0.5-damping converges geometrically;
a residual check guards the claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.littles_law import bandwidth_from_mlp, latency_from_mlp
from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..memory.latency_model import LatencyModel, model_for_machine
from ..memory.profile import LatencyProfile
from ..units import NANO, to_gb_per_s

#: Convergence tolerance on relative bandwidth change.
_TOLERANCE = 1e-9
_MAX_ITERATIONS = 500


@dataclass(frozen=True)
class SolvedPoint:
    """The consistent (bandwidth, latency, MLP) operating point."""

    bandwidth_bytes: float
    latency_ns: float
    #: Sustained per-core MLP (min of demand and the MSHR limit).
    n_sustained: float
    #: Observed per-core occupancy (= BW*lat/cls/cores; can exceed
    #: n_sustained slightly only through rounding, or fall below it when
    #: bandwidth-capped).
    n_observed: float
    bandwidth_capped: bool
    iterations: int
    #: Final relative residual of the fixed point: how far the returned
    #: bandwidth sits from ``min(cap, BW(n, lat))``, normalized by the
    #: achievable ceiling.  Near float rounding for both the bisection
    #: and the closed-form path; printed under ``-v`` as a health check.
    residual: float = 0.0

    @property
    def bandwidth_gbs(self) -> float:
        """Solved bandwidth in GB/s."""
        return to_gb_per_s(self.bandwidth_bytes)


class _ProfileAsModel:
    """Adapter: query a LatencyProfile with utilization like a model."""

    def __init__(self, profile: LatencyProfile) -> None:
        self._profile = profile

    @property
    def idle_latency_ns(self) -> float:
        return self._profile.idle_latency_ns

    def latency_ns(self, utilization: float) -> float:
        bw = min(utilization, 1.0) * self._profile.peak_bw_bytes
        bw = min(bw, self._profile.max_measured_bw_bytes)
        return self._profile.latency_at(bw)


def solve_operating_point(
    machine: MachineSpec,
    demand_mlp: float,
    binding_level: int,
    *,
    curve: Optional[Union[LatencyModel, LatencyProfile]] = None,
    cores: Optional[int] = None,
) -> SolvedPoint:
    """Solve the Little's-law fixed point for one workload state.

    Parameters
    ----------
    machine:
        Machine spec (MSHR limits, line size, bandwidth ceilings).
    demand_mlp:
        Per-core MLP the code expresses.
    binding_level:
        Which MSHR file (1 or 2) bounds the in-flight requests.
    curve:
        Loaded-latency source: a model or a measured profile.  Defaults
        to the machine's calibrated model.
    cores:
        Active cores (defaults to the machine's loaded-run count).
    """
    if demand_mlp <= 0:
        raise ConfigurationError("demand_mlp must be positive")
    ncores = cores if cores is not None else machine.active_cores
    if not 0 < ncores <= machine.cores:
        raise ConfigurationError(f"cores must be in 1..{machine.cores}")

    if curve is None:
        model: Union[LatencyModel, _ProfileAsModel] = model_for_machine(machine)
    elif isinstance(curve, LatencyProfile):
        model = _ProfileAsModel(curve)
    else:
        model = curve

    limit = machine.mshr_limit(binding_level)
    n = min(demand_mlp, float(limit))
    cls = machine.line_bytes
    peak = machine.memory.peak_bw_bytes
    cap = machine.memory.achievable_bw_bytes

    # g(bw) = bw - min(cap, n*cores*cls/lat(bw)) is non-decreasing in bw
    # (the curve is non-decreasing), so the root is found by bisection —
    # robust even across the steep knee segments of the tabulated curves.
    def residual(bw_value: float) -> float:
        lat_value = model.latency_ns(min(1.0, bw_value / peak))
        return bw_value - min(cap, bandwidth_from_mlp(n, lat_value, cls, cores=ncores))

    lo, hi = 0.0, cap
    if residual(hi) <= 0.0:
        bw = cap  # demand exceeds what the cap admits even at top latency
        iterations = 1
    else:
        iterations = 0
        for iterations in range(1, _MAX_ITERATIONS + 1):
            mid = 0.5 * (lo + hi)
            if residual(mid) > 0.0:
                hi = mid
            else:
                lo = mid
            if hi - lo <= _TOLERANCE * max(hi, 1.0):
                break
        bw = 0.5 * (lo + hi)

    capped = bw >= cap * (1.0 - 1e-6)
    if capped:
        # Queueing regime: latency is whatever makes Little's law hold
        # at the capped bandwidth, never less than the curve says.
        lat = max(
            model.latency_ns(min(1.0, bw / peak)),
            latency_from_mlp(n, bw, cls, cores=ncores),
        )
    else:
        lat = model.latency_ns(min(1.0, bw / peak))

    n_observed = bw * lat * NANO / cls / ncores
    final_residual = (
        abs(bw - min(cap, bandwidth_from_mlp(n, lat, cls, cores=ncores))) / cap
    )
    return SolvedPoint(
        bandwidth_bytes=bw,
        latency_ns=lat,
        n_sustained=n,
        n_observed=n_observed,
        bandwidth_capped=capped,
        iterations=iterations,
        residual=final_residual,
    )
