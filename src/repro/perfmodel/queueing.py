"""Closed-form M/M/1-with-ceiling queueing model — the ``--fast`` path.

Hill's "Three Other Models" argues Little's Law belongs beside
bottleneck analysis and an M/M/1 queue; the loaded-latency curve this
library simulates *is* a queueing curve.  This module exploits that:
with the loaded latency approximated by the M/M/1-shaped form

    lat(u) = L0 + A * u / (1 - u)        (u = BW / peak, clipped)

the Little's-law fixed point the bisection solver iterates
(:func:`repro.perfmodel.solver.solve_operating_point`) collapses to a
**quadratic in utilization** with a closed-form root — so a calibrated
machine answers characterize/advisor queries in microseconds with no
simulation at all.  Substituting ``BW = peak * u`` and the Equation-2
constraint ``BW * lat = n * cores * cls * 1e9 =: K`` gives

    peak * (A - L0) * u^2 + (peak * L0 + K) * u - K = 0,

whose root in ``[0, 1)`` is the operating point; when demand exceeds
the machine's achievable-streams ceiling the bandwidth is capped there
and the latency is backed out of Little's law — exactly the solver's
queueing-regime semantics, still in closed form.

Calibration (:class:`QueueingParams`) comes either

* from the machine's canonical latency model
  (:func:`calibrate_from_model` — deterministic, no simulation), or
* from a handful of simulator probe runs
  (:func:`calibrate_from_probes` — the honest measured route), with the
  fitted parameters content-addressed in the :mod:`repro.perf.cache`
  store so each machine is calibrated once and shared.

The closed form cannot cover everything; :func:`state_eligibility` and
:func:`trace_eligibility` gate the fast path (SMT contention,
prefetch-dominated access mixes, pathological bursty traces) and every
refusal carries a stated reason so callers can fall back to the
discrete-event simulator transparently.  docs/QUEUEING.md derives the
model and documents the cross-validated error bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.littles_law import bandwidth_from_mlp, latency_from_mlp
from ..errors import ConfigurationError, ProfileError
from ..machines.spec import MachineSpec
from ..memory.latency_model import model_for_machine
from ..memory.profile import LatencyProfile
from ..units import GIGA, NANO
from .solver import SolvedPoint, solve_operating_point

#: Bump when the calibrated-parameter representation changes; enters the
#: content-address so stale calibrations can never be replayed.
QUEUEING_SCHEMA_VERSION = 1

#: Payload kind under which calibrations live in the perf cache store.
CALIBRATION_KIND = "calibration"

#: Utilization at which the queueing term stops growing (keeps the
#: closed form finite at u -> 1; operating points are capped at the
#: achievable-streams ceiling well below this).
UTILIZATION_CAP = 0.995

#: Relative size below which the quadratic's leading coefficient counts
#: as vanished (A ≈ L0) and the linear solution is used instead.
_DEGENERATE_REL_TOL = 1e-12

#: A state whose prefetch fraction exceeds this is prefetch-dominated:
#: prefetches bypass the L1 MSHR file and carry the concurrency, so the
#: single-queue closed form no longer models the binding resource.
PREFETCH_DOMINATED_FRACTION = 0.95

#: Gap coefficient-of-variation above which a trace counts as
#: pathologically bursty (the M/M/1 steady-arrival assumption breaks).
PATHOLOGICAL_GAP_CV = 3.0

#: Default probe load levels (gap cycles, near-idle -> saturation) for
#: :func:`calibrate_from_probes`.  Five points bracket the curve: the
#: fit needs the idle anchor plus a few loaded samples, not a sweep.
DEFAULT_PROBE_GAPS: Tuple[float, ...] = (360.0, 120.0, 40.0, 12.0, 2.0)

#: Documented cross-validation error bounds for in-precondition queries
#: (docs/QUEUEING.md derives these from the `repro crossval-analytic`
#: table; CI re-runs the table and fails if any eligible cell exceeds
#: them).  They also widen the ``--fast`` error bars via
#: :func:`repro.core.uncertainty.analytic_widened_errors`.
ANALYTIC_BW_ERROR_BOUND = 0.15
ANALYTIC_LAT_ERROR_BOUND = 0.15


@dataclass(frozen=True)
class FastPathDecision:
    """Whether a query may be answered analytically, and why not."""

    eligible: bool
    #: Human-readable reason when ineligible; empty when eligible.
    reason: str = ""

    def __bool__(self) -> bool:
        """Truthy exactly when the fast path may be used."""
        return self.eligible


@dataclass(frozen=True)
class QueueingParams:
    """Calibrated parameters of one machine's closed-form latency curve.

    Implements the :class:`~repro.memory.latency_model.LatencyModel`
    protocol (``idle_latency_ns`` / ``latency_ns``), so it plugs
    directly into the bisection solver as a ``curve`` — the guarded
    fallback when the quadratic degenerates.
    """

    machine_name: str
    peak_bw_bytes: float
    #: The Eq. 2 / achievable-streams bandwidth ceiling (bytes/s).
    achievable_bw_bytes: float
    #: ``L0`` — latency at zero load (ns).
    unloaded_latency_ns: float
    #: ``A`` — queueing-contention coefficient (ns): the fitted weight
    #: of the M/M/1 blow-up term ``u / (1 - u)``.
    contention_ns: float
    #: Provenance: ``"model"`` (fitted to the canonical curve) or
    #: ``"probes"`` (fitted to simulator probe runs).
    source: str = "model"
    #: Number of simulator probe runs that fed the fit (0 for model).
    probes: int = 0

    def __post_init__(self) -> None:
        if self.peak_bw_bytes <= 0:
            raise ConfigurationError("peak bandwidth must be positive")
        if not 0 < self.achievable_bw_bytes <= self.peak_bw_bytes:
            raise ConfigurationError(
                "achievable bandwidth must be in (0, peak]"
            )
        if self.unloaded_latency_ns <= 0:
            raise ConfigurationError("unloaded latency must be positive")
        if self.contention_ns < 0:
            raise ConfigurationError("contention coefficient must be >= 0")

    # -- LatencyModel protocol -------------------------------------------------

    @property
    def idle_latency_ns(self) -> float:
        """Latency at zero load (the model's ``L0``)."""
        return self.unloaded_latency_ns

    def latency_ns(self, utilization: float) -> float:
        """Closed-form loaded latency at ``utilization`` in ``[0, 1]``.

        Monotone non-decreasing by construction: the queueing term
        ``A * u / (1 - u)`` grows with ``u`` and is clipped at
        :data:`UTILIZATION_CAP` to stay finite.
        """
        if not math.isfinite(utilization) or utilization < 0.0:
            raise ConfigurationError(
                f"utilization must be finite and >= 0, got {utilization}"
            )
        u = min(utilization, UTILIZATION_CAP)
        return self.unloaded_latency_ns + self.contention_ns * u / (1.0 - u)

    # -- query views -----------------------------------------------------------

    def latency_at_bandwidth(self, bandwidth_bytes: float) -> float:
        """Loaded latency (ns) at an observed bandwidth (bytes/s)."""
        if bandwidth_bytes < 0:
            raise ConfigurationError("bandwidth must be >= 0")
        return self.latency_ns(bandwidth_bytes / self.peak_bw_bytes)

    def latency_at_rate(
        self, requests_per_s: float, line_bytes: int
    ) -> float:
        """Latency vs *injection rate* (socket-level requests/s).

        The queueing-theory view of the same curve: an injection rate of
        ``lambda`` line-granular requests per second drives a bandwidth
        of ``lambda * cls`` bytes/s.
        """
        if line_bytes <= 0:
            raise ConfigurationError("line_bytes must be positive")
        return self.latency_at_bandwidth(requests_per_s * line_bytes)

    def saturation_rate(self, line_bytes: int) -> float:
        """The achievable-ceiling injection rate (requests/s)."""
        if line_bytes <= 0:
            raise ConfigurationError("line_bytes must be positive")
        return self.achievable_bw_bytes / line_bytes

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form for the content-addressed calibration store."""
        return {
            "machine_name": self.machine_name,
            "peak_bw_bytes": self.peak_bw_bytes,
            "achievable_bw_bytes": self.achievable_bw_bytes,
            "unloaded_latency_ns": self.unloaded_latency_ns,
            "contention_ns": self.contention_ns,
            "source": self.source,
            "probes": self.probes,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "QueueingParams":
        """Inverse of :meth:`to_dict` (raises on malformed documents)."""
        try:
            return cls(
                machine_name=str(doc["machine_name"]),
                peak_bw_bytes=float(doc["peak_bw_bytes"]),
                achievable_bw_bytes=float(doc["achievable_bw_bytes"]),
                unloaded_latency_ns=float(doc["unloaded_latency_ns"]),
                contention_ns=float(doc["contention_ns"]),
                source=str(doc.get("source", "unknown")),
                probes=int(doc.get("probes", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed calibration document: {exc}") from exc


# -- calibration -----------------------------------------------------------------


def _fit_contention(
    samples: Sequence[Tuple[float, float]], unloaded_ns: float
) -> float:
    """Least-squares fit of ``A`` in ``lat = L0 + A * u/(1-u)``.

    One-parameter linear regression through the origin of the excess
    latency against the queueing shape ``g(u) = u / (1 - u)``; closed
    form ``A = sum(g * (lat - L0)) / sum(g^2)``, clamped non-negative
    (a loaded-latency curve never improves under load).
    """
    num = 0.0
    den = 0.0
    for u, lat in samples:
        uq = min(max(u, 0.0), UTILIZATION_CAP)
        if uq < 1e-6:
            continue  # the idle anchor carries no queueing signal
        g = uq / (1.0 - uq)
        num += g * (lat - unloaded_ns)
        den += g * g
    if den <= 0.0:
        return 0.0
    return max(0.0, num / den)


@lru_cache(maxsize=64)
def calibrate_from_model(
    machine: MachineSpec, *, samples: int = 33
) -> QueueingParams:
    """Fit the closed form to the machine's canonical latency model.

    Deterministic and simulation-free: ``L0`` is the model's idle
    latency, the ceiling is the spec's achievable-streams bandwidth,
    and ``A`` is least-squares fitted over the operating range the
    solver actually visits (``u`` up to the achievable fraction).
    """
    if samples < 2:
        raise ConfigurationError("need at least two fit samples")
    model = model_for_machine(machine)
    unloaded = model.latency_ns(0.0)
    u_max = machine.memory.achievable_fraction
    grid = [u_max * i / (samples - 1) for i in range(samples)]
    pairs = [(u, model.latency_ns(u)) for u in grid]
    return QueueingParams(
        machine_name=machine.name,
        peak_bw_bytes=machine.memory.peak_bw_bytes,
        achievable_bw_bytes=machine.memory.achievable_bw_bytes,
        unloaded_latency_ns=unloaded,
        contention_ns=_fit_contention(pairs, unloaded),
        source="model",
        probes=0,
    )


def calibration_digest(
    machine: MachineSpec,
    *,
    probe_gaps: Sequence[float] = DEFAULT_PROBE_GAPS,
    sim_cores: int = 2,
    accesses_per_thread: int = 1500,
) -> str:
    """Content address of one machine's probe calibration.

    Any physical input — the machine spec (including its latency
    calibration points), the probe plan, or the calibration schema —
    changes the digest, so a stale calibration can never be replayed.
    """
    from ..perf.cache import stable_digest

    return stable_digest(
        {
            "harness": "queueing-calibration",
            "schema": QUEUEING_SCHEMA_VERSION,
            "machine": machine,
            "probe_gaps": [float(g) for g in probe_gaps],
            "sim_cores": sim_cores,
            "accesses_per_thread": accesses_per_thread,
        }
    )


def calibrate_from_probes(
    machine: MachineSpec,
    *,
    probe_gaps: Sequence[float] = DEFAULT_PROBE_GAPS,
    sim_cores: int = 2,
    accesses_per_thread: int = 1500,
    cache: Optional[Any] = None,
) -> QueueingParams:
    """Calibrate the closed form from a handful of simulator probe runs.

    Runs :data:`DEFAULT_PROBE_GAPS`-many X-Mem-style load levels through
    the discrete-event simulator (each level itself memoized in the
    SimStats cache), fits ``L0`` and ``A`` to the measured (bandwidth,
    latency) samples, and content-addresses the fitted parameters in the
    :mod:`repro.perf.cache` store under :data:`CALIBRATION_KIND` — so
    the probes run once per machine ever, and every later ``--fast``
    query answers from the stored closed form.
    """
    from ..perf.cache import get_cache

    handle = cache if cache is not None else get_cache()
    digest = calibration_digest(
        machine,
        probe_gaps=probe_gaps,
        sim_cores=sim_cores,
        accesses_per_thread=accesses_per_thread,
    )
    stored = handle.load_payload(digest, kind=CALIBRATION_KIND)
    if stored is not None:
        try:
            return QueueingParams.from_dict(stored)
        except ProfileError:
            pass  # malformed payload: recalibrate and re-store below

    from ..xmem.runner import XMemConfig, XMemRunner

    runner = XMemRunner(
        machine,
        XMemConfig(
            sim_cores=sim_cores,
            accesses_per_thread=accesses_per_thread,
            levels=max(2, len(tuple(probe_gaps))),
        ),
    )
    measurements = [runner.measure_level(float(gap)) for gap in probe_gaps]
    if not measurements:
        raise ConfigurationError("need at least one probe gap")
    unloaded = min(m.latency_ns for m in measurements)
    peak = machine.memory.peak_bw_bytes
    pairs = [(m.bandwidth_bytes / peak, m.latency_ns) for m in measurements]
    params = QueueingParams(
        machine_name=machine.name,
        peak_bw_bytes=peak,
        achievable_bw_bytes=machine.memory.achievable_bw_bytes,
        unloaded_latency_ns=unloaded,
        contention_ns=_fit_contention(pairs, unloaded),
        source="probes",
        probes=len(measurements),
    )
    handle.store_payload(digest, params.to_dict(), kind=CALIBRATION_KIND)
    return params


# -- the closed-form solve -------------------------------------------------------


def solve_operating_point_fast(
    machine: MachineSpec,
    demand_mlp: float,
    binding_level: int,
    *,
    params: Optional[QueueingParams] = None,
    cores: Optional[int] = None,
) -> SolvedPoint:
    """Closed-form Little's-law operating point (no iteration, no sim).

    Drop-in analytic counterpart of
    :func:`repro.perfmodel.solver.solve_operating_point`: same
    validation, same capping semantics (bandwidth never exceeds the
    achievable-streams ceiling; in the capped queueing regime latency is
    backed out of Little's law), but the fixed point is the root of a
    quadratic instead of a bisection — ``iterations == 0`` and the
    reported ``residual`` is float-rounding-level.

    ``params`` defaults to the machine's model-fitted calibration
    (:func:`calibrate_from_model`); pass a probe calibration for the
    measured route.  If the quadratic degenerates numerically (it
    cannot for physical parameters, but the guard is cheap) the
    function falls back to the bisection solver over the same
    closed-form curve, so the result is always well-defined.
    """
    if demand_mlp <= 0:
        raise ConfigurationError("demand_mlp must be positive")
    ncores = cores if cores is not None else machine.active_cores
    if not 0 < ncores <= machine.cores:
        raise ConfigurationError(f"cores must be in 1..{machine.cores}")
    if params is None:
        params = calibrate_from_model(machine)
    if params.machine_name != machine.name:
        raise ConfigurationError(
            f"calibration is for {params.machine_name!r}, "
            f"machine is {machine.name!r}"
        )

    limit = machine.mshr_limit(binding_level)
    n = min(demand_mlp, float(limit))
    cls = machine.line_bytes
    peak = params.peak_bw_bytes
    cap = params.achievable_bw_bytes
    l0 = params.unloaded_latency_ns
    a_coeff = params.contention_ns

    # K = BW * lat product Equation 2 demands (bytes/s * ns).
    k = n * ncores * cls * GIGA

    lat_at_cap = params.latency_at_bandwidth(cap)
    if k >= cap * lat_at_cap:
        # Queueing regime: demand saturates the ceiling; latency is
        # whatever makes Little's law hold there, never below the curve.
        bw = cap
        lat = max(lat_at_cap, latency_from_mlp(n, bw, cls, cores=ncores))
    else:
        # peak*(A - L0) u^2 + (peak*L0 + K) u - K = 0 on [0, 1).
        qa = peak * (a_coeff - l0)
        qb = peak * l0 + k
        qc = -k
        u: Optional[float] = None
        if abs(qa) <= _DEGENERATE_REL_TOL * qb:
            u = k / qb  # A == L0 edge: the quadratic term vanishes
        else:
            disc = qb * qb - 4.0 * qa * qc
            if disc >= 0.0:
                # qb > 0 always, so -(qb + sqrt(disc))/2 is the stable q.
                q = -0.5 * (qb + math.sqrt(disc))
                candidates = [
                    r for r in (q / qa, qc / q) if 0.0 <= r < 1.0
                ]
                if candidates:
                    u = min(candidates)
        if u is None:
            # Degenerate quadratic: bisect the same closed-form curve
            # (still simulation-free) rather than return garbage.
            return solve_operating_point(
                machine, demand_mlp, binding_level, curve=params, cores=ncores
            )
        bw = u * peak
        lat = params.latency_ns(u)

    capped = bw >= cap * (1.0 - 1e-6)
    residual = abs(bw - min(cap, bandwidth_from_mlp(n, lat, cls, cores=ncores))) / cap
    n_observed = bw * lat * NANO / cls / ncores
    return SolvedPoint(
        bandwidth_bytes=bw,
        latency_ns=lat,
        n_sustained=n,
        n_observed=n_observed,
        bandwidth_capped=capped,
        iterations=0,
        residual=residual,
    )


def analytic_profile(
    machine: MachineSpec,
    params: Optional[QueueingParams] = None,
    *,
    levels: int = 12,
) -> LatencyProfile:
    """The machine's latency profile, answered from the closed form.

    This is what ``characterize --fast`` returns: the same
    :class:`~repro.memory.profile.LatencyProfile` artifact the X-Mem
    sweep produces, sampled from the calibrated analytic curve in
    microseconds instead of simulated in seconds.  ``source`` is
    stamped ``"analytic"`` so downstream consumers know the provenance.
    """
    if levels < 2:
        raise ConfigurationError("need at least two profile levels")
    if params is None:
        params = calibrate_from_model(machine)
    samples = []
    for i in range(levels):
        bw = params.achievable_bw_bytes * i / (levels - 1)
        samples.append((bw, params.latency_at_bandwidth(bw)))
    return LatencyProfile.from_samples(
        machine.name,
        params.peak_bw_bytes,
        samples,
        source="analytic",
    )


# -- fast-path preconditions -----------------------------------------------------


def state_eligibility(state: Any) -> FastPathDecision:
    """Can this workload state's query be answered analytically?

    ``state`` is a :class:`~repro.optim.transforms.WorkloadState` (typed
    loosely to keep the perfmodel <-> optim import surface thin).  Two
    preconditions gate the closed form:

    * **SMT contention** — threads sharing a core's caches interact in
      ways the single-queue model does not carry (the paper's
      MiniGhost/SNAP observations); SMT states go to the simulator.
    * **Prefetch-dominated mixes** — above
      :data:`PREFETCH_DOMINATED_FRACTION` the concurrency lives in
      prefetch streams that bypass the binding MSHR file.
    """
    if getattr(state, "smt_ways", 1) > 1:
        return FastPathDecision(
            False,
            f"SMT contention: state runs {state.smt_ways} threads/core; "
            "cache-contention effects are outside the closed-form model",
        )
    prefetch_fraction = 1.0 - getattr(state, "random_fraction", 1.0)
    if prefetch_fraction > PREFETCH_DOMINATED_FRACTION:
        return FastPathDecision(
            False,
            f"prefetch-dominated: {prefetch_fraction:.0%} of accesses are "
            "prefetch-covered, so concurrency bypasses the binding MSHR "
            "file the closed form models",
        )
    return FastPathDecision(True)


def trace_eligibility(trace: Any) -> FastPathDecision:
    """Can a trace-driven query be answered analytically?

    Rejects pathological traces: no demand accesses at all, or a
    per-thread inter-arrival (gap) coefficient of variation above
    :data:`PATHOLOGICAL_GAP_CV` — burstiness far beyond what the
    steady-arrival queueing assumption tolerates.
    """
    import numpy as np

    if getattr(trace, "total_demand", 1) == 0:
        return FastPathDecision(
            False, "pathological trace: no demand accesses to model"
        )
    worst_cv = 0.0
    for thread in getattr(trace, "threads", ()):
        if hasattr(thread, "gap_cycles"):
            raw = thread.gap_cycles  # columnar: the gap array itself
        else:
            raw = [access.gap_cycles for access in thread.accesses]
        gaps = np.asarray(raw, dtype=np.float64)
        if gaps.size < 2:
            continue
        mean = float(gaps.mean())
        if mean <= 0.0:
            return FastPathDecision(
                False,
                "pathological trace: zero mean inter-arrival gap "
                "(unbounded injection rate)",
            )
        worst_cv = max(worst_cv, float(gaps.std()) / mean)
    if worst_cv > PATHOLOGICAL_GAP_CV:
        return FastPathDecision(
            False,
            f"pathological trace: bursty injection (gap CV {worst_cv:.1f} "
            f"> {PATHOLOGICAL_GAP_CV:.1f}) breaks the steady-arrival "
            "queueing assumption",
        )
    return FastPathDecision(True)


__all__ = [
    "ANALYTIC_BW_ERROR_BOUND",
    "ANALYTIC_LAT_ERROR_BOUND",
    "CALIBRATION_KIND",
    "DEFAULT_PROBE_GAPS",
    "FastPathDecision",
    "PATHOLOGICAL_GAP_CV",
    "PREFETCH_DOMINATED_FRACTION",
    "QUEUEING_SCHEMA_VERSION",
    "QueueingParams",
    "UTILIZATION_CAP",
    "analytic_profile",
    "calibrate_from_model",
    "calibrate_from_probes",
    "calibration_digest",
    "solve_operating_point_fast",
    "state_eligibility",
    "trace_eligibility",
]
