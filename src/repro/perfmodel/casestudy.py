"""Case-study driver: regenerate one paper table (IV–IX) for one machine.

For each planned row (``source_steps``, ``step``) of a workload's
machine plan this driver:

1. builds the source version's analytic state and solves its operating
   point (bandwidth, loaded latency, n_avg) — the row's first columns;
2. asks the **recipe** what it expects from ``step`` *given only the
   measured state* (the paper's guidance-validation loop);
3. applies the transform and predicts the **speedup** — the row's last
   column;
4. records whether the recipe's expectation (benefit / no benefit)
   agrees with the predicted outcome.

The output rows are directly comparable to
:mod:`repro.experiments.paperdata`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..core.classify import Classification
from ..core.mlp import MlpResult
from ..core.recipe import Benefit, Recipe, RecipeContext, RecipeDecision
from ..core.report import CaseStudyRow
from ..errors import ExperimentError
from ..machines.spec import MachineSpec
from ..memory.latency_model import LatencyModel
from ..memory.profile import LatencyProfile
from ..optim.transforms import WorkloadState, kind_of_step
from .runtime import RuntimeModel, RuntimePrediction

if TYPE_CHECKING:  # pragma: no cover - break the workloads<->core cycle
    from ..workloads.base import Workload

#: Observed speedups at or above this count as "the optimization helped".
SPEEDUP_HELPED = 1.05


@dataclass(frozen=True)
class CaseStudyResult:
    """One experiment (= one paper table row) fully evaluated."""

    workload: str
    machine: str
    source_label: str
    prediction: RuntimePrediction
    step: Optional[str]
    speedup: Optional[float]
    decision: RecipeDecision
    recipe_benefit: Optional[Benefit]

    @property
    def bw_gbs(self) -> float:
        """Source version's predicted bandwidth (GB/s)."""
        return self.prediction.bandwidth_gbs

    @property
    def latency_ns(self) -> float:
        """Source version's predicted loaded latency (ns)."""
        return self.prediction.latency_ns

    @property
    def n_avg(self) -> float:
        """Source version's predicted per-core MSHR occupancy."""
        return self.prediction.n_avg

    @property
    def recipe_expects_benefit(self) -> Optional[bool]:
        """Whether the recipe predicted a measurable speedup."""
        if self.recipe_benefit is None:
            return None
        return self.recipe_benefit.expects_speedup

    @property
    def recipe_agrees(self) -> Optional[bool]:
        """Did the recipe's expectation match the (model) outcome?"""
        if self.speedup is None or self.recipe_benefit is None:
            return None
        helped = self.speedup >= SPEEDUP_HELPED
        return self.recipe_expects_benefit == helped

    def to_table_row(self, peak_bw_gbs: float) -> CaseStudyRow:
        """Convert to a paper-style table row."""
        from ..optim.transforms import label_of_step

        return CaseStudyRow(
            proc=self.machine,
            source=self.source_label,
            bw_gbs=self.bw_gbs,
            bw_pct=100.0 * self.bw_gbs / peak_bw_gbs,
            latency_ns=self.latency_ns,
            n_avg=self.n_avg,
            opt_label=label_of_step(self.step) if self.step else "-",
            speedup=self.speedup,
        )


class CaseStudyRunner:
    """Runs a workload's full experiment plan on one machine."""

    def __init__(
        self,
        workload: Workload,
        machine: MachineSpec,
        *,
        curve: Optional[Union[LatencyModel, LatencyProfile]] = None,
    ) -> None:
        self.workload = workload
        self.machine = machine
        self.model = RuntimeModel(machine, curve=curve)
        self.recipe = Recipe(machine)
        self._state_cache: Dict[Tuple[str, ...], WorkloadState] = {}
        self._pred_cache: Dict[Tuple[str, ...], RuntimePrediction] = {}

    # -- state/prediction memoization -------------------------------------------

    def state(self, steps: Sequence[str]) -> WorkloadState:
        """Memoized workload state after ``steps``."""
        key = tuple(steps)
        if key not in self._state_cache:
            self._state_cache[key] = self.workload.state_for(self.machine, key)
        return self._state_cache[key]

    def predict(self, steps: Sequence[str]) -> RuntimePrediction:
        """Memoized runtime prediction for the version after ``steps``."""
        key = tuple(steps)
        if key not in self._pred_cache:
            self._pred_cache[key] = self.model.predict(self.state(key))
        return self._pred_cache[key]

    # -- running -------------------------------------------------------------------

    def run_row(
        self, source_steps: Sequence[str], step: Optional[str]
    ) -> CaseStudyResult:
        """Evaluate one planned experiment row."""
        source = tuple(source_steps)
        pred = self.predict(source)
        state = self.state(source)

        classification = Classification(
            pattern=state.pattern,
            prefetch_fraction=1.0 - state.random_fraction,
            rationale=f"workload model: {state.pattern.value} "
            f"(random fraction {state.random_fraction:.0%})",
        )
        mlp = self._mlp_result(pred)
        context = RecipeContext(
            applied=frozenset(state.applied_kinds),
            smt_ways_used=state.smt_ways,
        )
        decision = self.recipe.decide(mlp, classification, context)

        speedup: Optional[float] = None
        benefit: Optional[Benefit] = None
        if step is not None:
            after = self.predict(source + (step,))
            speedup = after.speedup_over(pred)
            benefit = decision.benefit_of(kind_of_step(step))
        return CaseStudyResult(
            workload=self.workload.name,
            machine=self.machine.name,
            source_label=state.label,
            prediction=pred,
            step=step,
            speedup=speedup,
            decision=decision,
            recipe_benefit=benefit,
        )

    def run(self) -> List[CaseStudyResult]:
        """Run every planned row for this machine."""
        plan = self.workload.row_plan(self.machine.name)
        if not plan:
            raise ExperimentError(
                f"{self.workload.name} has no plan for {self.machine.name}"
            )
        return [self.run_row(source, step) for source, step in plan]

    # -- helpers --------------------------------------------------------------------

    def _mlp_result(self, pred: RuntimePrediction) -> MlpResult:
        machine = self.machine
        return MlpResult(
            bandwidth_bytes=pred.point.bandwidth_bytes,
            utilization=pred.point.bandwidth_bytes / machine.memory.peak_bw_bytes,
            latency_ns=pred.point.latency_ns,
            n_avg=pred.point.n_observed,
            n_total=pred.point.n_observed * machine.active_cores,
            cores=machine.active_cores,
            line_bytes=machine.line_bytes,
        )


def run_case_study(
    workload: Workload,
    machines: Sequence[MachineSpec],
    *,
    curves: Optional[Dict[str, Union[LatencyModel, LatencyProfile]]] = None,
) -> List[CaseStudyResult]:
    """Full paper-table reproduction: all machines, paper row order."""
    results: List[CaseStudyResult] = []
    for machine in machines:
        if machine.name not in workload.machines():
            continue
        curve = (curves or {}).get(machine.name)
        results.extend(CaseStudyRunner(workload, machine, curve=curve).run())
    return results
