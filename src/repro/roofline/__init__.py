"""Roofline model plus the paper's MSHR-ceiling extension (Figure 2)."""

from .model import Roofline, RooflinePoint, log_intensity_grid
from .mshr_ceiling import (
    ExtendedRoofline,
    MshrCeiling,
    extended_roofline_for,
    mshr_ceiling,
)

__all__ = [
    "ExtendedRoofline",
    "MshrCeiling",
    "Roofline",
    "RooflinePoint",
    "extended_roofline_for",
    "log_intensity_grid",
    "mshr_ceiling",
]
