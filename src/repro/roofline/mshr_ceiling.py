"""The paper's roofline extension: MSHR-imposed bandwidth ceilings (Fig. 2).

For a routine whose MLP is capped at ``n`` MSHRs per core, Little's law
bounds sustainable bandwidth at ``cores * n * cls / lat``; divided
through by intensity this is one more diagonal under the classic
bandwidth roof.  The paper draws the L1-MSHR ceiling for ISx on KNL
(256 GB/s, y-intercept 8 at intensity 1 against the 400 GB/s peak's
12.48) and shows the base point O sitting *on* that ceiling — the
classic roofline said "plenty of headroom", the extra ceiling says
"L1-MSHR bound", and L2 software prefetching is the move that raises
the ceiling toward the true roof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.littles_law import bandwidth_from_mlp
from ..errors import ConfigurationError
from ..machines.spec import MachineSpec
from ..units import to_gb_per_s
from .model import Roofline, RooflinePoint


@dataclass(frozen=True)
class MshrCeiling:
    """One MSHR-imposed bandwidth ceiling."""

    label: str
    level: int
    mshrs_per_core: int
    latency_ns: float
    bandwidth_gbs: float

    def attainable_gflops(self, intensity: float) -> float:
        """Ceiling-bounded performance at ``intensity``."""
        if intensity <= 0:
            raise ConfigurationError("intensity must be positive")
        return self.bandwidth_gbs * intensity


def mshr_ceiling(
    machine: MachineSpec,
    level: int,
    latency_ns: float,
    *,
    label: Optional[str] = None,
) -> MshrCeiling:
    """Build the ceiling for ``level``'s MSHR file at a loaded latency.

    The paper evaluates the ceiling at the latency the routine actually
    observes (ISx/KNL: 12 L1 MSHRs at ~180–190 ns → ~256 GB/s socket).
    """
    mshrs = machine.mshr_limit(level)
    bw_bytes = bandwidth_from_mlp(
        float(mshrs), latency_ns, machine.line_bytes, cores=machine.active_cores
    )
    return MshrCeiling(
        label=label or f"L{level}-MSHR ceiling ({mshrs}/core @ {latency_ns:.0f}ns)",
        level=level,
        mshrs_per_core=mshrs,
        latency_ns=latency_ns,
        bandwidth_gbs=to_gb_per_s(bw_bytes),
    )


@dataclass(frozen=True)
class ExtendedRoofline:
    """Classic roofline plus MSHR ceilings — the paper's Figure 2 object."""

    roofline: Roofline
    ceilings: Tuple[MshrCeiling, ...]

    def attainable_gflops(self, intensity: float, *, binding_level: Optional[int] = None) -> float:
        """Tightest bound at ``intensity``; restrict to one ceiling if asked."""
        bound = self.roofline.attainable_gflops(intensity)
        for ceiling in self.ceilings:
            if binding_level is not None and ceiling.level != binding_level:
                continue
            bound = min(bound, ceiling.attainable_gflops(intensity))
        return bound

    def binding_ceiling(self, point: RooflinePoint) -> Optional[MshrCeiling]:
        """The ceiling the point is effectively sitting on (within 15%)."""
        for ceiling in sorted(self.ceilings, key=lambda c: c.bandwidth_gbs):
            bound = min(
                ceiling.attainable_gflops(point.intensity_flops_per_byte),
                self.roofline.attainable_gflops(point.intensity_flops_per_byte),
            )
            if point.performance_gflops >= 0.85 * bound:
                return ceiling
        return None

    def explains_stall(self, point: RooflinePoint) -> bool:
        """Classic model shows headroom but an MSHR ceiling binds.

        This is the paper's Figure 2 argument in one predicate: the
        classic roofline alone would promise speedup (point well below
        the roof) while the routine is in fact pinned to an MSHR
        ceiling.
        """
        classic_headroom = self.roofline.headroom(point) > 1.2
        return classic_headroom and self.binding_ceiling(point) is not None

    def series(
        self, intensities: Sequence[float]
    ) -> List[Tuple[float, float, float]]:
        """(intensity, classic bound, extended bound) triples for plotting."""
        return [
            (
                x,
                self.roofline.attainable_gflops(x),
                self.attainable_gflops(x),
            )
            for x in intensities
        ]


def extended_roofline_for(
    machine: MachineSpec, latency_ns: float, *, levels: Sequence[int] = (1, 2)
) -> ExtendedRoofline:
    """Extended roofline with MSHR ceilings for the given cache levels."""
    return ExtendedRoofline(
        roofline=Roofline.for_machine(machine),
        ceilings=tuple(mshr_ceiling(machine, lvl, latency_ns) for lvl in levels),
    )
