"""Classic roofline model (Williams et al. [13]), the paper's baseline.

Performance (GFLOP/s) versus arithmetic intensity (FLOP/byte), bounded
by the memory-bandwidth diagonal and the peak-compute horizontal.  The
paper uses a log-log roofline of ISx on KNL (Figure 2); this module
provides the arithmetic and the series generation used by the Figure 2
experiment, and the MSHR ceiling extension lives in
:mod:`repro.roofline.mshr_ceiling`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..machines.spec import MachineSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One application placed on the roofline."""

    label: str
    intensity_flops_per_byte: float
    performance_gflops: float

    def __post_init__(self) -> None:
        if self.intensity_flops_per_byte <= 0:
            raise ConfigurationError("intensity must be positive")
        if self.performance_gflops < 0:
            raise ConfigurationError("performance must be >= 0")


@dataclass(frozen=True)
class Roofline:
    """A machine's classic roofline."""

    machine_name: str
    peak_gflops: float
    peak_bw_gbs: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.peak_bw_gbs <= 0:
            raise ConfigurationError("peaks must be positive")

    @classmethod
    def for_machine(cls, machine: MachineSpec) -> "Roofline":
        return cls(
            machine_name=machine.name,
            peak_gflops=machine.peak_gflops,
            peak_bw_gbs=machine.peak_bw_gbs,
        )

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the bandwidth diagonal meets the compute roof."""
        return self.peak_gflops / self.peak_bw_gbs

    def attainable_gflops(self, intensity: float) -> float:
        """min(peak, BW * intensity) — the roofline bound."""
        if intensity <= 0:
            raise ConfigurationError("intensity must be positive")
        return min(self.peak_gflops, self.peak_bw_gbs * intensity)

    def bound_kind(self, intensity: float) -> str:
        """'memory' left of the ridge, 'compute' right of it."""
        return "memory" if intensity < self.ridge_intensity else "compute"

    def headroom(self, point: RooflinePoint) -> float:
        """Attainable / achieved: >1 means the classic model sees headroom."""
        achieved = point.performance_gflops
        if achieved <= 0:
            return float("inf")
        return self.attainable_gflops(point.intensity_flops_per_byte) / achieved

    def series(
        self, intensities: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """(intensity, attainable) pairs for plotting."""
        return [(x, self.attainable_gflops(x)) for x in intensities]


def log_intensity_grid(
    lo: float = 0.01, hi: float = 100.0, points: int = 49
) -> List[float]:
    """Log-spaced intensity axis for roofline series."""
    if lo <= 0 or hi <= lo or points < 2:
        raise ConfigurationError("need 0 < lo < hi and points >= 2")
    return [float(x) for x in np.logspace(np.log10(lo), np.log10(hi), points)]
