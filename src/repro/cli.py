"""Command-line interface: ``repro <command>``.

Commands mirror the paper's workflow:

* ``repro machines`` — list the Table III platforms;
* ``repro characterize --machine skl [--out profile.json]`` — run the
  X-Mem substitute and print/save the latency profile (the
  once-per-machine prerequisite);
* ``repro analyze --machine skl --bandwidth 106.9 --pattern random`` —
  per-routine analysis: MLP, binding MSHR file, recipe guidance;
* ``repro reproduce [--table isx|hpcg|...|all]`` — regenerate the paper
  case-study tables and the agreement summary;
* ``repro figure2`` — the extended-roofline experiment;
* ``repro recipe-score`` — Figure 1 aggregate accuracy;
* ``repro trace export/import`` — write a generated trace to an
  mmap-able ``.npz`` file / read one back and summarize it (feed it to
  ``repro simulate --trace FILE``);
* ``repro advisor --workload isx --machine skl [--fast]`` — run the
  Figure-1 recipe loop to convergence (``--fast`` answers from the
  closed-form queueing model, falling back with a stated reason);
* ``repro crossval-analytic`` — the analytic-vs-simulator error table
  backing the ``--fast`` error bounds (docs/QUEUEING.md);
* ``repro cache stats`` — entry counts, bytes, and hit/miss tallies for
  the SimStats + calibration stores;
* ``repro cache gc --max-bytes 500M --max-age 30d`` — evict cache
  entries oldest-first to fit a byte budget and/or age horizon.

``characterize`` and ``analyze`` accept ``--fast`` to answer from the
calibrated closed form instead of simulating; the global ``-v`` prints
solver diagnostics (iterations, final residual).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.analyzer import RoutineAnalyzer
from .core.classify import AccessPattern, Classification
from .errors import ReproError
from .machines.registry import get_machine, machine_names, paper_machines
from .units import ns_to_us, to_gb_per_s
from .xmem.runner import XMemConfig, characterize_machine


def _apply_perf_flags(args: argparse.Namespace) -> None:
    """Honor ``--no-cache``/``--retries``/``--timeout-s`` before any runs.

    Retry/timeout settings are mirrored into ``REPRO_RETRIES``/
    ``REPRO_TIMEOUT_S`` so every :func:`repro.perf.parallel.fan_out`
    in the command — and its worker processes — picks them up.
    """
    import os

    if getattr(args, "no_cache", False):
        from .perf.cache import configure_cache

        configure_cache(enabled=False)
    if getattr(args, "retries", None) is not None:
        os.environ["REPRO_RETRIES"] = str(args.retries)
    if getattr(args, "timeout_s", None) is not None:
        os.environ["REPRO_TIMEOUT_S"] = str(args.timeout_s)
    if getattr(args, "sanitize", False):
        from .analysis.sanitizer import configure_sanitize

        # Mirrored into REPRO_SANITIZE so fan_out workers inherit it.
        configure_sanitize(True)


def _print_sanitizer_summary() -> None:
    """One-line reprosan verdict when the instrumented mode is on."""
    from .analysis.sanitizer import last_report, sanitize_enabled

    if not sanitize_enabled():
        return
    report = last_report()
    if report is None:
        print("sanitizer: enabled, but no instrumented run executed")
        return
    queues = ", ".join(sorted(q.get("queue", "?") for q in report.queues)) or "none"
    print(
        f"sanitizer: {'ok' if report.ok else 'VIOLATIONS'} — "
        f"{report.events_checked} events checked, queues audited: {queues}"
    )


def _print_batch_notice(args: argparse.Namespace, stats: "object") -> None:
    """One-line ``-v`` diagnosis when the batch fast path fell back.

    A zero-batched-fraction run is otherwise silent (the paths are
    bit-identical by contract), so surface *why*: per-reason fallback
    counts from :attr:`~repro.sim.stats.SimStats.batch_fallbacks`
    (``smt`` = batch disabled wholesale, ``handoff``/``mshr_pressure``/
    … = individual runs replayed through the event engine; reason table
    in docs/PERFORMANCE.md).
    """
    if not getattr(args, "verbose", False):
        return
    fallbacks = getattr(stats, "batch_fallbacks", None)
    if not fallbacks:
        return
    reasons = ", ".join(f"{r}={n}" for r, n in sorted(fallbacks.items()))
    print(
        f"  batch fast path fell back: {reasons} "
        "(reason table: docs/PERFORMANCE.md)"
    )


def _print_cache_summary() -> None:
    """One-line sim-cache accounting for the command that just ran."""
    from .perf.cache import get_cache

    cache = get_cache()
    if cache.enabled:
        print(f"sim cache: {cache.counters.summary()} ({cache.cache_dir})")
        cache.flush_tallies()
    else:
        print("sim cache: disabled")


def _print_point_diagnostics(point: "object", args: argparse.Namespace) -> None:
    """Solver health line (iterations + final residual) under ``-v``."""
    if not getattr(args, "verbose", False):
        return
    iterations = getattr(point, "iterations", None)
    residual = getattr(point, "residual", None)
    if iterations is None or residual is None:
        return
    route = "closed form" if iterations == 0 else f"{iterations} iteration(s)"
    print(f"  solver: {route}, final residual {residual:.2e}")


def _cmd_machines(_: argparse.Namespace) -> int:
    for machine in paper_machines():
        print(machine.describe())
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    import time

    _apply_perf_flags(args)
    machine = get_machine(args.machine)
    if getattr(args, "fast", False):
        from .analysis.sanitizer import sanitize_enabled

        if sanitize_enabled():
            # Stated-reason fallback: the whole point of sanitize mode
            # is to execute the instrumented simulator.
            print(
                "--fast declined: sanitize mode must execute the "
                "instrumented simulator; running the full sweep"
            )
        else:
            from .perfmodel.queueing import analytic_profile, calibrate_from_probes

            start = time.perf_counter()
            params = calibrate_from_probes(machine)
            profile = analytic_profile(machine, params, levels=args.levels)
            wall = time.perf_counter() - start
            print(
                f"latency profile for {machine.name} "
                f"({len(profile.points)} samples, source={profile.source})"
            )
            for point in profile.points:
                print(
                    f"  {point.bandwidth_gbs:8.1f} GB/s -> "
                    f"{point.latency_ns:6.1f} ns"
                )
            print(
                f"analytic fast path: {params.probes} cached probe run(s), "
                f"L0={params.unloaded_latency_ns:.1f} ns, "
                f"A={params.contention_ns:.1f} ns; {wall:.3f}s wall"
            )
            _print_cache_summary()
            if args.out:
                profile.save(args.out)
                print(f"saved to {args.out}")
            return 0
    config = XMemConfig(levels=args.levels, batch=args.batch)
    checkpoint = None
    if args.checkpoint:
        from .resilience.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint(
            args.checkpoint, label=f"xmem:{machine.name}"
        )
        if args.resume:
            if checkpoint.exists:
                print(
                    f"resuming from checkpoint {args.checkpoint} "
                    f"({len(checkpoint.load())} level(s) already done)"
                )
        elif checkpoint.exists:
            checkpoint.clear()
            print(f"cleared stale checkpoint {args.checkpoint} (no --resume)")
    elif args.resume:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    start = time.perf_counter()
    profile = characterize_machine(
        machine, config, jobs=args.jobs, checkpoint=checkpoint
    )
    wall = time.perf_counter() - start
    print(
        f"latency profile for {machine.name} "
        f"({len(profile.points)} samples, source={profile.source})"
    )
    for point in profile.points:
        print(f"  {point.bandwidth_gbs:8.1f} GB/s -> {point.latency_ns:6.1f} ns")
    print(f"characterized in {wall:.2f}s wall")
    _print_cache_summary()
    if args.out:
        profile.save(args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    profile = None
    if getattr(args, "fast", False):
        from .perfmodel.queueing import analytic_profile, calibrate_from_probes

        params = calibrate_from_probes(machine)
        profile = analytic_profile(machine, params)
    analyzer = RoutineAnalyzer(machine, profile)
    pattern = AccessPattern(args.pattern)
    classification = Classification(
        pattern=pattern,
        prefetch_fraction=float("nan"),
        rationale=f"user-specified pattern: {pattern.value}",
    )
    report = analyzer.analyze_bandwidth_gbs(
        args.bandwidth, routine=args.routine, classification=classification
    )
    print(report.render())
    if profile is not None:
        from .core.uncertainty import analytic_widened_errors, mlp_uncertainty
        from .units import GIGA

        bw_err, lat_err = analytic_widened_errors()
        uncertainty = mlp_uncertainty(
            machine,
            args.bandwidth * GIGA,
            bandwidth_rel_error=bw_err,
            latency_rel_error=lat_err,
            profile=profile,
        )
        print(
            "analytic fast path: error budget widened to "
            f"±{bw_err:.0%} bandwidth / ±{lat_err:.0%} latency "
            "(cross-validated model error; see docs/QUEUEING.md)"
        )
        print(uncertainty.render())
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .io import (
        analyze_measurements,
        from_csv,
        from_csv_degraded,
        from_perf_output,
    )

    machine = get_machine(args.machine)
    text = Path(args.file).read_text()
    if args.format == "csv":
        if args.lenient:
            from .core.report import render_data_quality
            from .core.uncertainty import quality_widened_errors

            measurements, issues = from_csv_degraded(text)
            if issues:
                print(render_data_quality(issues))
                bw_err, lat_err = quality_widened_errors(issues)
                print(
                    f"error budget widened to ±{bw_err:.0%} bandwidth / "
                    f"±{lat_err:.0%} latency"
                )
                print()
        else:
            measurements = from_csv(text)
    else:
        if args.seconds is None:
            print("error: --seconds is required for perf input", file=sys.stderr)
            return 2
        measurements = [
            from_perf_output(
                text, machine, elapsed_seconds=args.seconds, routine=args.routine
            )
        ]
    for report in analyze_measurements(machine, measurements):
        print(report.render())
        print()
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments.harness import reproduce_table_timed
    from .perf.parallel import fan_out

    _apply_perf_flags(args)
    if args.json:
        from .experiments.export import export_json

        export_json(args.json)
        print(f"wrote reproduction data to {args.json}")
        return 0

    if args.table == "all":
        from .experiments.paperdata import CASE_STUDY_TABLES

        names = list(CASE_STUDY_TABLES)
    else:
        names = [args.table]
    timed = fan_out(reproduce_table_timed, names, jobs=args.jobs)
    ok = True
    for entry in timed:
        print(entry.table.render())
        print(entry.summary())
        print()
        ok = ok and entry.table.all_ok
    _print_cache_summary()
    print("overall:", "all rows within tolerance" if ok else "SOME ROWS OUT OF BAND")
    return 0 if ok else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .perf.cache import cached_run_trace
    from .sim import SimConfig

    _apply_perf_flags(args)
    machine = get_machine(args.machine)
    steps = tuple(args.steps.split(",")) if args.steps else ()
    if args.trace:
        # Imported trace file: skip generation entirely (the point of
        # ``repro trace export``); the thread count decides the cores.
        from .io import load_trace

        trace = load_trace(args.trace)
        routine = trace.routine
        cores = args.cores if args.cores is not None else len(trace.threads)
        label = f"from {args.trace}"
    else:
        if not args.workload:
            print(
                "error: either --workload or --trace is required",
                file=sys.stderr,
            )
            return 2
        from .workloads import get_workload
        from .workloads.base import TraceSpec

        workload = get_workload(args.workload)
        routine = workload.routine
        cores = args.cores if args.cores is not None else 2
        trace = workload.generate_trace(
            machine,
            steps=steps,
            spec=TraceSpec(threads=cores, accesses_per_thread=args.accesses),
        )
        label = "+ " + ", ".join(steps) if steps else "base"
    stats = cached_run_trace(
        trace,
        SimConfig(
            machine=machine,
            sim_cores=cores,
            window_per_core=args.window,
            batch=args.batch,
            batch_miss=args.batch_miss,
        ),
    )
    print(
        f"simulated {routine} ({label}) on a {cores}-core "
        f"{machine.name} slice:"
    )
    print(
        f"  elapsed {ns_to_us(stats.elapsed_ns):.1f} us, "
        f"slice bandwidth {to_gb_per_s(stats.bandwidth_bytes_per_s()):.1f} GB/s"
    )
    print(
        f"  L1 MSHR occ {stats.avg_occupancy(1):.2f} "
        f"(full {stats.mshr_full_fraction(1):.0%} of time), "
        f"L2 MSHR occ {stats.avg_occupancy(2):.2f}"
    )
    print(f"  prefetch fraction {stats.memory.prefetch_fraction:.0%}")
    _print_batch_notice(args, stats)
    print()
    report = RoutineAnalyzer(machine).analyze_run(stats)
    print(report.render())
    _print_sanitizer_summary()
    _print_cache_summary()
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .io import save_trace
    from .workloads import get_workload
    from .workloads.base import TraceSpec

    machine = get_machine(args.machine)
    workload = get_workload(args.workload)
    steps = tuple(args.steps.split(",")) if args.steps else ()
    spec_kwargs = {"threads": args.threads, "accesses_per_thread": args.accesses}
    if args.seed is not None:
        spec_kwargs["seed"] = args.seed
    trace = workload.generate_trace(
        machine, steps=steps, spec=TraceSpec(**spec_kwargs)
    )
    meta = save_trace(args.out, trace, compress=args.compress)
    size = Path(args.out).stat().st_size
    print(
        f"wrote {args.out}: {meta['routine']} trace, "
        f"{len(meta['thread_ids'])} threads x {args.accesses} accesses, "
        f"{size} bytes{' (compressed)' if args.compress else ''}"
    )
    print(f"sha256 {meta['sha256']}")
    return 0


def _cmd_trace_import(args: argparse.Namespace) -> int:
    from .io import load_trace
    from .sim.coltrace import trace_digest

    trace = load_trace(args.file, verify=not args.no_verify)
    print(
        f"{args.file}: {trace.routine} trace, {len(trace.threads)} threads, "
        f"{trace.total_accesses} accesses ({trace.total_demand} demand), "
        f"line_bytes={trace.line_bytes}"
    )
    for thread in trace.threads:
        print(
            f"  thread {thread.thread_id}: {len(thread)} accesses "
            f"({thread.demand_count} demand)"
        )
    verified = "verified" if not args.no_verify else "unverified"
    print(f"sha256 {trace_digest(trace)} ({verified})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import LintRunner, all_rules, get_rule, render_json, render_text

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.prefix:6s} {rule.name}: {rule.description}")
        return 0
    if args.select:
        rules = tuple(
            get_rule(prefix.strip()) for prefix in args.select.split(",") if prefix.strip()
        )
    else:
        rules = all_rules()
    if args.ignore:
        # get_rule validates each prefix (typos should fail loudly, not
        # silently ignore nothing).
        ignored = {
            get_rule(prefix.strip()).prefix
            for prefix in args.ignore.split(",")
            if prefix.strip()
        }
        rules = tuple(rule for rule in rules if rule.prefix not in ignored)
    paths = [Path(p) for p in args.paths] if args.paths else _default_lint_paths()
    result = LintRunner(rules).run(paths)
    print(render_json(result) if args.format == "json" else render_text(result))
    if args.strict and result.violations:
        return 1
    return result.exit_code


def _default_lint_paths() -> "List[Path]":
    """``src`` and ``tests`` when run from a checkout, else the cwd."""
    from pathlib import Path

    candidates = [Path("src"), Path("tests")]
    existing = [p for p in candidates if p.is_dir()]
    return existing or [Path(".")]


def _cmd_headroom(args: argparse.Namespace) -> int:
    from .core.sweep import headroom_map, render_headroom_map

    machine = get_machine(args.machine)
    print(f"recipe verdict map for {machine.describe()}\n")
    print(render_headroom_map(headroom_map(machine)))
    return 0


def _cmd_figure2(_: argparse.Namespace) -> int:
    from .experiments.figure2 import reproduce_figure2

    print(reproduce_figure2().render())
    return 0


def _cmd_recipe_score(_: argparse.Namespace) -> int:
    from .experiments.figure1 import reproduce_figure1

    fig1 = reproduce_figure1()
    print(fig1.render())
    return 0 if fig1.unexplained_disagreements == 0 else 1


def _cmd_advisor(args: argparse.Namespace) -> int:
    from .core.advisor import Advisor
    from .workloads import get_workload

    _apply_perf_flags(args)
    machine = get_machine(args.machine)
    workload = get_workload(args.workload)
    result = Advisor(workload, machine, fast=args.fast).run()
    print(result.render())
    if result.final_prediction is not None:
        _print_point_diagnostics(result.final_prediction.point, args)
    return 0


def _cmd_crossval_analytic(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .experiments.analytic_crossval import (
        crossval_analytic,
        render_analytic_crossval,
        rows_to_json,
        table_ok,
    )

    _apply_perf_flags(args)
    machines = [get_machine(name) for name in args.machine] if args.machine else None
    rows = crossval_analytic(machines=machines)
    print(render_analytic_crossval(rows))
    _print_cache_summary()
    if args.json:
        Path(args.json).write_text(rows_to_json(rows))
        print(f"wrote error table to {args.json}")
    if not table_ok(rows):
        print(
            "FAIL: an eligible cell exceeds the documented error bound "
            "(or a fallback lacks a reason)",
            file=sys.stderr,
        )
        return 1
    return 0


def _parse_size(text: str) -> int:
    """Byte count with optional K/M/G/T suffix (powers of 1024)."""
    scales = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}
    raw = text.strip()
    scale = scales.get(raw[-1:].upper(), 1)
    if scale != 1:
        raw = raw[:-1]
    try:
        value = int(float(raw) * scale)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (expected e.g. 500M, 2G, or bytes)"
        )
    if value < 0:
        raise argparse.ArgumentTypeError("size must be non-negative")
    return value


def _parse_age(text: str) -> float:
    """Seconds with optional s/m/h/d/w suffix."""
    scales = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
    raw = text.strip()
    scale = scales.get(raw[-1:].lower(), 0.0)
    if scale:
        raw = raw[:-1]
    else:
        scale = 1.0
    try:
        value = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid age {text!r} (expected e.g. 30d, 12h, 45m, or seconds)"
        )
    if value < 0:
        raise argparse.ArgumentTypeError("age must be non-negative")
    return value


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from .perf.cache import gc_cache, get_cache

    cache = get_cache()
    if not cache.enabled:
        print("sim cache: disabled")
        return 0
    if args.max_bytes is None and args.max_age is None:
        print(
            "error: cache gc needs --max-bytes and/or --max-age",
            file=sys.stderr,
        )
        return 2
    result = gc_cache(cache, max_bytes=args.max_bytes, max_age_s=args.max_age)
    print(
        f"evicted {result.removed_entries} entr(ies), "
        f"{result.removed_bytes} bytes; kept {result.kept_entries} "
        f"entr(ies), {result.kept_bytes} bytes ({cache.cache_dir})"
    )
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from .perf.cache import collect_stats, get_cache

    cache = get_cache()
    if not cache.enabled:
        print("sim cache: disabled")
        return 0
    stats = collect_stats(cache)
    print(f"cache directory: {stats.cache_dir}")
    for kind, usage in sorted(stats.usage.items()):
        print(f"  {kind:<12s} {usage.entries:6d} entr(ies), {usage.total_bytes:10d} bytes")
    print(
        f"  {'total':<12s} {stats.total_entries:6d} entr(ies), "
        f"{stats.total_bytes:10d} bytes"
        + (f", {stats.corrupt_entries} quarantined" if stats.corrupt_entries else "")
    )
    tallies = stats.tallies
    print(
        f"lifetime tallies: {tallies.summary()}, {tallies.errors} error(s)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLP/Little's-law performance analysis "
        "(ISPASS 2022 reproduction)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print solver diagnostics (iterations, final residual)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared execution-performance flags for simulation-backed commands.
    perf_flags = argparse.ArgumentParser(add_help=False)
    perf_flags.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for independent simulations "
        "(default: REPRO_JOBS or serial; 0 = one per CPU)",
    )
    perf_flags.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed simulation result cache",
    )
    perf_flags.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="batch-stepping fast path: retire provable L1-hit runs "
        "vectorized, falling back to the event engine for the miss "
        "stream (results are bit-identical; --no-batch forces the "
        "pure event engine)",
    )
    perf_flags.add_argument(
        "--batch-miss",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="batched miss retirement: also retire runs containing "
        "misses closed-form when the replay is provably exact "
        "(requires --batch; results are bit-identical; "
        "--no-batch-miss restricts batching to all-hit runs)",
    )
    perf_flags.add_argument(
        "--retries",
        type=int,
        default=None,
        help="per-item retries for failing simulations "
        "(default: REPRO_RETRIES or 0; crashed/hung workers always get "
        "a small retry budget)",
    )
    perf_flags.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-task timeout in seconds with --jobs > 1 "
        "(default: REPRO_TIMEOUT_S or none; 0 disables)",
    )
    perf_flags.add_argument(
        "--sanitize",
        action="store_true",
        help="reprosan instrumented mode: audit Little's Law per queue, "
        "MSHR allocate/release balance, batch-replay equivalence, and "
        "stats conservation during the run (same as REPRO_SANITIZE=1; "
        "results are bit-identical but the run bypasses the sim cache)",
    )

    sub.add_parser("machines", help="list modeled platforms").set_defaults(
        func=_cmd_machines
    )

    p_char = sub.add_parser(
        "characterize", help="measure a latency profile", parents=[perf_flags]
    )
    p_char.add_argument("--machine", required=True, choices=machine_names())
    p_char.add_argument("--levels", type=int, default=12, help="load levels")
    p_char.add_argument("--out", help="save profile JSON here")
    p_char.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="record each completed load level to this JSONL checkpoint",
    )
    p_char.add_argument(
        "--resume",
        action="store_true",
        help="replay completed levels from --checkpoint instead of "
        "starting over",
    )
    p_char.add_argument(
        "--fast",
        action="store_true",
        help="answer from the calibrated closed-form queueing model "
        "(microseconds instead of a full simulated sweep; probe "
        "calibration is cached per machine; declines with a stated "
        "reason under --sanitize)",
    )
    p_char.set_defaults(func=_cmd_characterize)

    p_an = sub.add_parser("analyze", help="analyze one routine measurement")
    p_an.add_argument("--machine", required=True, choices=machine_names())
    p_an.add_argument(
        "--bandwidth", type=float, required=True, help="observed GB/s"
    )
    p_an.add_argument(
        "--pattern",
        choices=[p.value for p in AccessPattern],
        default="streaming",
        help="access pattern (decides the binding MSHR file)",
    )
    p_an.add_argument("--routine", default="kernel")
    p_an.add_argument(
        "--fast",
        action="store_true",
        help="analyze against the calibrated closed-form latency curve "
        "and report cross-validated (widened) error bars",
    )
    p_an.set_defaults(func=_cmd_analyze)

    p_ing = sub.add_parser(
        "ingest", help="analyze measured counter data (CSV or perf output)"
    )
    p_ing.add_argument("--machine", required=True, choices=machine_names())
    p_ing.add_argument("--file", required=True, help="measurement file")
    p_ing.add_argument("--format", choices=["csv", "perf"], default="csv")
    p_ing.add_argument(
        "--seconds", type=float, help="elapsed time (perf format only)"
    )
    p_ing.add_argument("--routine", default="kernel")
    p_ing.add_argument(
        "--lenient",
        action="store_true",
        help="degraded mode (CSV only): skip bad rows, report them as "
        "data-quality issues, and widen the error budget",
    )
    p_ing.set_defaults(func=_cmd_ingest)

    p_rep = sub.add_parser(
        "reproduce", help="regenerate paper tables", parents=[perf_flags]
    )
    p_rep.add_argument(
        "--table",
        default="all",
        choices=["all", "isx", "hpcg", "pennant", "comd", "minighost", "snap"],
    )
    p_rep.add_argument(
        "--json", help="write the full reproduction (tables + figures) as JSON"
    )
    p_rep.set_defaults(func=_cmd_reproduce)

    p_sim = sub.add_parser(
        "simulate",
        help="run a workload trace on the simulator and analyze it",
        parents=[perf_flags],
    )
    p_sim.add_argument("--machine", required=True, choices=machine_names())
    p_sim.add_argument(
        "--workload",
        choices=["isx", "hpcg", "pennant", "comd", "minighost", "snap"],
        help="workload to generate a trace for (or use --trace)",
    )
    p_sim.add_argument(
        "--trace",
        metavar="FILE",
        help="simulate a trace file written by `repro trace export` "
        "instead of generating one",
    )
    p_sim.add_argument(
        "--steps", default="", help="comma-separated transforms, e.g. l2_prefetch"
    )
    p_sim.add_argument(
        "--cores",
        type=int,
        default=None,
        help="simulated cores (default: 2, or the trace's thread count "
        "with --trace)",
    )
    p_sim.add_argument("--accesses", type=int, default=3000, help="per thread")
    p_sim.add_argument("--window", type=int, default=14, help="per-core window")
    p_sim.set_defaults(func=_cmd_simulate)

    p_trace = sub.add_parser(
        "trace", help="export/import on-disk (mmap-able) trace files"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_texp = trace_sub.add_parser(
        "export", help="generate a workload trace and write it to a file"
    )
    p_texp.add_argument("--machine", required=True, choices=machine_names())
    p_texp.add_argument(
        "--workload",
        required=True,
        choices=["isx", "hpcg", "pennant", "comd", "minighost", "snap"],
    )
    p_texp.add_argument(
        "--steps", default="", help="comma-separated transforms, e.g. l2_prefetch"
    )
    p_texp.add_argument("--threads", type=int, default=2, help="trace threads")
    p_texp.add_argument("--accesses", type=int, default=3000, help="per thread")
    p_texp.add_argument(
        "--seed", type=int, default=None, help="trace RNG seed (default: spec)"
    )
    p_texp.add_argument("--out", required=True, help="output trace file path")
    p_texp.add_argument(
        "--compress",
        action="store_true",
        help="smaller file; loads copy instead of memory-mapping",
    )
    p_texp.set_defaults(func=_cmd_trace_export)
    p_timp = trace_sub.add_parser(
        "import", help="read a trace file and print its summary"
    )
    p_timp.add_argument("file", help="trace file to read")
    p_timp.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the content-digest integrity check",
    )
    p_timp.set_defaults(func=_cmd_trace_import)

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint (domain rules: determinism, units, cache keys, "
        "slots, machine specs)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    p_lint.add_argument(
        "--select",
        help="comma-separated rule prefixes to run (e.g. DET,UNIT)",
    )
    p_lint.add_argument(
        "--ignore",
        help="comma-separated rule prefixes to skip (applied after --select)",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any finding, promoting warnings to build failures",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_head = sub.add_parser(
        "headroom", help="recipe verdict map across utilizations/patterns"
    )
    p_head.add_argument("--machine", required=True, choices=machine_names())
    p_head.set_defaults(func=_cmd_headroom)

    sub.add_parser("figure2", help="extended-roofline experiment").set_defaults(
        func=_cmd_figure2
    )
    sub.add_parser(
        "recipe-score", help="Figure 1 recipe-accuracy summary"
    ).set_defaults(func=_cmd_recipe_score)

    p_adv = sub.add_parser(
        "advisor",
        help="run the Figure-1 recipe loop to convergence",
        parents=[perf_flags],
    )
    p_adv.add_argument("--machine", required=True, choices=machine_names())
    p_adv.add_argument(
        "--workload",
        required=True,
        choices=["isx", "hpcg", "pennant", "comd", "minighost", "snap"],
    )
    p_adv.add_argument(
        "--fast",
        action="store_true",
        help="solve operating points with the closed-form queueing model "
        "where eligible; ineligible states fall back to the full solver "
        "with a stated reason",
    )
    p_adv.set_defaults(func=_cmd_advisor)

    p_cv = sub.add_parser(
        "crossval-analytic",
        help="analytic-vs-simulator error table for the --fast mode "
        "(exits 1 if an eligible cell breaks the documented bound)",
        parents=[perf_flags],
    )
    p_cv.add_argument(
        "--machine",
        action="append",
        choices=machine_names(),
        help="restrict to this machine (repeatable; default: the three "
        "paper machines)",
    )
    p_cv.add_argument("--json", help="also write the table as JSON here")
    p_cv.set_defaults(func=_cmd_crossval_analytic)

    p_cache = sub.add_parser(
        "cache", help="inspect the content-addressed result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser(
        "stats",
        help="entry counts, bytes, and lifetime hit/miss tallies per store",
    ).set_defaults(func=_cmd_cache_stats)
    p_gc = cache_sub.add_parser(
        "gc",
        help="evict entries oldest-first to fit a byte budget and/or "
        "age horizon (quarantined .corrupt files are left for forensics)",
    )
    p_gc.add_argument(
        "--max-bytes",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="byte budget, e.g. 500M or 2G (K/M/G/T suffixes, powers "
        "of 1024; plain numbers are bytes)",
    )
    p_gc.add_argument(
        "--max-age",
        type=_parse_age,
        default=None,
        metavar="AGE",
        help="drop entries older than this, e.g. 30d, 12h, 45m "
        "(s/m/h/d/w suffixes; plain numbers are seconds)",
    )
    p_gc.set_defaults(func=_cmd_cache_gc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
