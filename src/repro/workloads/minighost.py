"""MiniGhost — 27-point difference stencil (Section IV-E, Table VIII).

The 3D loop nest auto-vectorizes and exposes many unit-stride streams,
so the hardware prefetcher covers it and the **L2 MSHR file binds**.
The base versions already run high bandwidth (73 % SKL / 58 % KNL /
56 % A64FX), so the recipe's lever is **loop tiling**: it cuts total
memory accesses via cache reuse.  The paper's per-machine outcomes
differ instructively:

* SKL: tiling raises the access *rate* faster than it cuts volume —
  bandwidth climbs to 84 % and occupancy to 10.32; with bandwidth then
  saturated, 2-way SMT returns only 1.02x;
* KNL: tiling cuts effective traffic ~24 % (1.47x) but SMT adds cache
  contention between hyperthreads (the paper observes the extra
  misses), so 2- and 4-way SMT return 1.0x despite MSHR headroom —
  the recipe's documented cache-residency-contention caveat;
* A64FX: tiling cuts traffic ~36 % (1.51x) and *lowers* occupancy
  (8.38 → 7.85), the paper's example of tiling reducing MSHRQ pressure
  while improving performance.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.classify import AccessPattern
from ..machines.spec import MachineSpec
from ..optim.transforms import TransformEffect
from ..sim.coltrace import ColumnarThreadTrace, ColumnarTrace, concat_columns
from .base import MachineCalibration, TraceSpec, Workload
from .generators import unit_streams


class MinighostWorkload(Workload):
    """MiniGhost ``mg_stencil_3d27pt`` model."""

    def __init__(self) -> None:
        super().__init__(
            name="minighost",
            routine="mg_stencil_3d27pt",
            description="Difference stencil miniapp (27-point)",
            problem_size="nx=504, ny=126, nz=768, num_vars=40",
            pattern=AccessPattern.STREAMING,
            random_fraction=0.02,
            calibrations={
                "skl": MachineCalibration(
                    demand_mlp=7.07,
                    binding_level=2,
                    row_plan=(
                        ((), "loop_tiling"),
                        (("loop_tiling",), "smt2"),
                    ),
                ),
                "knl": MachineCalibration(
                    demand_mlp=11.26,
                    binding_level=2,
                    row_plan=(
                        ((), "loop_tiling"),
                        (("loop_tiling",), "smt2"),
                        (("loop_tiling", "smt2"), "smt4"),
                    ),
                ),
                "a64fx": MachineCalibration(
                    demand_mlp=8.38,
                    binding_level=2,
                    row_plan=(
                        ((), "loop_tiling"),
                        (("loop_tiling",), None),
                    ),
                ),
            },
            effects={
                "loop_tiling@skl": TransformEffect(
                    demand_factor=1.460,
                    traffic_factor=1.011,
                    rationale="tiling raises the request rate more than it "
                    "cuts SKL's volume (7.07 -> 10.32; paper 1.14x)",
                ),
                "loop_tiling@knl": TransformEffect(
                    demand_factor=1.136,
                    traffic_factor=0.762,
                    rationale="reuse removes ~24% of effective traffic "
                    "(11.26 -> 12.79; paper 1.47x - higher latency avoided)",
                ),
                "loop_tiling@a64fx": TransformEffect(
                    demand_factor=0.937,
                    traffic_factor=0.638,
                    rationale="tiling lowers occupancy while improving "
                    "performance (8.38 -> 7.85; paper 1.51x)",
                ),
                "smt2@skl": TransformEffect(
                    demand_factor=1.10,
                    traffic_factor=1.005,
                    smt_ways=2,
                    rationale="bandwidth already ~96% of achievable: SMT "
                    "returns a mere 1.02x",
                ),
                "smt2@knl": TransformEffect(
                    demand_factor=1.074,
                    traffic_factor=1.053,
                    smt_ways=2,
                    rationale="hyperthreads contend for L2/LLC residency; "
                    "extra misses cancel the MLP gain (paper 1.0x)",
                ),
                "smt4@knl": TransformEffect(
                    demand_factor=1.05,
                    traffic_factor=1.05,
                    smt_ways=4,
                    rationale="more cache thrashing, no net gain (paper 1.0x)",
                ),
            },
        )

    def generate_trace(
        self,
        machine: MachineSpec,
        *,
        steps: Sequence[str] = (),
        spec: Optional[TraceSpec] = None,
    ) -> ColumnarTrace:
        """Many unit-stride plane streams + a store stream.

        Tiling is modeled by revisiting a block: the same stream
        region is traversed in shorter segments that refit the L2.
        """
        spec = spec or TraceSpec()
        line = machine.line_bytes
        tiled = "loop_tiling" in steps
        gap = 2.0
        n_streams = 10
        threads = []
        for t in range(spec.threads):
            if tiled:
                # Shorter stream segments with re-traversal: extra L2 hits.
                segment = spec.accesses_per_thread // 4
                accesses = concat_columns(
                    [
                        unit_streams(
                            segment,
                            line,
                            streams=n_streams,
                            region_id=16 * t + (rep % 2),
                            element_bytes=8,
                            gap_cycles=gap,
                            store_stream=True,
                        )
                        for rep in range(4)
                    ]
                )
            else:
                accesses = unit_streams(
                    spec.accesses_per_thread,
                    line,
                    streams=n_streams,
                    region_id=16 * t,
                    element_bytes=8,
                    gap_cycles=gap,
                    store_stream=True,
                )
            threads.append(ColumnarThreadTrace.from_columns(t, accesses))
        return ColumnarTrace(
            tuple(threads), routine=self.routine, line_bytes=line
        )


MINIGHOST = MinighostWorkload()
