"""Access-pattern building blocks for workload trace generators.

Each helper emits a list of :class:`~repro.sim.trace.Access` records
with a distinct statistical signature:

* :func:`random_updates` — read-modify-write at random lines over a
  large region (ISx bucket counting): defeats the stream prefetcher;
* :func:`unit_streams` — N interleaved unit-stride streams
  (MiniGhost planes, HPCG matrix arrays): trains the prefetcher;
* :func:`gather_accesses` — indexed loads over a region with tunable
  locality (HPCG ``x`` vector, PENNANT mesh arrays);
* :func:`short_bursts` — short unit-stride runs with jumps between
  them (SNAP's small inner loops): too short for timely hardware
  prefetch;
* :func:`cached_compute` — accesses inside a small, cache-resident
  footprint separated by large compute gaps (CoMD force loops).

All helpers take an explicit ``random.Random`` so traces are
reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import TraceError
from ..sim.trace import Access, AccessKind

#: Spacing between logical regions, large enough to avoid set collisions.
REGION_STRIDE = 256 * 1024 * 1024

#: Seed space for per-thread RNG forks (fits any 32-bit seed consumer).
_THREAD_SEED_BOUND = 2**31


def spawn_thread_rng(rng: random.Random) -> random.Random:
    """Fork a deterministic per-thread RNG from a parent trace RNG.

    Every workload generator seeds one parent ``random.Random`` from
    ``TraceSpec.seed`` and derives one child per simulated thread so the
    per-thread access streams are independent yet fully reproducible.
    This helper is the single blessed derivation pattern (the
    determinism lint rule DET002 forbids unseeded ``random.Random()``
    in trace generation; this is the alternative it points at).
    """
    return random.Random(rng.randrange(_THREAD_SEED_BOUND))


def region_base(region_id: int) -> int:
    """Byte base address of a numbered region."""
    if region_id < 0:
        raise TraceError("region_id must be >= 0")
    return region_id * REGION_STRIDE


def random_updates(
    count: int,
    line_bytes: int,
    rng: random.Random,
    *,
    region_id: int = 0,
    region_bytes: int = 128 * 1024 * 1024,
    gap_cycles: float = 2.0,
    write_fraction: float = 0.5,
    prefetch_to_l2: bool = False,
    prefetch_distance: int = 8,
) -> List[Access]:
    """Random-line read(-modify-write) accesses; optional L2 SW prefetch.

    With ``prefetch_to_l2`` the generator emits an ``SWPF_L2`` for the
    line that will be touched ``prefetch_distance`` updates later —
    the ISx optimization, software pipelined exactly as a compiler
    would emit it.
    """
    if count <= 0:
        raise TraceError("count must be positive")
    base = region_base(region_id)
    lines = region_bytes // line_bytes
    targets = [rng.randrange(lines) * line_bytes + base for _ in range(count)]
    out: List[Access] = []
    for i, addr in enumerate(targets):
        if prefetch_to_l2 and i + prefetch_distance < count:
            out.append(
                Access(targets[i + prefetch_distance], AccessKind.SWPF_L2, 0.5)
            )
        write = rng.random() < write_fraction
        kind = AccessKind.STORE if write else AccessKind.LOAD
        out.append(Access(addr, kind, gap_cycles))
    return out


def unit_streams(
    count: int,
    line_bytes: int,
    *,
    streams: int = 8,
    region_id: int = 0,
    element_bytes: Optional[int] = None,
    gap_cycles: float = 2.0,
    store_stream: bool = False,
) -> List[Access]:
    """``streams`` interleaved unit-stride streams; last one may store."""
    if count <= 0 or streams <= 0:
        raise TraceError("count and streams must be positive")
    stride = element_bytes if element_bytes else line_bytes
    bases = [
        region_base(region_id) + s * (32 * 1024 * 1024) for s in range(streams)
    ]
    offsets = [0] * streams
    out: List[Access] = []
    for i in range(count):
        s = i % streams
        kind = (
            AccessKind.STORE
            if store_stream and s == streams - 1
            else AccessKind.LOAD
        )
        out.append(Access(bases[s] + offsets[s], kind, gap_cycles))
        offsets[s] += stride
    return out


def gather_accesses(
    count: int,
    line_bytes: int,
    rng: random.Random,
    *,
    region_id: int = 0,
    region_bytes: int = 64 * 1024 * 1024,
    locality: float = 0.0,
    window_lines: int = 512,
    gap_cycles: float = 3.0,
) -> List[Access]:
    """Indexed loads with tunable locality.

    ``locality`` is the probability that the next gather lands within a
    sliding window of ``window_lines`` around the previous target
    (HPCG's 27-neighbor structure has high locality; PENNANT's corner
    indirection much less).
    """
    if not 0.0 <= locality <= 1.0:
        raise TraceError("locality must be in [0,1]")
    base = region_base(region_id)
    lines = max(window_lines + 1, region_bytes // line_bytes)
    current = rng.randrange(lines)
    out: List[Access] = []
    for _ in range(count):
        if rng.random() < locality:
            lo = max(0, current - window_lines // 2)
            hi = min(lines - 1, current + window_lines // 2)
            current = rng.randint(lo, hi)
        else:
            current = rng.randrange(lines)
        out.append(Access(base + current * line_bytes, AccessKind.LOAD, gap_cycles))
    return out


def short_bursts(
    count: int,
    line_bytes: int,
    rng: random.Random,
    *,
    region_id: int = 0,
    burst_elements: int = 48,
    element_bytes: int = 8,
    gap_cycles: float = 4.0,
    sw_prefetch: bool = False,
    region_bytes: int = 64 * 1024 * 1024,
) -> List[Access]:
    """Short unit-stride bursts with jumps (SNAP's small inner loops).

    With ``sw_prefetch``, each burst is preceded by ``SWPF_L1`` touches
    of the burst's lines — the directive-driven prefetching the paper
    applies to ``dim3_sweep``.
    """
    if burst_elements <= 0:
        raise TraceError("burst_elements must be positive")
    base = region_base(region_id)
    lines = region_bytes // line_bytes
    out: List[Access] = []
    emitted = 0
    while emitted < count:
        start = rng.randrange(lines) * line_bytes + base
        burst_lines = max(1, burst_elements * element_bytes // line_bytes)
        if sw_prefetch:
            for j in range(burst_lines):
                out.append(Access(start + j * line_bytes, AccessKind.SWPF_L1, 0.5))
        n = min(burst_elements, count - emitted)
        for j in range(n):
            out.append(Access(start + j * element_bytes, AccessKind.LOAD, gap_cycles))
        emitted += n
    return out


def cached_compute(
    count: int,
    line_bytes: int,
    rng: random.Random,
    *,
    region_id: int = 0,
    footprint_bytes: int = 24 * 1024,
    miss_fraction: float = 0.02,
    cold_region_bytes: int = 64 * 1024 * 1024,
    gap_cycles: float = 20.0,
) -> List[Access]:
    """Cache-resident accesses with rare cold misses and big compute gaps.

    Models CoMD's ``eamForce``: neighbor data mostly fits in cache, a
    small fraction of touches goes to memory, and heavy floating-point
    work separates memory operations.
    """
    if not 0.0 <= miss_fraction <= 1.0:
        raise TraceError("miss_fraction must be in [0,1]")
    hot_base = region_base(region_id)
    cold_base = region_base(region_id) + REGION_STRIDE // 2
    hot_lines = max(1, footprint_bytes // line_bytes)
    cold_lines = cold_region_bytes // line_bytes
    out: List[Access] = []
    for _ in range(count):
        if rng.random() < miss_fraction:
            addr = cold_base + rng.randrange(cold_lines) * line_bytes
        else:
            addr = hot_base + rng.randrange(hot_lines) * line_bytes
        out.append(Access(addr, AccessKind.LOAD, gap_cycles))
    return out
