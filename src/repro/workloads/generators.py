"""Access-pattern building blocks for workload trace generators.

Each helper emits an :class:`~repro.sim.coltrace.AccessColumns` run
(structure-of-arrays: addresses, kind codes, gaps) with a distinct
statistical signature:

* :func:`random_updates` — read-modify-write at random lines over a
  large region (ISx bucket counting): defeats the stream prefetcher;
* :func:`unit_streams` — N interleaved unit-stride streams
  (MiniGhost planes, HPCG matrix arrays): trains the prefetcher;
* :func:`gather_accesses` — indexed loads over a region with tunable
  locality (HPCG ``x`` vector, PENNANT mesh arrays);
* :func:`short_bursts` — short unit-stride runs with jumps between
  them (SNAP's small inner loops): too short for timely hardware
  prefetch;
* :func:`cached_compute` — accesses inside a small, cache-resident
  footprint separated by large compute gaps (CoMD force loops).

All helpers take an explicit seeded :class:`numpy.random.Generator`
(fork one per thread via :func:`spawn_thread_generator`) so traces are
reproducible, and are fully vectorized: generation cost is a handful of
array operations regardless of trace length.

.. note:: **Trace-content break (one-time).**  These generators were
   rewritten from per-access ``random.Random`` loops to vectorized
   ``numpy.random.Generator`` draws.  The seed-derivation scheme is
   unchanged (``TraceSpec.seed`` -> parent ``random.Random`` -> one
   child seed per thread), but the drawn values differ, so every
   generated trace changed content exactly once at this rewrite.  The
   perf-cache ``SCHEMA_VERSION`` was bumped alongside, so no stale
   cached simulation results can be replayed against the new traces.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np

from ..errors import TraceError
from ..sim.coltrace import (
    ADDR_DTYPE,
    GAP_DTYPE,
    KIND_CODES,
    KIND_DTYPE,
    AccessColumns,
)
from ..sim.trace import AccessKind

#: Spacing between logical regions, large enough to avoid set collisions.
REGION_STRIDE = 256 * 1024 * 1024

#: Spacing between stream bases inside one region (see unit_streams).
_STREAM_STRIDE = 32 * 1024 * 1024

#: Seed space for per-thread RNG forks (fits any 32-bit seed consumer).
_THREAD_SEED_BOUND = 2**31

_LOAD = KIND_CODES[AccessKind.LOAD]
_STORE = KIND_CODES[AccessKind.STORE]
_SWPF_L1 = KIND_CODES[AccessKind.SWPF_L1]
_SWPF_L2 = KIND_CODES[AccessKind.SWPF_L2]

#: Gap charged for a software-prefetch instruction (address generation
#: plus issue; no dependent work waits on it).
_PREFETCH_GAP = 0.5


def spawn_thread_rng(rng: random.Random) -> random.Random:
    """Fork a deterministic per-thread ``random.Random`` from a parent.

    Retained for scalar consumers (e.g. pointer-chase kernels); the
    vectorized generators in this module take the numpy fork from
    :func:`spawn_thread_generator` instead.  Both derive the child seed
    the same way, from the same parent stream.
    """
    return random.Random(rng.randrange(_THREAD_SEED_BOUND))


def spawn_thread_generator(rng: random.Random) -> np.random.Generator:
    """Fork a deterministic per-thread numpy Generator from a parent RNG.

    Every workload generator seeds one parent ``random.Random`` from
    ``TraceSpec.seed`` and derives one child per simulated thread so the
    per-thread access streams are independent yet fully reproducible.
    This helper is the single blessed derivation pattern for the
    vectorized generators (the determinism lint rule DET002 forbids
    unseeded ``numpy.random.default_rng()`` in trace generation; this
    is the alternative it points at).
    """
    return np.random.default_rng(rng.randrange(_THREAD_SEED_BOUND))


def region_base(region_id: int) -> int:
    """Byte base address of a numbered region."""
    if region_id < 0:
        raise TraceError("region_id must be >= 0")
    return region_id * REGION_STRIDE


def _addr_from_lines(base: int, line_idx: np.ndarray, line_bytes: int) -> np.ndarray:
    """Byte addresses from line indices (computed in int64, stored u8)."""
    return (base + line_idx.astype(np.int64) * line_bytes).astype(ADDR_DTYPE)


def random_updates(
    count: int,
    line_bytes: int,
    rng: np.random.Generator,
    *,
    region_id: int = 0,
    region_bytes: int = 128 * 1024 * 1024,
    gap_cycles: float = 2.0,
    write_fraction: float = 0.5,
    prefetch_to_l2: bool = False,
    prefetch_distance: int = 8,
) -> AccessColumns:
    """Random-line read(-modify-write) accesses; optional L2 SW prefetch.

    With ``prefetch_to_l2`` the generator emits an ``SWPF_L2`` for the
    line that will be touched ``prefetch_distance`` updates later —
    the ISx optimization, software pipelined exactly as a compiler
    would emit it.
    """
    if count <= 0:
        raise TraceError("count must be positive")
    base = region_base(region_id)
    lines = region_bytes // line_bytes
    targets = _addr_from_lines(base, rng.integers(0, lines, size=count), line_bytes)
    demand_kind = np.where(
        rng.random(count) < write_fraction, _STORE, _LOAD
    ).astype(KIND_DTYPE)
    if not prefetch_to_l2:
        return AccessColumns(
            targets, demand_kind, np.full(count, gap_cycles, GAP_DTYPE)
        )
    # Software-pipelined layout: updates 0..n_pf-1 are each preceded by a
    # prefetch of the target prefetch_distance updates ahead; the final
    # prefetch_distance updates have no lookahead left to prefetch.
    n_pf = max(0, count - prefetch_distance)
    total = count + n_pf
    addr = np.empty(total, ADDR_DTYPE)
    kind = np.empty(total, KIND_DTYPE)
    gap = np.empty(total, GAP_DTYPE)
    addr[0 : 2 * n_pf : 2] = targets[prefetch_distance:]
    addr[1 : 2 * n_pf : 2] = targets[:n_pf]
    addr[2 * n_pf :] = targets[n_pf:]
    kind[0 : 2 * n_pf : 2] = _SWPF_L2
    kind[1 : 2 * n_pf : 2] = demand_kind[:n_pf]
    kind[2 * n_pf :] = demand_kind[n_pf:]
    gap[0 : 2 * n_pf : 2] = _PREFETCH_GAP
    gap[1 : 2 * n_pf : 2] = gap_cycles
    gap[2 * n_pf :] = gap_cycles
    return AccessColumns(addr, kind, gap)


def unit_streams(
    count: int,
    line_bytes: int,
    *,
    streams: int = 8,
    region_id: int = 0,
    element_bytes: Optional[int] = None,
    gap_cycles: float = 2.0,
    store_stream: bool = False,
) -> AccessColumns:
    """``streams`` interleaved unit-stride streams; last one may store."""
    if count <= 0 or streams <= 0:
        raise TraceError("count and streams must be positive")
    stride = element_bytes if element_bytes else line_bytes
    base = region_base(region_id)
    idx = np.arange(count, dtype=np.int64)
    stream = idx % streams
    position = idx // streams
    addr = (base + stream * _STREAM_STRIDE + position * stride).astype(ADDR_DTYPE)
    kind = np.full(count, _LOAD, KIND_DTYPE)
    if store_stream:
        kind[stream == streams - 1] = _STORE
    return AccessColumns(addr, kind, np.full(count, gap_cycles, GAP_DTYPE))


def gather_accesses(
    count: int,
    line_bytes: int,
    rng: np.random.Generator,
    *,
    region_id: int = 0,
    region_bytes: int = 64 * 1024 * 1024,
    locality: float = 0.0,
    window_lines: int = 512,
    gap_cycles: float = 3.0,
) -> AccessColumns:
    """Indexed loads with tunable locality.

    ``locality`` is the probability that the next gather lands within a
    sliding window of ``window_lines`` around the previous target
    (HPCG's 27-neighbor structure has high locality; PENNANT's corner
    indirection much less).

    The walk is vectorized as a reset-cumsum: a non-local step jumps to
    a fresh uniform line and anchors the chain; local steps accumulate
    window offsets from the most recent anchor.  Positions are clipped
    to the region at the end rather than per step — for any realistic
    ``region_bytes``/``window_lines`` ratio the boundary is hit with
    vanishing probability, so the statistical signature is unchanged.
    """
    if count <= 0:
        raise TraceError("count must be positive")
    if not 0.0 <= locality <= 1.0:
        raise TraceError("locality must be in [0,1]")
    base = region_base(region_id)
    lines = max(window_lines + 1, region_bytes // line_bytes)
    start = int(rng.integers(0, lines))
    is_local = rng.random(count) < locality
    jumps = rng.integers(0, lines, size=count)
    half = window_lines // 2
    offsets = rng.integers(-half, half + 1, size=count)
    idx = np.arange(count, dtype=np.int64)
    # Index of the latest jump at-or-before each step (-1 = none yet).
    anchor = np.maximum.accumulate(np.where(~is_local, idx, -1))
    anchored = anchor >= 0
    chain_base = np.where(anchored, jumps[anchor], start)
    drift = np.cumsum(np.where(is_local, offsets, 0))
    drift_at_anchor = np.where(anchored, drift[anchor], 0)
    position = np.clip(chain_base + (drift - drift_at_anchor), 0, lines - 1)
    addr = _addr_from_lines(base, position, line_bytes)
    return AccessColumns(
        addr,
        np.full(count, _LOAD, KIND_DTYPE),
        np.full(count, gap_cycles, GAP_DTYPE),
    )


def short_bursts(
    count: int,
    line_bytes: int,
    rng: np.random.Generator,
    *,
    region_id: int = 0,
    burst_elements: int = 48,
    element_bytes: int = 8,
    gap_cycles: float = 4.0,
    sw_prefetch: bool = False,
    region_bytes: int = 64 * 1024 * 1024,
) -> AccessColumns:
    """Short unit-stride bursts with jumps (SNAP's small inner loops).

    With ``sw_prefetch``, each burst is preceded by ``SWPF_L1`` touches
    of the burst's lines — the directive-driven prefetching the paper
    applies to ``dim3_sweep``.
    """
    if count <= 0:
        raise TraceError("count must be positive")
    if burst_elements <= 0:
        raise TraceError("burst_elements must be positive")
    base = region_base(region_id)
    lines = region_bytes // line_bytes
    n_bursts = -(-count // burst_elements)  # ceil
    last_n = count - (n_bursts - 1) * burst_elements
    burst_lines = max(1, burst_elements * element_bytes // line_bytes)
    pf = burst_lines if sw_prefetch else 0
    per = pf + burst_elements
    starts = (
        base + rng.integers(0, lines, size=n_bursts).astype(np.int64) * line_bytes
    )
    # One row per burst: [prefetch columns][demand columns], then flatten
    # row-major — which reproduces the sequential emit order exactly.
    addr2 = np.empty((n_bursts, per), dtype=np.int64)
    if pf:
        addr2[:, :pf] = starts[:, None] + np.arange(pf) * line_bytes
    addr2[:, pf:] = starts[:, None] + np.arange(burst_elements) * element_bytes
    kind_row = np.full(per, _LOAD, KIND_DTYPE)
    kind_row[:pf] = _SWPF_L1
    gap_row = np.full(per, gap_cycles, GAP_DTYPE)
    gap_row[:pf] = _PREFETCH_GAP
    addr = addr2.reshape(-1).astype(ADDR_DTYPE)
    kind = np.tile(kind_row, n_bursts)
    gap = np.tile(gap_row, n_bursts)
    # The last burst prefetches all its lines but demands only last_n
    # elements; trim the surplus trailing demand slots.
    trim = burst_elements - last_n
    if trim:
        addr, kind, gap = addr[:-trim], kind[:-trim], gap[:-trim]
    return AccessColumns(addr, kind, gap)


def cached_compute(
    count: int,
    line_bytes: int,
    rng: np.random.Generator,
    *,
    region_id: int = 0,
    footprint_bytes: int = 24 * 1024,
    miss_fraction: float = 0.02,
    cold_region_bytes: int = 64 * 1024 * 1024,
    gap_cycles: float = 20.0,
) -> AccessColumns:
    """Cache-resident accesses with rare cold misses and big compute gaps.

    Models CoMD's ``eamForce``: neighbor data mostly fits in cache, a
    small fraction of touches goes to memory, and heavy floating-point
    work separates memory operations.
    """
    if count <= 0:
        raise TraceError("count must be positive")
    if not 0.0 <= miss_fraction <= 1.0:
        raise TraceError("miss_fraction must be in [0,1]")
    hot_base = region_base(region_id)
    cold_base = hot_base + REGION_STRIDE // 2
    hot_lines = max(1, footprint_bytes // line_bytes)
    cold_lines = cold_region_bytes // line_bytes
    miss = rng.random(count) < miss_fraction
    hot_addr = hot_base + rng.integers(0, hot_lines, size=count) * line_bytes
    cold_addr = cold_base + rng.integers(0, cold_lines, size=count) * line_bytes
    addr = np.where(miss, cold_addr, hot_addr).astype(ADDR_DTYPE)
    return AccessColumns(
        addr,
        np.full(count, _LOAD, KIND_DTYPE),
        np.full(count, gap_cycles, GAP_DTYPE),
    )
