"""The six paper applications (Table II) as workload models."""

from typing import Dict, Tuple

from .base import MachineCalibration, RowPlan, TraceSpec, Workload
from .comd import COMD, ComdWorkload
from .hpcg import HPCG, HpcgWorkload
from .isx import ISX, IsxWorkload
from .minighost import MINIGHOST, MinighostWorkload
from .pennant import PENNANT, PennantWorkload
from .snap import SNAP, SnapWorkload

#: All paper workloads, in Table II order.
ALL_WORKLOADS: Tuple[Workload, ...] = (ISX, HPCG, PENNANT, COMD, MINIGHOST, SNAP)

_BY_NAME: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    """Lookup a paper workload by its Table II name."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


__all__ = [
    "ALL_WORKLOADS",
    "COMD",
    "ComdWorkload",
    "HPCG",
    "HpcgWorkload",
    "ISX",
    "IsxWorkload",
    "MINIGHOST",
    "MachineCalibration",
    "MinighostWorkload",
    "PENNANT",
    "PennantWorkload",
    "RowPlan",
    "SNAP",
    "SnapWorkload",
    "TraceSpec",
    "Workload",
    "get_workload",
]
