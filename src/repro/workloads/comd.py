"""CoMD — classical molecular dynamics (Section IV-D, Table VII).

``eamForce`` is compute dominated: neighbor-list data largely fits in
cache, memory requests are rare, and occupancies are tiny (0.17 SKL /
1.17 KNL / 0.12 A64FX).  The recipe reads the huge MSHR headroom as
"every MLP-increasing optimization applies", and indeed vectorization
(of the next-to-innermost loop, with gather/scatter + predication) and
stacked SMT all pay off on KNL up to 4 ways — the paper's demonstration
that MSHRQ occupancy correctly certifies compute-boundedness
(Section IV-G).

CoMD is the cleanest calibration in the paper: every row satisfies
``speedup ≈ bandwidth ratio`` (constant work, constant traffic), except
SMT rows where the cache-contention traffic inflation is explicit in
the paper's own numbers (SKL 2-way: 1.71x bandwidth for 1.22x speedup).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.classify import AccessPattern
from ..machines.spec import MachineSpec
from ..optim.transforms import TransformEffect
from ..sim.coltrace import ColumnarThreadTrace, ColumnarTrace
from .base import MachineCalibration, TraceSpec, Workload
from .generators import cached_compute, spawn_thread_generator


class ComdWorkload(Workload):
    """CoMD ``eamForce`` model."""

    def __init__(self) -> None:
        super().__init__(
            name="comd",
            routine="eamForce",
            description="Classical molecular dynamics",
            problem_size="x=y=z=24, T=4000",
            pattern=AccessPattern.MIXED,
            random_fraction=0.45,
            calibrations={
                "skl": MachineCalibration(
                    demand_mlp=0.17,
                    binding_level=2,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), "smt2"),
                        (("vectorize", "smt2"), None),
                    ),
                ),
                "knl": MachineCalibration(
                    demand_mlp=1.17,
                    binding_level=2,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), "smt2"),
                        (("vectorize", "smt2"), "smt4"),
                        (("vectorize", "smt2", "smt4"), None),
                    ),
                ),
                "a64fx": MachineCalibration(
                    demand_mlp=0.12,
                    binding_level=2,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), None),
                    ),
                ),
            },
            effects={
                "vectorize@skl": TransformEffect(
                    demand_factor=1.43,
                    traffic_factor=1.021,
                    rationale="next-to-innermost loop vectorized with "
                    "gather/predication; sized from the paper's own "
                    "bandwidth growth 3.19 -> 4.56 GB/s (1.4x speedup)",
                ),
                "vectorize@knl": TransformEffect(
                    demand_factor=1.325,
                    traffic_factor=0.975,
                    rationale="few memory accesses: vectorization adds "
                    "only a small absolute MLP (1.17 -> 1.55, paper 1.35x)",
                ),
                "vectorize@a64fx": TransformEffect(
                    demand_factor=1.26,
                    traffic_factor=1.008,
                    rationale="sized from the paper's bandwidth growth "
                    "10.75 -> 13.44 GB/s (1.24x speedup); compute-side win",
                ),
                "smt2@skl": TransformEffect(
                    demand_factor=1.71,
                    traffic_factor=1.402,
                    smt_ways=2,
                    rationale="second thread adds MLP but also cache "
                    "contention traffic (paper: 1.71x BW for 1.22x speedup)",
                ),
                "smt2@knl": TransformEffect(
                    demand_factor=2.426,
                    traffic_factor=1.540,
                    smt_ways=2,
                    rationale="1.55 -> 3.76; far from the MSHR limit, so "
                    "SMT keeps paying (paper 1.52x)",
                ),
                "smt4@knl": TransformEffect(
                    demand_factor=1.739,
                    traffic_factor=1.362,
                    smt_ways=4,
                    rationale="3.76 -> 6.54, still below the 32-entry L2 "
                    "file (paper 1.25x)",
                ),
            },
        )

    def generate_trace(
        self,
        machine: MachineSpec,
        *,
        steps: Sequence[str] = (),
        spec: Optional[TraceSpec] = None,
    ) -> ColumnarTrace:
        """Cache-resident force loop with rare cold misses, big gaps."""
        spec = spec or TraceSpec()
        rng = random.Random(spec.seed)
        line = machine.line_bytes
        vectorized = "vectorize" in steps
        gap = 12.0 if vectorized else 25.0  # vectorization shrinks compute
        threads = []
        for t in range(spec.threads):
            trng = spawn_thread_generator(rng)
            accesses = cached_compute(
                spec.accesses_per_thread,
                line,
                trng,
                region_id=4 * t,
                footprint_bytes=20 * 1024,
                miss_fraction=0.03,
                gap_cycles=gap,
            )
            threads.append(ColumnarThreadTrace.from_columns(t, accesses))
        return ColumnarTrace(
            tuple(threads), routine=self.routine, line_bytes=line
        )


COMD = ComdWorkload()
