"""SNAP — discrete-ordinates transport proxy (Section IV-F, Table IX).

``dim3_sweep`` is a deep loop nest of *short* auto-vectorized inner
loops (nang=48) with heavy interleaved compute and temporary reuse —
not memory bound (45 % SKL / 31 % KNL / 9 % A64FX bandwidth).  The
short trips defeat hardware-prefetch timeliness, so directive-driven
**software prefetching** is the paper's move; it pays modestly
(1.01x SKL with its aggressive prefetcher, 1.08x KNL, 1.07x A64FX).
SMT stacks further gains on KNL (1.14x then 1.02x) against growing
cache-miss contention — the traffic inflation is visible in the
paper's own bandwidth-vs-speedup products.

SNAP is also the paper's TMA critique vehicle (Section I): whole-
program TMA called it 27 % bandwidth-bound / 23 % latency-bound with a
9-cycle average latency, yet per-routine prefetching of ``dim3_sweep``
bought 8 %.  The intro experiment (:mod:`repro.experiments.intro_snap`)
reproduces that contrast.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.classify import AccessPattern
from ..machines.spec import MachineSpec
from ..optim.transforms import TransformEffect
from ..sim.coltrace import ColumnarThreadTrace, ColumnarTrace
from .base import MachineCalibration, TraceSpec, Workload
from .generators import short_bursts, spawn_thread_generator


class SnapWorkload(Workload):
    """SNAP ``dim3_sweep`` model."""

    def __init__(self) -> None:
        super().__init__(
            name="snap",
            routine="dim3_sweep",
            description="Discrete ordinates neutral particle transport",
            problem_size="nx=64, ny=16, nz=24, nang=48, ng=54, cor_swp=1",
            pattern=AccessPattern.MIXED,
            random_fraction=0.35,
            calibrations={
                "skl": MachineCalibration(
                    demand_mlp=3.79,
                    binding_level=2,
                    row_plan=(
                        ((), "sw_prefetch"),
                        (("sw_prefetch",), "smt2"),
                    ),
                ),
                "knl": MachineCalibration(
                    demand_mlp=5.0,
                    binding_level=2,
                    row_plan=(
                        ((), "sw_prefetch"),
                        (("sw_prefetch",), "smt2"),
                        (("sw_prefetch", "smt2"), "smt4"),
                    ),
                ),
                "a64fx": MachineCalibration(
                    demand_mlp=1.1,
                    binding_level=2,
                    row_plan=(
                        ((), "sw_prefetch"),
                        (("sw_prefetch",), None),
                    ),
                ),
            },
            effects={
                "sw_prefetch@skl": TransformEffect(
                    demand_factor=1.021,
                    traffic_factor=1.004,
                    rationale="SKL's aggressive hardware prefetcher leaves "
                    "almost nothing for directives (paper 1.01x)",
                ),
                "sw_prefetch@knl": TransformEffect(
                    demand_factor=1.040,
                    traffic_factor=0.952,
                    rationale="short inner loops prefetched ahead of the "
                    "sweep (5.0 -> 5.2; paper 1.08x)",
                ),
                "sw_prefetch@a64fx": TransformEffect(
                    demand_factor=1.091,
                    traffic_factor=0.969,
                    rationale="same directive benefit as KNL (1.1 -> 1.2; "
                    "paper 1.07x)",
                ),
                "smt2@skl": TransformEffect(
                    demand_factor=1.12,
                    traffic_factor=1.06,
                    smt_ways=2,
                    rationale="hyperthreading raises cache miss rates; only "
                    "1.03x survives",
                ),
                "smt2@knl": TransformEffect(
                    demand_factor=1.342,
                    traffic_factor=1.155,
                    smt_ways=2,
                    rationale="5.2 -> 6.98 despite extra misses (paper 1.14x)",
                ),
                "smt4@knl": TransformEffect(
                    demand_factor=1.15,
                    traffic_factor=1.12,
                    smt_ways=4,
                    rationale="gain mostly eaten by cache contention "
                    "(paper 1.02x)",
                ),
            },
        )

    def generate_trace(
        self,
        machine: MachineSpec,
        *,
        steps: Sequence[str] = (),
        spec: Optional[TraceSpec] = None,
    ) -> ColumnarTrace:
        """Short bursts (nang-sized inner loops) with compute gaps."""
        spec = spec or TraceSpec()
        rng = random.Random(spec.seed)
        line = machine.line_bytes
        prefetched = "sw_prefetch" in steps
        threads = []
        for t in range(spec.threads):
            trng = spawn_thread_generator(rng)
            accesses = short_bursts(
                spec.accesses_per_thread,
                line,
                trng,
                region_id=4 * t,
                burst_elements=48,
                element_bytes=8,
                gap_cycles=5.0,
                sw_prefetch=prefetched,
            )
            threads.append(ColumnarThreadTrace.from_columns(t, accesses))
        return ColumnarTrace(
            tuple(threads), routine=self.routine, line_bytes=line
        )


SNAP = SnapWorkload()
