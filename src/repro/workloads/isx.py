"""ISx — scalable integer sort (paper Section IV-A, Table IV).

``count_local_keys`` reads the key array sequentially and increments a
bucket counter at a random location per key: one small streaming
reference plus dominant random read-modify-write traffic.  The random
traffic defeats the L2 hardware prefetcher, so the **L1 MSHR file
binds** the base version on every machine — which is why vectorization
and SMT do nothing on SKL (10 L1 MSHRs already full at n≈10.1) and only
a little on KNL (12 L1 MSHRs), and why **L2 software prefetching** is
the unlock: it moves the outstanding requests into the larger, idle L2
MSHR file (KNL: 32/core, A64FX: ~20/core).

Calibration notes (paper-measured base occupancies; effect factors):

* base ``demand_mlp``: 10.5 on SKL (slightly over the 10-entry L1 file;
  paper footnote 5 attributes the 10.1 reading to the small streaming
  reference using L2 MSHRs), 10.23 on KNL, 9.92 on A64FX;
* vectorization barely widens a random-update loop (scatter-increment
  with conflict hazards): x1.00 SKL / x1.04 KNL;
* 2-way SMT adds a little MLP on KNL (x1.09, to 11.6 ≈ the 12-entry
  file); 4-way goes past the file and only adds contention (paper:
  0.98x);
* L2 software prefetch lifts sustained MLP to ~20 on KNL and ~18 on
  A64FX (paper's measured optimized occupancies), with small effective
  traffic changes (prefetch pipelining removes some wasted fetches).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.classify import AccessPattern
from ..machines.spec import MachineSpec
from ..optim.transforms import TransformEffect
from ..sim.coltrace import ColumnarThreadTrace, ColumnarTrace, interleave_columns
from .base import MachineCalibration, TraceSpec, Workload
from .generators import random_updates, spawn_thread_generator, unit_streams


class IsxWorkload(Workload):
    """ISx ``count_local_keys`` model."""

    def __init__(self) -> None:
        super().__init__(
            name="isx",
            routine="count_local_keys",
            description="Scalable Integer Sort (bucket counting)",
            problem_size="Keys per PE = 25165824",
            pattern=AccessPattern.RANDOM,
            random_fraction=0.95,
            calibrations={
                "skl": MachineCalibration(
                    demand_mlp=10.5,
                    binding_level=1,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), "smt2"),
                    ),
                ),
                "knl": MachineCalibration(
                    demand_mlp=10.23,
                    binding_level=1,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), "smt2"),
                        (("vectorize", "smt2"), "smt4"),
                        (("vectorize", "smt2"), "l2_prefetch"),
                        (("vectorize", "smt2", "l2_prefetch"), None),
                    ),
                ),
                "a64fx": MachineCalibration(
                    demand_mlp=9.92,
                    binding_level=1,
                    row_plan=(
                        ((), "l2_prefetch"),
                        (("l2_prefetch",), None),
                    ),
                ),
            },
            effects={
                "vectorize@skl": TransformEffect(
                    demand_factor=1.00,
                    rationale="scatter-increment loop: vector conflict "
                    "detection serializes; no MLP gain on SKL",
                ),
                "vectorize": TransformEffect(
                    demand_factor=1.042,
                    traffic_factor=1.01,
                    rationale="AVX-512 CD vectorization of the count loop "
                    "adds a sliver of MLP (paper: 10.23 -> 10.66 on KNL)",
                ),
                "smt2@skl": TransformEffect(
                    demand_factor=1.05,
                    smt_ways=2,
                    rationale="L1 MSHRs already saturated; extra thread "
                    "cannot add in-flight misses",
                ),
                "smt2": TransformEffect(
                    demand_factor=1.088,
                    traffic_factor=1.030,
                    smt_ways=2,
                    rationale="two threads share 12 L1 MSHRs; occupancy "
                    "10.66 -> 11.6 on KNL",
                ),
                "smt4": TransformEffect(
                    demand_factor=1.20,
                    traffic_factor=1.06,
                    smt_ways=4,
                    rationale="demand clips at the 12-entry L1 file while "
                    "thread contention inflates traffic: net slowdown",
                ),
                "l2_prefetch": TransformEffect(
                    demand_absolute=20.0,
                    shift_binding_to=2,
                    traffic_factor=0.97,
                    rationale="software prefetch to L2 engages the idle L2 "
                    "MSHRs (32/core on KNL); sustained MLP ~20",
                ),
                "l2_prefetch@a64fx": TransformEffect(
                    demand_absolute=17.95,
                    shift_binding_to=2,
                    traffic_factor=0.93,
                    rationale="~20 L2 MSHRs/core on A64FX; measured "
                    "occupancy 17.95 after prefetching",
                ),
            },
        )

    def generate_trace(
        self,
        machine: MachineSpec,
        *,
        steps: Sequence[str] = (),
        spec: Optional[TraceSpec] = None,
    ) -> ColumnarTrace:
        """Random bucket updates + a thin key-stream, per thread."""
        spec = spec or TraceSpec()
        rng = random.Random(spec.seed)
        line = machine.line_bytes
        prefetch = "l2_prefetch" in steps
        # Update cadence (~12 cycles per bucket increment on 64B-line
        # machines) reflects the load-increment-store dependency chain
        # of count_local_keys; scaled with line size so per-core byte
        # demand stays comparable on A64FX's 256B lines.
        base_gap = 10.0 if "vectorize" in steps else 12.0
        gap = base_gap * (line / 64) ** 0.5
        threads = []
        for t in range(spec.threads):
            trng = spawn_thread_generator(rng)
            updates = random_updates(
                int(spec.accesses_per_thread * 0.9),
                line,
                trng,
                region_id=4 * t,
                gap_cycles=gap,
                write_fraction=0.5,
                prefetch_to_l2=prefetch,
                # Far enough ahead that the prefetch beats the demand by
                # a full memory latency (the paper's software pipelining).
                prefetch_distance=64,
            )
            keys = unit_streams(
                spec.accesses_per_thread - int(spec.accesses_per_thread * 0.9),
                line,
                streams=1,
                region_id=4 * t + 2,
                element_bytes=8,
                gap_cycles=gap,
            )
            merged = interleave_columns(updates, keys, period=9)
            threads.append(ColumnarThreadTrace.from_columns(t, merged))
        return ColumnarTrace(
            tuple(threads), routine=self.routine, line_bytes=line
        )


ISX = IsxWorkload()
