"""HPCG — sparse matrix-vector multiplication (Section IV-B, Table V).

``ComputeSPMV_ref`` streams the matrix values / column indices and the
output vector while gathering the input vector ``x`` with the high
locality of a 27-point 40³ mesh.  Streaming dominates and the hardware
prefetcher is very effective (the paper measures >3x slowdown with the
prefetcher disabled), so the **L2 MSHR file binds**.

Calibration notes:

* base ``demand_mlp``: 12.6 SKL (already at the SKL streams-bandwidth
  ceiling), 8.95 KNL, 3.44 A64FX (SVE-less scalar code on a very wide
  memory system — lots of headroom, which is why vectorization buys
  1.7x);
* vectorization (AVX-512/SVE gather hardware): x1.16 on KNL, x1.63 on
  A64FX (paper occupancies 8.95→10.38 and 3.44→5.62), no change on SKL
  where bandwidth is the wall;
* 2-way SMT on KNL: x1.455 (10.38→15.1); 4-way stalls because the L2
  prefetcher tracks only 16 streams and 4 threads × 8–10 streams
  overflow it (paper: 1.03x) — modeled as a small demand gain plus
  contention traffic.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.classify import AccessPattern
from ..machines.spec import MachineSpec
from ..optim.transforms import TransformEffect
from ..sim.coltrace import ColumnarThreadTrace, ColumnarTrace, interleave_columns
from .base import MachineCalibration, TraceSpec, Workload
from .generators import gather_accesses, spawn_thread_generator, unit_streams


class HpcgWorkload(Workload):
    """HPCG ``ComputeSPMV_ref`` model."""

    def __init__(self) -> None:
        super().__init__(
            name="hpcg",
            routine="ComputeSPMV_ref",
            description="Sparse matrix-vector multiplication",
            problem_size="40^3",
            pattern=AccessPattern.STREAMING,
            random_fraction=0.10,
            calibrations={
                "skl": MachineCalibration(
                    demand_mlp=12.6,
                    binding_level=2,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), "smt2"),
                    ),
                ),
                "knl": MachineCalibration(
                    demand_mlp=8.95,
                    binding_level=2,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), "smt2"),
                        (("vectorize", "smt2"), "smt4"),
                    ),
                ),
                "a64fx": MachineCalibration(
                    demand_mlp=3.44,
                    binding_level=2,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), None),
                    ),
                ),
            },
            effects={
                "vectorize@skl": TransformEffect(
                    demand_factor=1.05,
                    traffic_factor=1.02,
                    rationale="SKL already at achievable streams bandwidth; "
                    "wider vectors cannot add sustained MLP",
                ),
                "vectorize@knl": TransformEffect(
                    demand_factor=1.16,
                    rationale="AVX-512 gathers widen the SpMV inner loop "
                    "(paper: 8.95 -> 10.38)",
                ),
                "vectorize@a64fx": TransformEffect(
                    demand_factor=1.634,
                    traffic_factor=0.906,
                    rationale="SVE gathers on a scalar baseline: biggest "
                    "jump (3.44 -> 5.62); prefetch efficiency also improves",
                ),
                "smt2@skl": TransformEffect(
                    demand_factor=1.10,
                    traffic_factor=1.02,
                    smt_ways=2,
                    rationale="bandwidth-bound: extra thread only adds "
                    "cache contention (paper: 0.98x)",
                ),
                "smt2@knl": TransformEffect(
                    demand_factor=1.455,
                    smt_ways=2,
                    rationale="two threads' streams fit the 16-stream "
                    "prefetch tracker (paper: 10.38 -> 15.1, 1.26x)",
                ),
                "smt4@knl": TransformEffect(
                    demand_factor=1.10,
                    traffic_factor=1.05,
                    smt_ways=4,
                    rationale="4 threads x 8-10 streams overflow the "
                    "16-stream L2 prefetch tracker; little MLP gain "
                    "(paper: 1.03x)",
                ),
            },
        )

    def generate_trace(
        self,
        machine: MachineSpec,
        *,
        steps: Sequence[str] = (),
        spec: Optional[TraceSpec] = None,
    ) -> ColumnarTrace:
        """Matrix/result streams (85%) + local gathers of x (15%)."""
        spec = spec or TraceSpec()
        rng = random.Random(spec.seed)
        line = machine.line_bytes
        gap = 1.5 if "vectorize" in steps else 3.0
        threads = []
        for t in range(spec.threads):
            trng = spawn_thread_generator(rng)
            n_stream = int(spec.accesses_per_thread * 0.85)
            streams = unit_streams(
                n_stream,
                line,
                streams=6,
                region_id=8 * t,
                # Keep the *line-level* stream length representative of
                # the real (long) matrix arrays even in a small trace:
                # on 256B-line machines one access record covers more of
                # the line, as the wide SVE loads do.
                element_bytes=max(8, line // 8),
                gap_cycles=gap,
                store_stream=True,
            )
            gathers = gather_accesses(
                spec.accesses_per_thread - n_stream,
                line,
                trng,
                region_id=8 * t + 7,
                region_bytes=2 * 1024 * 1024,
                locality=0.85,
                gap_cycles=gap,
            )
            merged = interleave_columns(streams, gathers, period=6)
            threads.append(ColumnarThreadTrace.from_columns(t, merged))
        return ColumnarTrace(
            tuple(threads), routine=self.routine, line_bytes=line
        )


HPCG = HpcgWorkload()
