"""Workload protocol: the six paper applications as model objects.

Each workload (paper Table II) is represented two ways, per DESIGN.md:

* an **analytic descriptor** — per-machine base calibration
  (:class:`MachineCalibration`) plus an effect table describing how each
  optimization step changes the state.  The base ``demand_mlp`` values
  are the per-core MLP the paper *measured* for the unoptimized codes
  (its Tables IV–IX base rows); the effect factors encode code-structure
  arguments from the paper (how well a gather loop vectorizes, how much
  cache contention SMT causes, ...).  The performance solver turns these
  into bandwidth/latency/occupancy/speedup predictions — those outputs,
  not the calibrated inputs, are what the experiments validate;

* a **trace generator** — a statistically faithful access-pattern
  generator for the discrete-event simulator, used for the non-circular
  validations (prefetch-coverage classification, MSHR-stall migration,
  Little's-law identity).

The row plan (:attr:`MachineCalibration.row_plan`) mirrors the paper's
table structure: each entry is ``(source_steps, step_applied)`` with
``None`` marking a terminal row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..core.classify import AccessPattern
from ..errors import ConfigurationError, OptimizationError
from ..machines.spec import MachineSpec
from ..optim.transforms import EffectTable, WorkloadState, lookup_effect
from ..sim.coltrace import ColumnarTrace

#: One table row: (steps defining the Source version, step applied or None).
RowPlan = Tuple[Tuple[Tuple[str, ...], Optional[str]], ...]


@dataclass(frozen=True)
class MachineCalibration:
    """Per-machine base characterization of one workload routine."""

    #: Per-core expressible MLP of the unoptimized code (paper base row).
    demand_mlp: float
    #: Which MSHR file binds the base version (1 random / 2 streaming).
    binding_level: int
    #: The paper's experiment plan for this machine.
    row_plan: RowPlan

    def __post_init__(self) -> None:
        if self.demand_mlp <= 0:
            raise ConfigurationError("demand_mlp must be positive")
        if self.binding_level not in (1, 2):
            raise ConfigurationError("binding_level must be 1 or 2")


@dataclass(frozen=True)
class TraceSpec:
    """Size knobs for trace generation (kept small for Python speed)."""

    threads: int = 2
    accesses_per_thread: int = 4000
    seed: int = 12345


class Workload:
    """One paper application: analytic descriptor + trace generator.

    Subclasses implement :meth:`generate_trace`; everything else is
    data-driven from the constructor arguments.
    """

    def __init__(
        self,
        *,
        name: str,
        routine: str,
        description: str,
        problem_size: str,
        pattern: AccessPattern,
        random_fraction: float,
        calibrations: Mapping[str, MachineCalibration],
        effects: EffectTable,
    ) -> None:
        if not 0.0 <= random_fraction <= 1.0:
            raise ConfigurationError("random_fraction must be in [0,1]")
        self.name = name
        self.routine = routine
        self.description = description
        self.problem_size = problem_size
        self.pattern = pattern
        self.random_fraction = random_fraction
        self.calibrations = dict(calibrations)
        self.effects = effects

    # -- analytic side -----------------------------------------------------------

    def calibration(self, machine_name: str) -> MachineCalibration:
        """Per-machine base characterization (raises for unknown machines)."""
        try:
            return self.calibrations[machine_name]
        except KeyError:
            raise ConfigurationError(
                f"workload {self.name!r} has no calibration for {machine_name!r}"
            ) from None

    def base_state(self, machine: MachineSpec) -> WorkloadState:
        """The unoptimized version's analytic state on ``machine``."""
        cal = self.calibration(machine.name)
        return WorkloadState(
            workload=self.name,
            machine_name=machine.name,
            routine=self.routine,
            pattern=self.pattern,
            random_fraction=self.random_fraction,
            binding_level=cal.binding_level,
            demand_mlp=cal.demand_mlp,
        )

    def state_for(self, machine: MachineSpec, steps: Sequence[str]) -> WorkloadState:
        """State after applying ``steps`` in order to the base version."""
        state = self.base_state(machine)
        for step in steps:
            effect = lookup_effect(self.effects, step, machine.name)
            state = effect.apply(state, step)
        return state

    def row_plan(self, machine_name: str) -> RowPlan:
        """The paper's experiment plan for ``machine_name``."""
        return self.calibration(machine_name).row_plan

    def machines(self) -> Tuple[str, ...]:
        """Machines this workload is calibrated for (paper: all three)."""
        return tuple(self.calibrations)

    # -- simulator side -----------------------------------------------------------

    def generate_trace(
        self,
        machine: MachineSpec,
        *,
        steps: Sequence[str] = (),
        spec: Optional[TraceSpec] = None,
    ) -> ColumnarTrace:
        """Access trace of this routine (optionally optimized) for the DES."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<Workload {self.name} routine={self.routine}>"
