"""PENNANT — unstructured mesh physics (Section IV-C, Table VI).

``setCornerDiv`` is one long loop of irregular, pointer-based gathers
over mesh arrays with conditional code.  The compiler cannot prove
no-aliasing, so the base version is **not vectorized** and the scalar
gather chain expresses very little MLP (n≈2.3 SKL / 3.5 KNL / 0.8
A64FX).  Forcing vectorization (ivdep/restrict) turns the loop into
AVX-512/SVE gather-scatter with predication — a large MLP jump — and
2-way SMT stacks on top until the **L1 MSHR file** (irregular accesses)
pins it at ~12 on KNL, where 4-way SMT then buys nothing despite only
58 % bandwidth utilization: the paper's flagship "core-bound before
bandwidth-bound" example.

Effective-traffic calibration: the paper's PENNANT speedups exceed its
bandwidth growth by large factors (KNL: 5.76x speedup on 1.67x
bandwidth), i.e. the measured traffic per unit of work drops sharply
once vectorized (scalar replay and speculative over-fetch disappear).
The transform traffic factors encode that measured product; see
EXPERIMENTS.md ("known paper-internal tensions").
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.classify import AccessPattern
from ..machines.spec import MachineSpec
from ..optim.transforms import TransformEffect
from ..sim.coltrace import ColumnarThreadTrace, ColumnarTrace, interleave_columns
from .base import MachineCalibration, TraceSpec, Workload
from .generators import gather_accesses, spawn_thread_generator, unit_streams


class PennantWorkload(Workload):
    """PENNANT ``setCornerDiv`` model."""

    def __init__(self) -> None:
        super().__init__(
            name="pennant",
            routine="setCornerDiv",
            description="Unstructured mesh physics miniapp",
            problem_size="meshparams = 960, 1080, 1.0, 1.125",
            pattern=AccessPattern.RANDOM,
            random_fraction=0.70,
            calibrations={
                "skl": MachineCalibration(
                    demand_mlp=2.29,
                    binding_level=1,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), "smt2"),
                        (("vectorize", "smt2"), None),
                    ),
                ),
                "knl": MachineCalibration(
                    demand_mlp=3.49,
                    binding_level=1,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), "smt2"),
                        (("vectorize", "smt2"), "smt4"),
                    ),
                ),
                "a64fx": MachineCalibration(
                    demand_mlp=0.81,
                    binding_level=1,
                    row_plan=(
                        ((), "vectorize"),
                        (("vectorize",), None),
                    ),
                ),
            },
            effects={
                "vectorize@skl": TransformEffect(
                    demand_factor=1.262,
                    traffic_factor=0.617,
                    rationale="forced AVX-512 gather/predication: occupancy "
                    "2.29 -> 2.89; scalar-replay traffic disappears",
                ),
                "vectorize@knl": TransformEffect(
                    demand_factor=1.708,
                    traffic_factor=0.290,
                    rationale="in-order-ish KNL gains most from gather "
                    "vectorization (3.49 -> 5.96; paper 5.76x)",
                ),
                "vectorize@a64fx": TransformEffect(
                    demand_factor=1.494,
                    traffic_factor=0.384,
                    rationale="SVE gathers + predication on a weak OoO core "
                    "(0.81 -> 1.21; paper 3.83x)",
                ),
                "smt2@skl": TransformEffect(
                    demand_factor=1.29,
                    traffic_factor=0.893,
                    smt_ways=2,
                    rationale="second thread's gathers fill spare L1 MSHRs "
                    "(2.89 -> 3.73, 1.4x)",
                ),
                "smt2@knl": TransformEffect(
                    demand_factor=1.903,
                    traffic_factor=1.529,
                    smt_ways=2,
                    rationale="occupancy doubles toward the 12-entry L1 file "
                    "(5.96 -> 11.34) but threads contend in cache",
                ),
                "smt4@knl": TransformEffect(
                    demand_factor=1.30,
                    traffic_factor=1.09,
                    smt_ways=4,
                    rationale="demand clips at the full L1 MSHR file "
                    "(11.34/12): no speedup at only 58% bandwidth - the "
                    "paper's core-bound showcase",
                ),
            },
        )

    def generate_trace(
        self,
        machine: MachineSpec,
        *,
        steps: Sequence[str] = (),
        spec: Optional[TraceSpec] = None,
    ) -> ColumnarTrace:
        """Low-locality gathers (70%) + a few mesh streams (30%)."""
        spec = spec or TraceSpec()
        rng = random.Random(spec.seed)
        line = machine.line_bytes
        vectorized = "vectorize" in steps
        gap = 2.0 if vectorized else 8.0  # scalar gather chain is slow
        threads = []
        for t in range(spec.threads):
            trng = spawn_thread_generator(rng)
            n_gather = int(spec.accesses_per_thread * 0.7)
            gathers = gather_accesses(
                n_gather,
                line,
                trng,
                region_id=8 * t,
                region_bytes=96 * 1024 * 1024,
                locality=0.2,
                gap_cycles=gap,
            )
            streams = unit_streams(
                spec.accesses_per_thread - n_gather,
                line,
                streams=3,
                region_id=8 * t + 5,
                element_bytes=8,
                gap_cycles=gap,
            )
            merged = interleave_columns(gathers, streams, period=7)
            threads.append(ColumnarThreadTrace.from_columns(t, merged))
        return ColumnarTrace(
            tuple(threads), routine=self.routine, line_bytes=line
        )


PENNANT = PennantWorkload()
