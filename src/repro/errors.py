"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-types exist for the
major subsystems so tests (and users) can assert on the *kind* of failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A machine, workload, or experiment was configured inconsistently."""


class UnknownMachineError(ConfigurationError):
    """A machine name was requested that the registry does not know."""

    def __init__(self, name: str, known: tuple) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown machine {name!r}; known machines: {', '.join(self.known)}"
        )


class ProfileError(ReproError):
    """A latency profile is malformed or queried out of its valid domain."""


class ProfileDomainError(ProfileError):
    """A bandwidth query fell outside the measured profile domain."""


class CounterError(ReproError):
    """A performance-counter session was misused."""


class CounterUnavailableError(CounterError):
    """The requested event is not exposed by this vendor (paper Table I)."""

    def __init__(self, vendor: str, event: str) -> None:
        self.vendor = vendor
        self.event = event
        super().__init__(f"vendor {vendor!r} does not expose event {event!r}")


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class TraceError(SimulationError):
    """An access trace was malformed."""


class SanitizerError(SimulationError):
    """A runtime invariant check of the instrumented ("reprosan") mode failed.

    Carries enough structure for a report: the violated invariant's
    identifier, the simulation time and engine event id at detection,
    and a snapshot of the audited queue (or other relevant state).
    ``report`` holds the full :class:`repro.analysis.sanitizer.SanitizerReport`
    when the failure was raised at finalize time.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str,
        time_ns: float = 0.0,
        event_id: int = 0,
        snapshot: object = None,
        report: object = None,
    ) -> None:
        self.invariant = invariant
        self.time_ns = time_ns
        self.event_id = event_id
        self.snapshot = snapshot
        self.report = report
        super().__init__(f"[{invariant}] {message}")


class StationarityError(ReproError):
    """Little's law was applied to a non-stationary (whole-program) window.

    The paper (Section III-B, footnote 1) restricts Little's law to
    individual subroutines or long loops.  The analyzer raises this when
    asked to aggregate routines with very different behaviour, unless the
    caller explicitly overrides.
    """


class OptimizationError(ReproError):
    """An optimization transform could not be applied to a workload."""


class CacheError(ReproError):
    """The simulation result cache was misused or misconfigured."""


class CacheKeyError(CacheError):
    """A simulation input could not be reduced to a stable cache digest."""


class ExperimentError(ReproError):
    """An experiment harness failure (missing paper data, bad shape check)."""


class ResilienceError(ReproError):
    """Base class for the fault-tolerant execution layer's own failures."""


class FaultInjected(ResilienceError):
    """A deterministic injected fault fired (``REPRO_FAULTS`` harness).

    Only ever raised on purpose, by :mod:`repro.resilience.faults`, so
    tests and the CI fault-injection leg can distinguish induced
    failures from real bugs.
    """

    def __init__(self, kind: str, key: str) -> None:
        self.kind = kind
        self.key = key
        super().__init__(f"injected fault {kind!r} fired at site {key!r}")


class TaskTimeout(ResilienceError):
    """A fan-out task exceeded its per-task timeout budget."""

    def __init__(self, label: str, timeout_s: float) -> None:
        self.label = label
        self.timeout_s = timeout_s
        super().__init__(f"task {label!r} exceeded timeout of {timeout_s}s")


class RetryExhausted(ResilienceError):
    """A fan-out item kept failing after all its retry attempts.

    The last underlying failure is chained as ``__cause__``.
    """

    def __init__(self, label: str, attempts: int, last_error: str) -> None:
        self.label = label
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"task {label!r} failed after {attempts} attempt(s): {last_error}"
        )


class CheckpointError(ResilienceError):
    """A sweep checkpoint file is unusable (wrong label/version, bad JSON)."""
