"""Core of ``reprolint`` — the repo's domain-aware static-analysis engine.

The reproduction rests on invariants that ordinary linters cannot see:
Little's-Law arithmetic silently corrupts if a ``1e9`` is open-coded
outside :mod:`repro.units`; bit-identical simulator replay breaks if
wall-clock or unseeded randomness leaks into :mod:`repro.sim`; the
:mod:`repro.perf.cache` digest silently aliases entries if a hashed
dataclass grows a field the digest function never sees.  This module
provides the machinery those domain rules plug into:

* :class:`Violation` — one finding, with a stable rule id;
* :class:`SourceFile` — lazily parsed source plus its suppression map;
* :class:`Rule` — base class; subclasses are either *file* rules
  (AST pass per file) or *project* rules (one semantic pass per run);
* a registry (:func:`register`, :func:`all_rules`) the CLI consumes;
* :class:`LintRunner` — walks paths, applies rules, honors suppressions.

Suppressions
------------
A violation on line N is suppressed by a trailing comment on that line::

    self.stats.wall_s = time.perf_counter() - t0  # repro: noqa[DET001]

``# repro: noqa`` with no bracket suppresses every rule on the line;
``# repro: noqa[DET001,UNIT001]`` suppresses just the listed ids.  The
plain ruff/flake8 ``# noqa`` spelling is deliberately **not** honored,
so repo-domain suppressions stay visible and greppable.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from ..errors import ReproError


class LintError(ReproError):
    """Raised for unusable lint inputs (bad path, undecodable source)."""


class Severity(Enum):
    """How blocking a finding is; the CLI exit code reflects errors only."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Violation:
    """One lint finding, sortable into (path, line, col, id) report order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def render(self) -> str:
        """``path:line:col: ID message`` — the text-reporter line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )


#: ``# repro: noqa`` or ``# repro: noqa[ID1,ID2]`` (spaces tolerated).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Z0-9,\s-]+)\])?", re.IGNORECASE
)

#: Blanket suppression marker in a :class:`SourceFile` noqa map.
_ALL = "*"


def _parse_noqa(text: str) -> Dict[int, Set[str]]:
    """Map line number -> suppressed rule ids (or ``{"*"}`` for blanket).

    Comments are found with :mod:`tokenize` so string literals that merely
    *mention* the noqa syntax (docs, tests) never suppress anything.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        lines = iter(text.splitlines(keepends=True))
        tokens = tokenize.generate_tokens(lambda: next(lines, ""))
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if not match:
                continue
            ids = match.group("ids")
            entry = suppressions.setdefault(tok.start[0], set())
            if ids is None:
                entry.add(_ALL)
            else:
                entry.update(
                    part.strip().upper() for part in ids.split(",") if part.strip()
                )
    except tokenize.TokenError:
        # Unterminated constructs: fall back to no suppressions; the
        # syntax error itself is reported by SourceFile.tree.
        return {}
    return suppressions


class SourceFile:
    """One Python source file: text, lazy AST, and its suppression map."""

    def __init__(self, path: Path, text: Optional[str] = None) -> None:
        self.path = Path(path)
        if text is None:
            try:
                text = self.path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                raise LintError(f"cannot read {self.path}: {exc}") from exc
        self.text = text
        self._tree: Optional[ast.AST] = None
        self._parse_error: Optional[SyntaxError] = None
        self._noqa: Optional[Dict[int, Set[str]]] = None

    @property
    def tree(self) -> Optional[ast.Module]:
        """The parsed module, or ``None`` if the file has a syntax error."""
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree  # type: ignore[return-value]

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        """The syntax error that prevented parsing, if any."""
        self.tree  # noqa-free way to force the lazy parse
        return self._parse_error

    @property
    def noqa(self) -> Dict[int, Set[str]]:
        """Line -> suppressed rule-id set (``{"*"}`` = everything)."""
        if self._noqa is None:
            self._noqa = _parse_noqa(self.text)
        return self._noqa

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Does line ``line`` carry a noqa for ``rule_id``?"""
        ids = self.noqa.get(line)
        if not ids:
            return False
        return _ALL in ids or rule_id.upper() in ids


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and override exactly one of
    :meth:`check_file` (AST rules, run once per source file the rule
    applies to) or :meth:`check_project` (semantic rules, run once per
    lint invocation against the *live* package).
    """

    #: Stable short id, e.g. ``"DET"``; individual findings use
    #: ``"DET001"``-style ids that share this prefix.
    prefix: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def applies_to(self, path: Path) -> bool:
        """Whether :meth:`check_file` should run on ``path`` at all."""
        return True

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        """AST pass over one file; default: no findings."""
        return ()

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Violation]:
        """Semantic pass over the whole run; default: no findings."""
        return ()


# -- lightweight intraprocedural dataflow ----------------------------------------


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (sync or async) function definition in ``tree``, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


class FunctionDataflow:
    """Forward, intraprocedural, **must**-facts dataflow over one function.

    Facts are opaque hashable tokens ("this receiver is flush-clean",
    "this name is definitely a float").  The walker owns control flow;
    rules subclass and override two hooks:

    * :meth:`flow_expr` — called once per evaluated expression tree with
      the *current* fact set; inspect it (report findings) and apply the
      rule's gen/kill effects by mutating ``facts`` in place;
    * :meth:`flow_bind` — called for every name-binding target (assign
      targets, loop variables, ``with ... as``), so rules can kill facts
      invalidated by rebinding.

    Join rules are deliberately conservative for a must-analysis:
    branch fallthroughs **intersect** (a fact holds after an ``if`` only
    when every surviving branch establishes it); loop bodies are run
    twice, the second pass starting from ``entry ∩ first-pass-exit``,
    which is sound (never invents a fact) though it may drop facts a
    full fixpoint would keep; ``except`` handlers start from **no**
    facts, since any prefix of the ``try`` body may have run.  Findings
    should therefore be deduplicated by position — the two loop passes
    revisit the same statements (:class:`Rule` implementations using
    this walker collect into a set).
    """

    def analyze(
        self,
        func_body: Sequence[ast.stmt],
        entry: Optional[Set[object]] = None,
    ) -> Optional[Set[object]]:
        """Walk ``func_body`` from ``entry`` facts; returns exit facts."""
        self._break_stack: List[List[Set[object]]] = []
        self._continue_stack: List[List[Set[object]]] = []
        return self._block(list(func_body), set(entry or ()))

    # -- hooks -------------------------------------------------------------------

    def flow_expr(self, node: ast.expr, facts: Set[object]) -> None:
        """Inspect one evaluated expression; mutate ``facts`` (gen/kill)."""

    def flow_bind(self, target: ast.expr, facts: Set[object]) -> None:
        """A binding target (Name/Tuple/Attribute/...) was (re)assigned."""

    def flow_assignment(self, stmt: ast.stmt, facts: Set[object]) -> None:
        """An Assign/AnnAssign/AugAssign completed (value seen, targets
        bound); rules that derive facts from the (target, value) pair —
        e.g. float-typedness — gen them here."""

    # -- control-flow walker -----------------------------------------------------

    def _expr(self, node: Optional[ast.expr], facts: Set[object]) -> None:
        if node is not None:
            self.flow_expr(node, facts)

    def _bind(self, target: Optional[ast.expr], facts: Set[object]) -> None:
        if target is None:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, facts)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, facts)
        else:
            self.flow_bind(target, facts)

    @staticmethod
    def _join(exits: List[Optional[Set[object]]]) -> Optional[Set[object]]:
        """Intersection of the branches that can fall through."""
        live = [e for e in exits if e is not None]
        if not live:
            return None
        out = set(live[0])
        for other in live[1:]:
            out &= other
        return out

    def _block(
        self, stmts: Sequence[ast.stmt], facts: Set[object]
    ) -> Optional[Set[object]]:
        """Run a statement list; returns exit facts, or None if no fallthrough."""
        for stmt in stmts:
            result = self._stmt(stmt, facts)
            if result is None:
                return None
            facts = result
        return facts

    def _loop(
        self,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
        entry: Set[object],
        prelude: Optional[ast.expr] = None,
        target: Optional[ast.expr] = None,
    ) -> Optional[Set[object]]:
        """Shared While/For handling: two-pass conservative fixpoint."""
        self._break_stack.append([])
        self._continue_stack.append([])
        body_in = set(entry)
        if prelude is not None:
            self._expr(prelude, body_in)
        self._bind(target, body_in)
        first_exit = self._block(body, set(body_in))
        continues = self._continue_stack[-1]
        back_edges: List[Optional[Set[object]]] = [first_exit]
        back_edges.extend(continues)
        looped = self._join(back_edges)
        second_in = body_in & looped if looped is not None else body_in
        continues.clear()
        if prelude is not None:
            self._expr(prelude, second_in)
        self._bind(target, second_in)
        second_exit = self._block(body, set(second_in))
        breaks = self._break_stack.pop()
        continues = self._continue_stack.pop()
        # After the loop: zero iterations (entry, test evaluated), any
        # number of full iterations (including continue-shortened ones,
        # which re-test and may fall out), or a break.
        exits: List[Optional[Set[object]]] = [set(second_in), second_exit]
        exits.extend(continues)
        exits.extend(breaks)
        after = self._join(exits)
        if after is not None and orelse:
            return self._block(orelse, after)
        return after

    def _stmt(self, stmt: ast.stmt, facts: Set[object]) -> Optional[Set[object]]:
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, facts)
            then_exit = self._block(stmt.body, set(facts))
            else_exit = self._block(stmt.orelse, set(facts))
            return self._join([then_exit, else_exit])
        if isinstance(stmt, ast.While):
            return self._loop(stmt.body, stmt.orelse, facts, prelude=stmt.test)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(
                stmt.body, stmt.orelse, facts, prelude=stmt.iter, target=stmt.target
            )
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            body_exit = self._block(stmt.body, set(facts))
            exits: List[Optional[Set[object]]] = []
            if stmt.orelse:
                if body_exit is not None:
                    exits.append(self._block(stmt.orelse, set(body_exit)))
            else:
                exits.append(body_exit)
            for handler in stmt.handlers:
                # Any prefix of the body may have executed: start clean.
                exits.append(self._block(handler.body, set()))
            after = self._join(exits)
            if stmt.finalbody:
                final_in = after if after is not None else set()
                final_exit = self._block(stmt.finalbody, final_in)
                return final_exit if after is not None else None
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, facts)
                self._bind(item.optional_vars, facts)
            return self._block(stmt.body, facts)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return):
                self._expr(stmt.value, facts)
            else:
                self._expr(stmt.exc, facts)
                self._expr(stmt.cause, facts)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if isinstance(stmt, ast.Break):
                if self._break_stack:
                    self._break_stack[-1].append(set(facts))
            elif self._continue_stack:
                self._continue_stack[-1].append(set(facts))
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are separate dataflow scopes (callers
            # analyze them via iter_functions); binding the name kills.
            self._bind(ast.Name(id=stmt.name, ctx=ast.Store()), facts)
            return facts
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, facts)
            for target in stmt.targets:
                self._bind(target, facts)
            self.flow_assignment(stmt, facts)
            return facts
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            self._expr(stmt.value, facts)
            self._bind(stmt.target, facts)
            self.flow_assignment(stmt, facts)
            return facts
        if isinstance(stmt, (ast.Expr, ast.Assert)):
            if isinstance(stmt, ast.Expr):
                self._expr(stmt.value, facts)
            else:
                self._expr(stmt.test, facts)
                self._expr(stmt.msg, facts)
            return facts
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._bind(target, facts)
            return facts
        # Import / Global / Nonlocal / Pass / Match fall through with the
        # incoming facts (Match is rare enough to treat opaquely: clear
        # facts so we never *invent* one across an unanalyzed construct).
        if isinstance(stmt, ast.Match):
            self._expr(stmt.subject, facts)
            facts.clear()
            return facts
        return facts


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry by prefix."""
    prefix = rule_cls.prefix
    if not prefix or not prefix.isupper():
        raise LintError(f"rule {rule_cls.__name__} needs an UPPERCASE prefix")
    if prefix in _REGISTRY and _REGISTRY[prefix] is not rule_cls:
        raise LintError(f"duplicate rule prefix {prefix!r}")
    _REGISTRY[prefix] = rule_cls
    return rule_cls


def all_rules() -> Tuple[Rule, ...]:
    """Fresh instances of every registered rule, in prefix order."""
    _load_builtin_rules()
    return tuple(_REGISTRY[prefix]() for prefix in sorted(_REGISTRY))


def get_rule(prefix: str) -> Rule:
    """Instantiate one registered rule by its prefix (case-insensitive)."""
    _load_builtin_rules()
    try:
        return _REGISTRY[prefix.upper()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise LintError(f"unknown rule {prefix!r} (known: {known})") from None


def _load_builtin_rules() -> None:
    """Import the built-in rule modules so their ``@register`` calls run."""
    from . import rules  # noqa: F401  (import-for-side-effect)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files taken verbatim)."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such path: {path}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    violations: List[Violation]
    files_checked: int
    rules_run: Tuple[str, ...]

    @property
    def errors(self) -> List[Violation]:
        """Only the findings that should fail the build."""
        return [v for v in self.violations if v.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """0 when clean (warnings allowed), 1 when any error remains."""
        return 1 if self.errors else 0


class LintRunner:
    """Apply a set of rules to a set of paths, honoring suppressions."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules) if rules is not None else all_rules()

    def run_sources(self, sources: Sequence[SourceFile]) -> LintResult:
        """Lint already-loaded sources (the testable core of :meth:`run`)."""
        violations: List[Violation] = []
        by_path = {str(s.path): s for s in sources}
        for source in sources:
            if source.parse_error is not None:
                err = source.parse_error
                violations.append(
                    Violation(
                        path=str(source.path),
                        line=err.lineno or 1,
                        col=(err.offset or 1) - 1,
                        rule_id="SYNTAX",
                        message=f"cannot parse: {err.msg}",
                    )
                )
                continue
            for rule in self.rules:
                if rule.applies_to(source.path):
                    violations.extend(rule.check_file(source))
        for rule in self.rules:
            violations.extend(rule.check_project(sources))
        kept = [
            v
            for v in violations
            if not self._suppressed(v, by_path.get(v.path))
        ]
        kept.sort()
        return LintResult(
            violations=kept,
            files_checked=len(sources),
            rules_run=tuple(rule.prefix for rule in self.rules),
        )

    def run(self, paths: Sequence[Path]) -> LintResult:
        """Lint every Python file under ``paths``."""
        sources = [SourceFile(p) for p in iter_python_files(paths)]
        return self.run_sources(sources)

    @staticmethod
    def _suppressed(violation: Violation, source: Optional[SourceFile]) -> bool:
        if source is None:
            # Project-rule findings may point at files outside the scanned
            # set (e.g. the live registry module); load them on demand so
            # their noqa comments still work.
            try:
                source = SourceFile(Path(violation.path))
            except LintError:
                return False
        return source.is_suppressed(violation.line, violation.rule_id)
