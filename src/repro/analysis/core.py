"""Core of ``reprolint`` — the repo's domain-aware static-analysis engine.

The reproduction rests on invariants that ordinary linters cannot see:
Little's-Law arithmetic silently corrupts if a ``1e9`` is open-coded
outside :mod:`repro.units`; bit-identical simulator replay breaks if
wall-clock or unseeded randomness leaks into :mod:`repro.sim`; the
:mod:`repro.perf.cache` digest silently aliases entries if a hashed
dataclass grows a field the digest function never sees.  This module
provides the machinery those domain rules plug into:

* :class:`Violation` — one finding, with a stable rule id;
* :class:`SourceFile` — lazily parsed source plus its suppression map;
* :class:`Rule` — base class; subclasses are either *file* rules
  (AST pass per file) or *project* rules (one semantic pass per run);
* a registry (:func:`register`, :func:`all_rules`) the CLI consumes;
* :class:`LintRunner` — walks paths, applies rules, honors suppressions.

Suppressions
------------
A violation on line N is suppressed by a trailing comment on that line::

    self.stats.wall_s = time.perf_counter() - t0  # repro: noqa[DET001]

``# repro: noqa`` with no bracket suppresses every rule on the line;
``# repro: noqa[DET001,UNIT001]`` suppresses just the listed ids.  The
plain ruff/flake8 ``# noqa`` spelling is deliberately **not** honored,
so repo-domain suppressions stay visible and greppable.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from ..errors import ReproError


class LintError(ReproError):
    """Raised for unusable lint inputs (bad path, undecodable source)."""


class Severity(Enum):
    """How blocking a finding is; the CLI exit code reflects errors only."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Violation:
    """One lint finding, sortable into (path, line, col, id) report order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def render(self) -> str:
        """``path:line:col: ID message`` — the text-reporter line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )


#: ``# repro: noqa`` or ``# repro: noqa[ID1,ID2]`` (spaces tolerated).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Z0-9,\s-]+)\])?", re.IGNORECASE
)

#: Blanket suppression marker in a :class:`SourceFile` noqa map.
_ALL = "*"


def _parse_noqa(text: str) -> Dict[int, Set[str]]:
    """Map line number -> suppressed rule ids (or ``{"*"}`` for blanket).

    Comments are found with :mod:`tokenize` so string literals that merely
    *mention* the noqa syntax (docs, tests) never suppress anything.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        lines = iter(text.splitlines(keepends=True))
        tokens = tokenize.generate_tokens(lambda: next(lines, ""))
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if not match:
                continue
            ids = match.group("ids")
            entry = suppressions.setdefault(tok.start[0], set())
            if ids is None:
                entry.add(_ALL)
            else:
                entry.update(
                    part.strip().upper() for part in ids.split(",") if part.strip()
                )
    except tokenize.TokenError:
        # Unterminated constructs: fall back to no suppressions; the
        # syntax error itself is reported by SourceFile.tree.
        return {}
    return suppressions


class SourceFile:
    """One Python source file: text, lazy AST, and its suppression map."""

    def __init__(self, path: Path, text: Optional[str] = None) -> None:
        self.path = Path(path)
        if text is None:
            try:
                text = self.path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                raise LintError(f"cannot read {self.path}: {exc}") from exc
        self.text = text
        self._tree: Optional[ast.AST] = None
        self._parse_error: Optional[SyntaxError] = None
        self._noqa: Optional[Dict[int, Set[str]]] = None

    @property
    def tree(self) -> Optional[ast.Module]:
        """The parsed module, or ``None`` if the file has a syntax error."""
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree  # type: ignore[return-value]

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        """The syntax error that prevented parsing, if any."""
        self.tree  # noqa-free way to force the lazy parse
        return self._parse_error

    @property
    def noqa(self) -> Dict[int, Set[str]]:
        """Line -> suppressed rule-id set (``{"*"}`` = everything)."""
        if self._noqa is None:
            self._noqa = _parse_noqa(self.text)
        return self._noqa

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Does line ``line`` carry a noqa for ``rule_id``?"""
        ids = self.noqa.get(line)
        if not ids:
            return False
        return _ALL in ids or rule_id.upper() in ids


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and override exactly one of
    :meth:`check_file` (AST rules, run once per source file the rule
    applies to) or :meth:`check_project` (semantic rules, run once per
    lint invocation against the *live* package).
    """

    #: Stable short id, e.g. ``"DET"``; individual findings use
    #: ``"DET001"``-style ids that share this prefix.
    prefix: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def applies_to(self, path: Path) -> bool:
        """Whether :meth:`check_file` should run on ``path`` at all."""
        return True

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        """AST pass over one file; default: no findings."""
        return ()

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Violation]:
        """Semantic pass over the whole run; default: no findings."""
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry by prefix."""
    prefix = rule_cls.prefix
    if not prefix or not prefix.isupper():
        raise LintError(f"rule {rule_cls.__name__} needs an UPPERCASE prefix")
    if prefix in _REGISTRY and _REGISTRY[prefix] is not rule_cls:
        raise LintError(f"duplicate rule prefix {prefix!r}")
    _REGISTRY[prefix] = rule_cls
    return rule_cls


def all_rules() -> Tuple[Rule, ...]:
    """Fresh instances of every registered rule, in prefix order."""
    _load_builtin_rules()
    return tuple(_REGISTRY[prefix]() for prefix in sorted(_REGISTRY))


def get_rule(prefix: str) -> Rule:
    """Instantiate one registered rule by its prefix (case-insensitive)."""
    _load_builtin_rules()
    try:
        return _REGISTRY[prefix.upper()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise LintError(f"unknown rule {prefix!r} (known: {known})") from None


def _load_builtin_rules() -> None:
    """Import the built-in rule modules so their ``@register`` calls run."""
    from . import rules  # noqa: F401  (import-for-side-effect)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files taken verbatim)."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such path: {path}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    violations: List[Violation]
    files_checked: int
    rules_run: Tuple[str, ...]

    @property
    def errors(self) -> List[Violation]:
        """Only the findings that should fail the build."""
        return [v for v in self.violations if v.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """0 when clean (warnings allowed), 1 when any error remains."""
        return 1 if self.errors else 0


class LintRunner:
    """Apply a set of rules to a set of paths, honoring suppressions."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules) if rules is not None else all_rules()

    def run_sources(self, sources: Sequence[SourceFile]) -> LintResult:
        """Lint already-loaded sources (the testable core of :meth:`run`)."""
        violations: List[Violation] = []
        by_path = {str(s.path): s for s in sources}
        for source in sources:
            if source.parse_error is not None:
                err = source.parse_error
                violations.append(
                    Violation(
                        path=str(source.path),
                        line=err.lineno or 1,
                        col=(err.offset or 1) - 1,
                        rule_id="SYNTAX",
                        message=f"cannot parse: {err.msg}",
                    )
                )
                continue
            for rule in self.rules:
                if rule.applies_to(source.path):
                    violations.extend(rule.check_file(source))
        for rule in self.rules:
            violations.extend(rule.check_project(sources))
        kept = [
            v
            for v in violations
            if not self._suppressed(v, by_path.get(v.path))
        ]
        kept.sort()
        return LintResult(
            violations=kept,
            files_checked=len(sources),
            rules_run=tuple(rule.prefix for rule in self.rules),
        )

    def run(self, paths: Sequence[Path]) -> LintResult:
        """Lint every Python file under ``paths``."""
        sources = [SourceFile(p) for p in iter_python_files(paths)]
        return self.run_sources(sources)

    @staticmethod
    def _suppressed(violation: Violation, source: Optional[SourceFile]) -> bool:
        if source is None:
            # Project-rule findings may point at files outside the scanned
            # set (e.g. the live registry module); load them on demand so
            # their noqa comments still work.
            try:
                source = SourceFile(Path(violation.path))
            except LintError:
                return False
        return source.is_suppressed(violation.line, violation.rule_id)
