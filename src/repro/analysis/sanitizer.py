"""Runtime invariant sanitizer ("reprosan") for the simulator.

The paper's identity — occupancy = throughput x latency — is what the
simulator *reproduces*; this module is what *checks the simulator
against it* while it runs.  Opt-in (``REPRO_SANITIZE=1`` or
``--sanitize`` on the CLI), the sanitizer hooks the event engine, the
MSHR files, the memory controller, and the batch fast path's deferred
LRU replay, and enforces:

* **event-monotonic** — engine event times never decrease and are
  always finite (the ``(time, seq)`` heap contract, checked per event);
* **mshr-balance** — every MSHR allocate has a matching release by end
  of run; leaks are reported with their allocation-site tags.  The
  batched miss path feeds the same audit: ``allocate_batch`` /
  ``release_batch`` and ``commit_batch`` replay their merged per-event
  streams through ``enter``/``exit`` in engine order (sites
  ``allocate_batch`` / ``request_batch``), so batched-miss runs are
  checked with the same invariants and tolerances as scalar ones;
* **batch-replay** — at every ``flush_batch`` the deferred LRU replay
  must leave ``CacheArray``/``Tlb`` state *identical* to a scalar
  re-execution of the queued runs (the fast path's core contract);
* **stats-conserve** — ``hits + misses == accesses`` per level,
  ``issued_total == scalar + batch``, every issued access accounted
  against the trace, and memory requests = completions + writebacks;
* **littles-law** (the headline check) — per audited queue, the
  time-integral of occupancy must equal the sum of per-request
  residence times, both over the whole run and within every time
  window of ``REPRO_SANITIZE_WINDOW_NS`` (default 4096 ns), and must
  agree with the simulator's own telemetry (``OccupancyTracker``
  integrals; ``MemoryStats.latency_sum_ns``).

Tolerance rationale
-------------------
The occupancy integral and the residence sum add up *exactly the same
elementary intervals* in different association orders (grouped by
update step vs. grouped by request), and the memory controller's
telemetry records ``latency + (admit - now)`` where the audit measures
``(admit + latency) - now``.  Mathematically identical, these differ in
the last ulp under IEEE-754, so the checks use ``math.isclose`` with
``rel_tol=1e-9`` / ``abs_tol=1e-6`` (ns units) — nine orders of
magnitude tighter than any real modeling error, infinitely looser than
reassociation noise.  Checks that mirror the exact arithmetic sequence
of their telemetry twin (the MSHR audit vs. ``OccupancyTracker``) use a
tighter ``rel_tol=1e-12`` since they are expected bit-equal.

The sanitizer *observes* and never perturbs: no event is added, no
float is recomputed differently, so a sanitized run's
``SimStats.fingerprint()`` is identical to the unsanitized run.
Sanitized results also never touch the content-addressed SimStats
cache (:func:`repro.perf.cache.cached_run_trace` bypasses both load
and store), keeping instrumented runs inert to cached pipelines.
"""

from __future__ import annotations

import json
import math
import os
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..sim.cache import CacheArray
    from ..sim.hierarchy import Hierarchy
    from ..sim.tlb import Tlb

__all__ = [
    "REL_TOL",
    "ABS_TOL_NS",
    "sanitize_enabled",
    "configure_sanitize",
    "sanitize_window_ns",
    "QueueAudit",
    "CacheReplayChecker",
    "TlbReplayChecker",
    "SanitizerReport",
    "RunSanitizer",
    "last_report",
]

#: Relative tolerance for checks whose two sides sum the same intervals
#: in different association orders (see module docstring).
REL_TOL = 1e-9

#: Absolute tolerance (ns units) covering near-zero windows.
ABS_TOL_NS = 1e-6

#: Tight tolerance for audits that mirror their telemetry twin's exact
#: arithmetic sequence and are expected bit-equal.
MIRROR_REL_TOL = 1e-12

#: Default Little's-Law audit window (ns) — long enough that a window
#: holds many requests, short enough to localize a skew in time.
DEFAULT_WINDOW_NS = 4096.0

_TRUE_VALUES = ("1", "on", "true", "yes")

_INF = float("inf")


def sanitize_enabled() -> bool:
    """Is the instrumented mode requested (``REPRO_SANITIZE`` env)?"""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUE_VALUES


def configure_sanitize(enabled: Optional[bool]) -> None:
    """Enable/disable sanitize mode programmatically (CLI ``--sanitize``).

    Mirrored into the environment so worker processes spawned by
    :func:`repro.perf.parallel.fan_out` inherit the mode under any
    multiprocessing start method.  ``None`` leaves the environment
    untouched.
    """
    if enabled is None:
        return
    if enabled:
        os.environ["REPRO_SANITIZE"] = "1"
    else:
        os.environ.pop("REPRO_SANITIZE", None)


def sanitize_window_ns() -> float:
    """Windowed-audit width from ``REPRO_SANITIZE_WINDOW_NS`` (ns)."""
    raw = os.environ.get("REPRO_SANITIZE_WINDOW_NS", "").strip()
    if not raw:
        return DEFAULT_WINDOW_NS
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_WINDOW_NS
    return value if value > 0 else DEFAULT_WINDOW_NS


def _call_site(depth: int = 2) -> str:
    """``function:line`` tag of the caller ``depth`` frames up."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - shallow stack in exotic embeds
        return "<unknown>"
    return f"{frame.f_code.co_name}:{frame.f_lineno}"


@dataclass(slots=True)
class SanitizerViolation:
    """One failed invariant check, with enough context to debug it."""

    invariant: str
    message: str
    time_ns: float = 0.0
    event_id: int = 0
    snapshot: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form for the report artifact."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "time_ns": self.time_ns,
            "event_id": self.event_id,
            "snapshot": self.snapshot,
        }


class QueueAudit:
    """Independent occupancy/residence bookkeeping for one queue.

    Maintains its own occupancy integral (mirroring
    :class:`repro.sim.stats.OccupancyTracker` arithmetic term for term),
    the per-request residence sum, and *windowed* versions of both, so
    Little's law can be checked as an exact interval identity: the
    integral of occupancy over any window equals the summed overlap of
    each request's residence with that window.
    """

    __slots__ = (
        "name",
        "capacity",
        "window_ns",
        "occupancy",
        "integral_ns",
        "last_update_ns",
        "entered",
        "exited",
        "residence_sum_ns",
        "occ_windows",
        "res_windows",
        "_live",
    )

    def __init__(
        self, name: str, *, capacity: Optional[int] = None, window_ns: float
    ) -> None:
        self.name = name
        self.capacity = capacity
        self.window_ns = window_ns
        self.occupancy = 0
        self.integral_ns = 0.0
        self.last_update_ns = 0.0
        self.entered = 0
        self.exited = 0
        self.residence_sum_ns = 0.0
        self.occ_windows: Dict[int, float] = {}
        self.res_windows: Dict[int, float] = {}
        self._live: Dict[Any, Tuple[float, str]] = {}

    def _spread(
        self, t0: float, t1: float, weight: float, table: Dict[int, float]
    ) -> None:
        """Add ``weight * dt`` to every window overlapped by ``[t0, t1)``."""
        if t1 <= t0 or weight == 0.0:
            return
        w = self.window_ns
        i0 = int(t0 // w)
        i1 = int(t1 // w)
        if i0 == i1:
            table[i0] = table.get(i0, 0.0) + weight * (t1 - t0)
            return
        table[i0] = table.get(i0, 0.0) + weight * ((i0 + 1) * w - t0)
        full = weight * w
        for i in range(i0 + 1, i1):
            table[i] = table.get(i, 0.0) + full
        tail = t1 - i1 * w
        if tail > 0.0:
            table[i1] = table.get(i1, 0.0) + weight * tail

    def _advance(self, now_ns: float) -> None:
        """Integrate occupancy to ``now_ns`` (tracker-mirroring arithmetic)."""
        dt = now_ns - self.last_update_ns
        if dt < 0:
            raise SanitizerError(
                f"{self.name}: audit time went backwards ({dt} ns)",
                invariant="event-monotonic",
                time_ns=now_ns,
                snapshot=self.snapshot(),
            )
        self._spread(self.last_update_ns, now_ns, float(self.occupancy), self.occ_windows)
        self.integral_ns += self.occupancy * dt
        self.last_update_ns = now_ns

    def enter(self, now_ns: float, key: Any, *, site: Optional[str] = None) -> Any:
        """One request entered the queue; returns the live-entry key."""
        self._advance(now_ns)
        self.occupancy += 1
        if self.capacity is not None and self.occupancy > self.capacity:
            raise SanitizerError(
                f"{self.name}: occupancy {self.occupancy} exceeds capacity "
                f"{self.capacity}",
                invariant="mshr-balance",
                time_ns=now_ns,
                snapshot=self.snapshot(),
            )
        self.entered += 1
        # Default site tag: the caller of our caller (e.g. the hierarchy
        # line that invoked MshrFile.allocate), for leak reports.
        self._live[key] = (now_ns, site if site is not None else _call_site(3))
        return key

    def exit(self, now_ns: float, key: Any) -> None:
        """One request left the queue; accrues its residence time."""
        self._advance(now_ns)
        self.occupancy -= 1
        live = self._live.pop(key, None)
        if self.occupancy < 0 or live is None:
            raise SanitizerError(
                f"{self.name}: release of {key!r} without a matching allocate",
                invariant="mshr-balance",
                time_ns=now_ns,
                snapshot=self.snapshot(),
            )
        t_enter, _site = live
        self.exited += 1
        self.residence_sum_ns += now_ns - t_enter
        self._spread(t_enter, now_ns, 1.0, self.res_windows)

    def close(self, end_ns: float) -> None:
        """Close the occupancy integral at end of run."""
        self._advance(end_ns)

    def leaked(self) -> List[Tuple[Any, float, str]]:
        """Live entries never released: ``(key, enter_ns, site)`` each."""
        return [(key, t, site) for key, (t, site) in self._live.items()]

    def snapshot(self) -> Dict[str, Any]:
        """Queue state for a :class:`SanitizerViolation`."""
        return {
            "queue": self.name,
            "capacity": self.capacity,
            "occupancy": self.occupancy,
            "entered": self.entered,
            "exited": self.exited,
            "integral_ns": self.integral_ns,
            "residence_sum_ns": self.residence_sum_ns,
            "live": [
                {"key": repr(k), "enter_ns": t, "site": site}
                for k, (t, site) in list(self._live.items())[:16]
            ],
        }

    def window_mismatches(self) -> List[Tuple[int, float, float]]:
        """Windows where occupancy-integral and residence-overlap diverge."""
        bad: List[Tuple[int, float, float]] = []
        for idx in sorted(set(self.occ_windows) | set(self.res_windows)):
            occ = self.occ_windows.get(idx, 0.0)
            res = self.res_windows.get(idx, 0.0)
            if not math.isclose(occ, res, rel_tol=REL_TOL, abs_tol=ABS_TOL_NS):
                bad.append((idx, occ, res))
        return bad


class CacheReplayChecker:
    """Verifies deferred LRU replay against scalar re-execution.

    Installed as ``CacheArray._sanitizer`` when sanitize mode is on.
    Each ``touch_batch`` records the queued run; at ``flush_batch`` the
    checker replays the accumulated runs with scalar
    :meth:`~repro.sim.cache.CacheArray.access` semantics over a
    snapshot taken *before* the first queued run, and requires the
    array's actual post-flush state to match exactly — order, tags,
    and dirty bits.
    """

    __slots__ = ("array", "runner", "_snapshot", "_runs", "checks")

    def __init__(self, array: "CacheArray", runner: "RunSanitizer") -> None:
        self.array = array
        self.runner = runner
        self._snapshot: Optional[List[List[Tuple[int, bool]]]] = None
        self._runs: List[Tuple[List[int], List[bool]]] = []
        self.checks = 0

    def on_touch(self, line_addrs: Any, writes: Any) -> None:
        """A verified all-hit run was queued for deferred replay."""
        if self._snapshot is None:
            self._snapshot = [list(ways) for ways in self.array._sets]
        self._runs.append((line_addrs.tolist(), writes.tolist()))

    def on_flush(self) -> None:
        """The queued runs were replayed; verify against scalar semantics."""
        if self._snapshot is None:
            return
        reference = self._snapshot
        runs, self._runs, self._snapshot = self._runs, [], None
        array = self.array
        line_bytes = array.line_bytes
        num_sets = array.num_sets
        for lines, writes in runs:
            for line, write in zip(lines, writes):
                ways = reference[(line // line_bytes) % num_sets]
                for i, (tag, dirty) in enumerate(ways):
                    if tag == line:
                        del ways[i]
                        ways.append((line, dirty or bool(write)))
                        break
                else:
                    self.runner.violate(
                        "batch-replay",
                        f"{array.name}: batched touch of non-resident line "
                        f"{line:#x}",
                        snapshot={"array": array.name, "line": line},
                    )
                    return
        self.checks += 1
        if reference != array._sets:
            diff_sets = [
                idx
                for idx, (want, got) in enumerate(zip(reference, array._sets))
                if want != got
            ]
            self.runner.violate(
                "batch-replay",
                f"{array.name}: deferred LRU replay diverged from scalar "
                f"re-execution in {len(diff_sets)} set(s)",
                snapshot={
                    "array": array.name,
                    "first_divergent_sets": diff_sets[:8],
                    "runs_replayed": len(runs),
                },
            )


class TlbReplayChecker:
    """The :class:`CacheReplayChecker` analogue for the fully-assoc TLB."""

    __slots__ = ("tlb", "runner", "_snapshot", "_runs", "checks")

    def __init__(self, tlb: "Tlb", runner: "RunSanitizer") -> None:
        self.tlb = tlb
        self.runner = runner
        self._snapshot: Optional[List[int]] = None
        self._runs: List[List[int]] = []
        self.checks = 0

    def on_touch(self, addrs: Any) -> None:
        """A verified all-hit run was queued for deferred replay."""
        if self._snapshot is None:
            self._snapshot = list(self.tlb._pages)
        self._runs.append(addrs.tolist())

    def on_flush(self) -> None:
        """The queued runs were replayed; verify against scalar semantics."""
        if self._snapshot is None:
            return
        reference = self._snapshot
        runs, self._runs, self._snapshot = self._runs, [], None
        tlb = self.tlb
        for addrs in runs:
            for addr in addrs:
                page = addr // tlb.page_bytes
                try:
                    reference.remove(page)
                except ValueError:
                    self.runner.violate(
                        "batch-replay",
                        f"TLB: batched touch of non-resident page {page:#x}",
                        snapshot={"page": page},
                    )
                    return
                reference.append(page)
        self.checks += 1
        if reference != tlb._pages:
            self.runner.violate(
                "batch-replay",
                "TLB: deferred LRU replay diverged from scalar re-execution",
                snapshot={
                    "want_mru_tail": reference[-8:],
                    "got_mru_tail": tlb._pages[-8:],
                    "runs_replayed": len(runs),
                },
            )


@dataclass(slots=True)
class SanitizerReport:
    """Everything one sanitized run checked, and how it came out."""

    routine: str = ""
    elapsed_ns: float = 0.0
    events_checked: int = 0
    window_ns: float = DEFAULT_WINDOW_NS
    queues: List[Dict[str, Any]] = field(default_factory=list)
    conservation: Dict[str, Any] = field(default_factory=dict)
    replay_checks: int = 0
    violations: List[SanitizerViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Did every invariant hold?"""
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the CI artifact's per-run payload)."""
        return {
            "routine": self.routine,
            "elapsed_ns": self.elapsed_ns,
            "events_checked": self.events_checked,
            "window_ns": self.window_ns,
            "ok": self.ok,
            "queues": self.queues,
            "conservation": self.conservation,
            "replay_checks": self.replay_checks,
            "violations": [v.to_dict() for v in self.violations],
        }


# Last completed report + per-process run counter, for the CLI summary
# and the CI artifact (REPRO_SANITIZE_REPORT).
_last_report: Optional[SanitizerReport] = None
_runs_sanitized = 0


def last_report() -> Optional[SanitizerReport]:
    """The most recent run's :class:`SanitizerReport`, if any."""
    return _last_report


def _publish(report: SanitizerReport) -> None:
    global _last_report, _runs_sanitized
    _last_report = report
    _runs_sanitized += 1
    path = os.environ.get("REPRO_SANITIZE_REPORT", "").strip()
    if not path:
        return
    doc = {"runs_sanitized": _runs_sanitized, "last_run": report.to_dict()}
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
    except OSError:  # repro: noqa[RES001] - report file is best-effort
        pass


class RunSanitizer:
    """Per-run instrumentation harness: wires hooks, runs finalize checks.

    Constructed by :class:`repro.sim.hierarchy.Hierarchy` when sanitize
    mode is enabled; attaches itself to the engine, every MSHR file,
    the memory controller, and the batch-touched arrays.  All hooks
    observe only — event ordering, stats arithmetic, and therefore the
    run fingerprint are untouched.
    """

    def __init__(self, hierarchy: "Hierarchy") -> None:
        self.hierarchy = hierarchy
        self.window_ns = sanitize_window_ns()
        self.last_time_ns = 0.0
        self.event_id = 0
        self.events_checked = 0
        self.scalar_issued = 0
        self.batch_issued = 0
        self.expected_accesses = 0
        self.writebacks = 0
        self.completions = 0
        self.violations: List[SanitizerViolation] = []
        self.report: Optional[SanitizerReport] = None

        engine = hierarchy.engine
        engine._sanitizer = self

        self.memq = QueueAudit("memctrl", window_ns=self.window_ns)
        hierarchy.memctrl._audit = self

        self.mshr_audits: List[Tuple[Any, QueueAudit]] = []
        self.replay_checkers: List[Any] = []
        for core in hierarchy.cores:
            for mshr in (core.l1_mshr, core.l2_mshr):
                audit = QueueAudit(
                    mshr.name, capacity=mshr.capacity, window_ns=self.window_ns
                )
                mshr._audit = audit
                self.mshr_audits.append((mshr, audit))
            checker = CacheReplayChecker(core.l1_array, self)
            core.l1_array._sanitizer = checker
            self.replay_checkers.append(checker)
            if core.tlb is not None:
                tlb_checker = TlbReplayChecker(core.tlb, self)
                core.tlb._sanitizer = tlb_checker
                self.replay_checkers.append(tlb_checker)

    # -- hot hooks --------------------------------------------------------------

    def on_event(self, time_ns: float, event_id: int) -> None:
        """Per engine event: times must be finite and nondecreasing."""
        self.events_checked += 1
        self.event_id = event_id
        if not (self.last_time_ns <= time_ns < _INF):
            raise SanitizerError(
                f"event {event_id} fired at {time_ns} ns after "
                f"{self.last_time_ns} ns",
                invariant="event-monotonic",
                time_ns=time_ns,
                event_id=event_id,
            )
        self.last_time_ns = time_ns

    def memctrl_enter(self, now_ns: float, key: Any, site: str) -> None:
        """A demand memory request arrived at the controller."""
        self.memq.enter(now_ns, key, site=site)

    def memctrl_exit(self, now_ns: float, key: Any) -> None:
        """A demand memory request completed."""
        self.completions += 1
        self.memq.exit(now_ns, key)

    def violate(
        self,
        invariant: str,
        message: str,
        *,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a violation (raised in bulk at finalize)."""
        self.violations.append(
            SanitizerViolation(
                invariant=invariant,
                message=message,
                time_ns=self.last_time_ns,
                event_id=self.event_id,
                snapshot=snapshot or {},
            )
        )

    # -- finalize ---------------------------------------------------------------

    def begin_run(self, trace: Any) -> None:
        """Record trace-derived expectations before the engine starts."""
        self.expected_accesses = sum(len(t) for t in trace.threads)

    def finalize(self, stats: Any, end_ns: float) -> SanitizerReport:
        """Run every end-of-run check; raise on any violation."""
        # Settle deferred replays so batch-replay checks cover the tail
        # runs.  Post-finalize LRU state is not a stats observable, so
        # this cannot perturb the fingerprint.
        for core in self.hierarchy.cores:
            core.l1_array.flush_batch()
            if core.tlb is not None:
                core.tlb.flush_batch()

        self._check_mshr_files(stats, end_ns)
        self._check_memctrl(stats, end_ns)
        self._check_conservation(stats)

        report = SanitizerReport(
            routine=stats.routine,
            elapsed_ns=end_ns,
            events_checked=self.events_checked,
            window_ns=self.window_ns,
            queues=self._queue_summaries(stats, end_ns),
            conservation=self._conservation_summary(stats),
            replay_checks=sum(c.checks for c in self.replay_checkers),
            violations=self.violations,
        )
        self.report = report
        _publish(report)
        if self.violations:
            first = self.violations[0]
            raise SanitizerError(
                f"{len(self.violations)} invariant violation(s); first: "
                f"{first.message}",
                invariant=first.invariant,
                time_ns=first.time_ns,
                event_id=first.event_id,
                snapshot=first.snapshot,
                report=report,
            )
        return report

    def _check_mshr_files(self, stats: Any, end_ns: float) -> None:
        for mshr, audit in self.mshr_audits:
            audit.close(end_ns)
            leaked = audit.leaked()
            if leaked or mshr.entries:
                sites = ", ".join(
                    f"line {key:#x} allocated at {site} ({t:.1f} ns)"
                    for key, t, site in leaked[:8]
                )
                self.violate(
                    "mshr-balance",
                    f"{mshr.name}: {len(leaked)} allocate(s) never released"
                    + (f": {sites}" if sites else ""),
                    snapshot=audit.snapshot(),
                )
                continue  # integrals are meaningless with live entries
            if audit.entered != mshr.allocations:
                self.violate(
                    "mshr-balance",
                    f"{mshr.name}: audit saw {audit.entered} allocates but "
                    f"the file counted {mshr.allocations}",
                    snapshot=audit.snapshot(),
                )
            # Mirror check: same (time, delta) sequence as the file's own
            # OccupancyTracker -> expected bit-equal.
            if not math.isclose(
                audit.integral_ns,
                mshr.tracker.integral_ns,
                rel_tol=MIRROR_REL_TOL,
                abs_tol=ABS_TOL_NS,
            ):
                self.violate(
                    "littles-law",
                    f"{mshr.name}: audit occupancy integral "
                    f"{audit.integral_ns} ns diverges from telemetry "
                    f"{mshr.tracker.integral_ns} ns",
                    snapshot=audit.snapshot(),
                )
            self._check_littles_law(audit)

    def _check_memctrl(self, stats: Any, end_ns: float) -> None:
        audit = self.memq
        audit.close(end_ns)
        leaked = audit.leaked()
        if leaked:
            self.violate(
                "mshr-balance",
                f"memctrl: {len(leaked)} request(s) never completed",
                snapshot=audit.snapshot(),
            )
            return
        # Telemetry twin: the controller records latency + (admit - now)
        # per demand request; the audit measures (admit + latency) - now.
        # Reassociation only -> REL_TOL.
        if not math.isclose(
            audit.residence_sum_ns,
            stats.memory.latency_sum_ns,
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL_NS,
        ):
            self.violate(
                "littles-law",
                f"memctrl: audited residence sum {audit.residence_sum_ns} ns "
                f"diverges from telemetry latency sum "
                f"{stats.memory.latency_sum_ns} ns (L = lambda*W broken)",
                snapshot=audit.snapshot(),
            )
        self._check_littles_law(audit)

    def _check_littles_law(self, audit: QueueAudit) -> None:
        """Whole-run and per-window occupancy == residence identity."""
        if not math.isclose(
            audit.integral_ns,
            audit.residence_sum_ns,
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL_NS,
        ):
            self.violate(
                "littles-law",
                f"{audit.name}: occupancy integral {audit.integral_ns} ns "
                f"!= residence sum {audit.residence_sum_ns} ns",
                snapshot=audit.snapshot(),
            )
        bad = audit.window_mismatches()
        if bad:
            idx, occ, res = bad[0]
            self.violate(
                "littles-law",
                f"{audit.name}: {len(bad)} window(s) break L = lambda*W; "
                f"first at window {idx} "
                f"[{idx * audit.window_ns:.0f}, "
                f"{(idx + 1) * audit.window_ns:.0f}) ns: "
                f"occupancy integral {occ} vs residence {res}",
                snapshot=audit.snapshot(),
            )

    def _check_conservation(self, stats: Any) -> None:
        issued = stats.issued_total()
        if self.scalar_issued + self.batch_issued != issued:
            self.violate(
                "stats-conserve",
                f"issued_total {issued} != scalar {self.scalar_issued} + "
                f"batch {self.batch_issued}",
            )
        if self.batch_issued != stats.batch_accesses:
            self.violate(
                "stats-conserve",
                f"batch_accesses {stats.batch_accesses} != audited batch "
                f"retires {self.batch_issued}",
            )
        if self.expected_accesses and issued != self.expected_accesses:
            self.violate(
                "stats-conserve",
                f"issued_total {issued} != trace accesses "
                f"{self.expected_accesses}",
            )
        for name, level in (("l1", stats.l1), ("l2", stats.l2), ("l3", stats.l3)):
            if level.accesses != level.hits + level.misses:
                self.violate(
                    "stats-conserve",
                    f"{name}: accesses {level.accesses} != hits {level.hits} "
                    f"+ misses {level.misses}",
                )
        if stats.memory.requests != self.completions + self.writebacks:
            self.violate(
                "stats-conserve",
                f"memctrl requests {stats.memory.requests} != completions "
                f"{self.completions} + writebacks {self.writebacks}",
            )
        if stats.memory.latency_count != self.completions:
            self.violate(
                "stats-conserve",
                f"memctrl latency_count {stats.memory.latency_count} != "
                f"audited completions {self.completions}",
            )

    # -- report assembly --------------------------------------------------------

    def _queue_summaries(self, stats: Any, end_ns: float) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for mshr, audit in self.mshr_audits:
            rows.append(self._summarize(audit, end_ns, mshr.tracker.integral_ns))
        rows.append(
            self._summarize(self.memq, end_ns, stats.memory.latency_sum_ns)
        )
        return rows

    @staticmethod
    def _summarize(
        audit: QueueAudit, end_ns: float, telemetry_ns: float
    ) -> Dict[str, Any]:
        avg_l = audit.integral_ns / end_ns if end_ns > 0 else 0.0
        lam = audit.exited / end_ns if end_ns > 0 else 0.0
        w = audit.residence_sum_ns / audit.exited if audit.exited else 0.0
        return {
            "queue": audit.name,
            "entered": audit.entered,
            "exited": audit.exited,
            "avg_occupancy": avg_l,
            "arrival_rate_per_ns": lam,
            "avg_residence_ns": w,
            "rate_times_latency": lam * w,
            "occupancy_integral_ns": audit.integral_ns,
            "residence_sum_ns": audit.residence_sum_ns,
            "telemetry_ns": telemetry_ns,
            "windows_checked": len(
                set(audit.occ_windows) | set(audit.res_windows)
            ),
        }

    def _conservation_summary(self, stats: Any) -> Dict[str, Any]:
        return {
            "issued_total": stats.issued_total(),
            "scalar_issued": self.scalar_issued,
            "batch_issued": self.batch_issued,
            "trace_accesses": self.expected_accesses,
            "memctrl_requests": stats.memory.requests,
            "completions": self.completions,
            "writebacks": self.writebacks,
        }
