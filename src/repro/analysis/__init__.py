"""``repro.analysis`` — reprolint, the repo's domain-aware lint engine.

Generic linters cannot see this project's load-bearing invariants:
determinism of the simulation path (bit-identical cache replay), unit
discipline (every ``1e9`` belongs to :mod:`repro.units`), cache-key
purity (every hashed dataclass field must reach the digest), slots
hygiene on the hot path, and physical consistency of the machine
registry.  ``reprolint`` checks all five mechanically; run it as
``repro lint [paths]`` or through :class:`LintRunner`.

See ``docs/LINTING.md`` for rule-by-rule rationale, the
``# repro: noqa[RULE-ID]`` suppression syntax, and how to add a rule.
"""

from __future__ import annotations

from .core import (
    FunctionDataflow,
    LintError,
    LintResult,
    LintRunner,
    Rule,
    Severity,
    SourceFile,
    Violation,
    all_rules,
    get_rule,
    iter_functions,
    iter_python_files,
    register,
)
from .reporters import render_json, render_text, to_json_doc

__all__ = [
    "FunctionDataflow",
    "LintError",
    "LintResult",
    "LintRunner",
    "Rule",
    "Severity",
    "SourceFile",
    "Violation",
    "all_rules",
    "get_rule",
    "iter_functions",
    "iter_python_files",
    "register",
    "render_json",
    "render_text",
    "to_json_doc",
]
