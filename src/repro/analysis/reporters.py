"""Render :class:`~repro.analysis.core.LintResult` as text or JSON.

The text form is the human default (``path:line:col: ID message``, one
per line, plus a summary); the JSON form is stable and machine-readable
for CI annotation tooling.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict

from .core import LintResult, Severity


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [violation.render() for violation in result.violations]
    errors = sum(
        1 for v in result.violations if v.severity is Severity.ERROR
    )
    warnings = len(result.violations) - errors
    if result.violations:
        by_rule = Counter(v.rule_id for v in result.violations)
        breakdown = ", ".join(
            f"{rule_id} x{count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{errors} error(s), {warnings} warning(s) "
            f"in {result.files_checked} file(s) [{breakdown}]"
        )
    else:
        lines.append(
            f"clean: {result.files_checked} file(s), "
            f"rules {', '.join(result.rules_run)}"
        )
    return "\n".join(lines)


def to_json_doc(result: LintResult) -> Dict[str, Any]:
    """The JSON-reporter document as a plain dict (testable form)."""
    return {
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "error_count": len(result.errors),
        "violation_count": len(result.violations),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule_id": v.rule_id,
                "severity": v.severity.value,
                "message": v.message,
            }
            for v in result.violations
        ],
    }


def render_json(result: LintResult) -> str:
    """Stable machine-readable report."""
    return json.dumps(to_json_doc(result), indent=2, sort_keys=True)
