"""SLOT — attribute discipline on the hot-path simulator classes.

PR 1's throughput work relies on ``__slots__`` in the event engine and
the per-access machinery (:mod:`repro.sim`): no instance ``__dict__``
means smaller objects, faster attribute loads, and a hard guarantee
that a typo'd attribute raises instead of silently creating state.
That guarantee erodes in two ways this rule catches statically:

* **SLOT001** — a method assigns ``self.<name>`` where ``<name>`` is
  not declared in the class's ``__slots__`` (or an analyzable base's).
  At runtime this is an ``AttributeError`` on a fully slotted chain —
  but only on the code path that executes it; the lint finds it before
  any simulation does.  If any base class is outside the analyzed
  module (so its layout is unknown), the class is skipped rather than
  guessed at.

Classes created with ``@dataclass(slots=True)`` are handled too: their
annotated fields are the slot set.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import Rule, SourceFile, Violation, register

#: Names every object carries regardless of slots.
_ALWAYS_OK = {"__class__", "__dict__"}


def _literal_str_elements(node: ast.expr) -> Optional[Set[str]]:
    """Element strings of a literal tuple/list/set of constants, if so."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: Set[str] = set()
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.add(element.value)
            else:
                return None
        return out
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    return None


def _declared_slots(cls: ast.ClassDef) -> Optional[Set[str]]:
    """``__slots__`` names declared directly on ``cls`` (literals only)."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return _literal_str_elements(stmt.value)
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
            and stmt.value is not None
        ):
            return _literal_str_elements(stmt.value)
    return None


def _is_slots_dataclass(cls: ast.ClassDef) -> bool:
    """Is ``cls`` decorated ``@dataclass(..., slots=True)``?"""
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _annotated_fields(cls: ast.ClassDef) -> Set[str]:
    """Class-level annotated names (dataclass field candidates)."""
    return {
        stmt.target.id
        for stmt in cls.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    }


class _ClassInfo:
    """Slot layout of one class, as far as the module's AST reveals it."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.bases: List[Optional[str]] = [
            base.id if isinstance(base, ast.Name) else None
            for base in node.bases
        ]
        if _is_slots_dataclass(node):
            self.slots: Optional[Set[str]] = _annotated_fields(node)
        else:
            self.slots = _declared_slots(node)


def _resolve_layout(
    info: _ClassInfo, table: Dict[str, _ClassInfo]
) -> Optional[Set[str]]:
    """Full slot set of a class, or ``None`` when any ancestor is opaque.

    Opaque means: a base that is not ``object``, is not defined in the
    same module, or does not itself declare ``__slots__`` (such a base
    contributes a ``__dict__`` and makes every assignment legal).
    """
    if info.slots is None:
        return None
    allowed = set(info.slots)
    for base_name in info.bases:
        if base_name == "object":
            continue
        if base_name is None or base_name not in table:
            return None
        base_layout = _resolve_layout(table[base_name], table)
        if base_layout is None:
            return None
        allowed |= base_layout
    return allowed


@register
class SlotsHygieneRule(Rule):
    """Keep hot-path sim classes free of out-of-slots attribute writes."""

    prefix = "SLOT"
    name = "slots-hygiene"
    description = (
        "no self.<attr> assignment outside __slots__ in repro.sim classes"
    )

    def applies_to(self, path: Path) -> bool:
        """Hot-path simulator classes only."""
        return "repro/sim" in path.as_posix()

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        """Report ``self.<attr>`` writes missing from the slots layout."""
        tree = source.tree
        if tree is None:
            return []
        table: Dict[str, _ClassInfo] = {
            node.name: _ClassInfo(node)
            for node in tree.body
            if isinstance(node, ast.ClassDef)
        }
        out: List[Violation] = []
        for info in table.values():
            allowed = _resolve_layout(info, table)
            if allowed is None:
                continue
            out.extend(
                self._check_class(source, info.node, allowed | _ALWAYS_OK)
            )
        return out

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef, allowed: Set[str]
    ) -> Iterable[Violation]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self_name = _first_positional(method)
            if self_name is None:
                continue
            for node, attr in _self_attribute_writes(method, self_name):
                if attr not in allowed:
                    yield Violation(
                        path=str(source.path),
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id="SLOT001",
                        message=(
                            f"{cls.name}.{method.name} assigns self.{attr} "
                            f"which is not in __slots__ "
                            f"({', '.join(sorted(allowed - _ALWAYS_OK))})"
                        ),
                        severity=self.default_severity,
                    )


def _first_positional(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Optional[str]:
    """Name of the receiver argument (``self``), if the method has one."""
    args = method.args
    if args.posonlyargs:
        return args.posonlyargs[0].arg
    if args.args:
        return args.args[0].arg
    return None


def _self_attribute_writes(
    method: ast.FunctionDef | ast.AsyncFunctionDef, self_name: str
) -> Sequence[Tuple[ast.expr, str]]:
    """Every ``self.X = ...`` / ``self.X += ...`` target in ``method``."""
    writes: List[Tuple[ast.expr, str]] = []
    for node in ast.walk(method):
        targets: Sequence[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        else:
            continue
        for target in targets:
            for leaf in _flatten_targets(target):
                if (
                    isinstance(leaf, ast.Attribute)
                    and isinstance(leaf.value, ast.Name)
                    and leaf.value.id == self_name
                ):
                    writes.append((leaf, leaf.attr))
    return writes


def _flatten_targets(target: ast.expr) -> Iterable[ast.expr]:
    """Expand tuple/list unpacking targets into leaf targets."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target
