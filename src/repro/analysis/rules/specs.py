"""SPEC — physical-invariant audit of the machine registry.

The machine specs are the single source of architectural truth (DESIGN
§machines): every recipe verdict, roofline ceiling, and simulated MSHR
file reads them.  A registry entry that is *internally* inconsistent
poisons everything downstream while each individual number still looks
plausible.  This semantic pass instantiates every registered machine
and asserts paper-grounded invariants:

* **SPEC001** — both MSHR files are non-empty (``mshrs > 0``): a
  zero-entry file makes Little's law (paper Eq. 1/2) degenerate.
* **SPEC002** — the cache line size is a power of two (address-to-line
  mapping in the simulator shifts, and real hardware agrees).
* **SPEC003** — the claimed streams-achievable bandwidth is actually
  deliverable through the L2 MSHR file at best-case latency:
  ``achievable_bw <= cores x L2_mshrs x line / lat_min`` (paper Eq. 2
  solved for bandwidth).  A spec violating this promises bandwidth its
  own concurrency bookkeeping cannot sustain.

The §IV-G concept parts (``hbm2e``, ``hbm3``) *deliberately* model the
MSHR-bound future — their achievable bandwidth exceeds the Eq. 2
ceiling by design — so SPEC003 reports them as warnings, not errors.
"""

from __future__ import annotations

import inspect
from typing import Any, Iterable, List, Sequence, Tuple

from ...units import to_gb_per_s
from ..core import Rule, Severity, SourceFile, Violation, register

#: Machines whose achievable bandwidth intentionally exceeds the L2-MSHR
#: ceiling (the paper's §IV-G "MSHRQ fills before peak bandwidth"
#: regime).  SPEC003 downgrades these to warnings.
MSHR_BOUND_BY_DESIGN = frozenset({"hbm2e", "hbm3"})


def _factory_location(name: str) -> Tuple[str, int]:
    """(path, line) of the registered factory for ``name``, best effort."""
    try:
        from ...machines import registry

        factory = registry._FACTORIES[name]
        path = inspect.getsourcefile(factory) or "<registry>"
        line = inspect.getsourcelines(factory)[1]
        return path, line
    except Exception:  # repro: noqa[RES001] - source lookup is best-effort
        return "<registry>", 1


def check_machine(
    machine: Any,
    *,
    report_path: str = "<registry>",
    report_line: int = 1,
    mshr_bound_ok: bool = False,
) -> Iterable[Violation]:
    """Audit one :class:`~repro.machines.spec.MachineSpec` instance."""
    out: List[Violation] = []

    def _emit(rule_id: str, message: str, severity: Severity) -> None:
        out.append(
            Violation(
                path=report_path,
                line=report_line,
                col=0,
                rule_id=rule_id,
                message=f"machine {machine.name!r}: {message}",
                severity=severity,
            )
        )

    for cache in (machine.l1, machine.l2):
        if cache.mshrs <= 0:
            _emit(
                "SPEC001",
                f"L{cache.level} MSHR count is {cache.mshrs}; Little's-law "
                "occupancy needs a positive MSHR file",
                Severity.ERROR,
            )

    line_bytes = machine.line_bytes
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        _emit(
            "SPEC002",
            f"cache line size {line_bytes} is not a power of two",
            Severity.ERROR,
        )

    # Eq. 2 ceiling at the machine's best-case (least-loaded) latency.
    latencies = [machine.memory.idle_latency_ns]
    latencies.extend(lat for _, lat in machine.latency_calibration)
    lat_min = min(latencies)
    if lat_min > 0 and machine.l2.mshrs > 0:
        ceiling = machine.max_bw_from_mshrs(2, lat_min)
        achievable = machine.memory.achievable_bw_bytes
        if achievable > ceiling:
            severity = Severity.WARNING if mshr_bound_ok else Severity.ERROR
            note = (
                " (declared MSHR-bound by design, paper §IV-G)"
                if mshr_bound_ok
                else ""
            )
            _emit(
                "SPEC003",
                f"achievable bandwidth {to_gb_per_s(achievable):.0f} GB/s "
                f"exceeds the Eq. 2 L2-MSHR ceiling "
                f"{to_gb_per_s(ceiling):.0f} GB/s "
                f"({machine.active_cores} cores x {machine.l2.mshrs} MSHRs x "
                f"{line_bytes} B / {lat_min:.0f} ns){note}",
                severity,
            )
    return out


@register
class SpecConsistencyRule(Rule):
    """Audit every registered machine's physical invariants."""

    prefix = "SPEC"
    name = "spec-consistency"
    description = (
        "registry machines must have positive MSHR files (SPEC001), "
        "power-of-two lines (SPEC002), and Eq.2-consistent achievable "
        "bandwidth (SPEC003)"
    )

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Violation]:
        """Validate every registered machine spec against the paper model."""
        if sources and not any(
            "repro/" in str(s.path).replace("\\", "/") for s in sources
        ):
            return []
        try:
            from ...machines.registry import get_machine, machine_names
        except Exception as exc:  # pragma: no cover - import breakage
            return [
                Violation(
                    path="src/repro/machines/registry.py",
                    line=1,
                    col=0,
                    rule_id="SPEC001",
                    message=f"cannot import machine registry for audit: {exc}",
                )
            ]
        out: List[Violation] = []
        for name in machine_names():
            try:
                machine = get_machine(name)
            except Exception as exc:
                path, line = _factory_location(name)
                out.append(
                    Violation(
                        path=path,
                        line=line,
                        col=0,
                        rule_id="SPEC001",
                        message=f"machine {name!r} fails to construct: {exc}",
                    )
                )
                continue
            path, line = _factory_location(name)
            out.extend(
                check_machine(
                    machine,
                    report_path=path,
                    report_line=line,
                    mshr_bound_ok=name in MSHR_BOUND_BY_DESIGN,
                )
            )
        return out
