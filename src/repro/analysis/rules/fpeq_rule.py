"""FPEQ — no raw float equality in the simulator or analytic model.

Little's-Law audits, latency accounting, and the analytic model all
accumulate IEEE doubles whose exact bit pattern depends on association
order; two mathematically equal quantities routinely differ in the last
ulp (docs/SANITIZER.md quantifies this for the sanitizer's own mirror
audits).  A raw ``==`` / ``!=`` between floats therefore encodes a
comparison that is *sometimes* true, which is worse than one that is
never true.  Inside :mod:`repro.sim` and :mod:`repro.perfmodel`:

* **FPEQ001** — an ``==`` or ``!=`` whose operand is provably a float:
  a float literal, a ``float(...)`` cast, arithmetic over either, or a
  local name the dataflow pass has proven float-valued (assigned from a
  float expression, or annotated ``float`` as a parameter or variable).
  Compare with a tolerance instead — ``math.isclose`` with documented
  ``rel_tol``/``abs_tol``, or the sanitizer's published tolerances.

Sanctioned tolerance helpers — functions whose name contains
``isclose``, ``close`` or ``approx`` — are skipped wholesale: a helper
that *implements* the tolerance comparison may need an exact-equality
fast path (``a == b`` short-circuits ``isclose``).

Float-typedness of locals rides on the same forward must-facts walker
as the BARRIER rule (:class:`repro.analysis.core.FunctionDataflow`):
a name is only trusted as float when every path assigns it one, so the
rule under-reports rather than crying wolf on union-typed values.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple

from ..core import FunctionDataflow, Rule, SourceFile, Violation, iter_functions, register

#: Package sub-paths the rule guards.
_GUARDED = ("repro/sim", "repro/perfmodel")

#: Substrings marking a function as a sanctioned tolerance helper.
_SANCTIONED_MARKERS = ("isclose", "close", "approx")

_EQUALITY_OPS = (ast.Eq, ast.NotEq)


def _is_float_annotation(annotation: Optional[ast.expr]) -> bool:
    """Does this annotation expression spell ``float``?"""
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant):  # from __future__ strings
        return annotation.value == "float"
    return False


def _float_args(func: ast.FunctionDef) -> Set[object]:
    """Entry facts: parameter names annotated ``float``."""
    args = func.args
    every = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return {a.arg for a in every if _is_float_annotation(a.annotation)}


class _FpeqFlow(FunctionDataflow):
    """Tracks float-proven names; records raw ``==``/``!=`` on floats."""

    def __init__(self) -> None:
        self.findings: Set[Tuple[int, int, str]] = set()

    # -- float-expression predicate ----------------------------------------------

    def _is_float(self, node: ast.expr, facts: Set[object]) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in facts
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "float"
        if isinstance(node, ast.UnaryOp):
            return self._is_float(node.operand, facts)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                # True division yields float for any numeric operands.
                return True
            return self._is_float(node.left, facts) or self._is_float(
                node.right, facts
            )
        if isinstance(node, ast.IfExp):
            return self._is_float(node.body, facts) and self._is_float(
                node.orelse, facts
            )
        return False

    # -- dataflow hooks ----------------------------------------------------------

    def flow_expr(self, node: ast.expr, facts: Set[object]) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Compare):
                continue
            operands = [sub.left, *sub.comparators]
            for i, op in enumerate(sub.ops):
                if not isinstance(op, _EQUALITY_OPS):
                    continue
                left, right = operands[i], operands[i + 1]
                floaty = next(
                    (x for x in (left, right) if self._is_float(x, facts)), None
                )
                if floaty is not None:
                    spelled = "!=" if isinstance(op, ast.NotEq) else "=="
                    self.findings.add(
                        (
                            sub.lineno,
                            sub.col_offset,
                            f"raw float {spelled} on {ast.unparse(floaty)!r} — "
                            "accumulated doubles differ in the last ulp by "
                            "association order; use math.isclose with explicit "
                            "rel_tol/abs_tol (see docs/SANITIZER.md tolerances)",
                        )
                    )

    def flow_bind(self, target: ast.expr, facts: Set[object]) -> None:
        if isinstance(target, ast.Name):
            facts.discard(target.id)

    def flow_assignment(self, stmt: ast.stmt, facts: Set[object]) -> None:
        if isinstance(stmt, ast.Assign):
            if stmt.value is not None and self._is_float(stmt.value, facts):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        facts.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _is_float_annotation(stmt.annotation) or (
                stmt.value is not None and self._is_float(stmt.value, facts)
            ):
                facts.add(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            if self._is_float(stmt.value, facts):
                facts.add(stmt.target.id)


def _sanctioned(func: ast.FunctionDef) -> bool:
    """Tolerance helpers may use exact equality as a fast path."""
    lowered = func.name.lower()
    return any(marker in lowered for marker in _SANCTIONED_MARKERS)


@register
class FloatEqualityRule(Rule):
    """Forbid raw ==/!= on floats in repro.sim and repro.perfmodel."""

    prefix = "FPEQ"
    name = "float-equality"
    description = (
        "no raw ==/!= on floats in repro.sim or repro.perfmodel outside "
        "sanctioned tolerance helpers (FPEQ001)"
    )

    def applies_to(self, path: Path) -> bool:
        """Simulator and analytic-model packages."""
        posix = path.as_posix()
        return any(part in posix for part in _GUARDED)

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        """Run the float-typedness dataflow over every scope."""
        tree = source.tree
        if tree is None:
            return []
        flow = _FpeqFlow()
        flow.analyze(tree.body)
        for func in iter_functions(tree):
            if _sanctioned(func):
                continue
            flow.analyze(func.body, entry=_float_args(func))
        out: List[Violation] = []
        for line, col, message in sorted(flow.findings):
            out.append(
                Violation(
                    path=str(source.path),
                    line=line,
                    col=col,
                    rule_id="FPEQ001",
                    message=message,
                    severity=self.default_severity,
                )
            )
        return out
