"""Built-in reprolint rules.

Importing this package registers every rule with
:mod:`repro.analysis.core`'s registry (each module uses the
``@register`` decorator at class-definition time).
"""

from __future__ import annotations

from .barrier_rule import BarrierRule
from .cachekey import CacheKeyRule
from .determinism import DeterminismRule
from .fpeq_rule import FloatEqualityRule
from .resilience_rule import ResilienceHygieneRule
from .slots_rule import SlotsHygieneRule
from .specs import SpecConsistencyRule
from .units_rule import UnitSafetyRule

__all__ = [
    "BarrierRule",
    "CacheKeyRule",
    "DeterminismRule",
    "FloatEqualityRule",
    "ResilienceHygieneRule",
    "SlotsHygieneRule",
    "SpecConsistencyRule",
    "UnitSafetyRule",
]
