"""UNIT — unit-conversion constants belong in :mod:`repro.units`.

Getting one factor of ``1e9`` wrong silently corrupts every MLP number
the library produces (bandwidths are bytes/s internally, latencies are
seconds, the paper quotes GB/s and ns).  All conversions therefore live
in :mod:`repro.units`; the rest of the package must call those helpers
(or use the named ``GIGA``/``NANO``-style constants they are built
from) instead of open-coding the factors:

* **UNIT001** — a bare SI scaling literal (``1e3``/``1e6``/``1e9``/
  ``1e12`` or an inverse) used as a multiplication/division operand.
* **UNIT002** — a ``2**10``/``2**20``/``2**30``-style binary size
  factor used as a multiplication/division operand.

Only *float* literals trigger UNIT001: integer literals such as
``1024`` are address arithmetic and cache geometry, not unit
conversions, and remain allowed.  The rule skips ``units.py`` itself
and test code (which legitimately asserts against raw factors when
testing the helpers).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional

from ..core import Rule, SourceFile, Violation, register

#: Decimal SI factors that must come from repro.units.
_SI_FLOATS = {
    1.0e3,
    1.0e6,
    1.0e9,
    1.0e12,
    1.0e-3,
    1.0e-6,
    1.0e-9,
    1.0e-12,
}

#: Exponents of binary byte-size factors (KiB/MiB/GiB/TiB).
_BINARY_EXPONENTS = {10, 20, 30, 40}


def _si_operand(node: ast.expr) -> Optional[float]:
    """The SI float literal in ``node`` (unary minus tolerated), if any."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value in _SI_FLOATS
    ):
        return node.value
    return None


def _binary_pow_operand(node: ast.expr) -> Optional[int]:
    """The exponent when ``node`` is a ``2**{10,20,30,40}`` literal."""
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Pow)
        and isinstance(node.left, ast.Constant)
        and node.left.value == 2
        and isinstance(node.right, ast.Constant)
        and isinstance(node.right.value, int)
        and node.right.value in _BINARY_EXPONENTS
    ):
        return node.right.value
    return None


@register
class UnitSafetyRule(Rule):
    """Flag open-coded unit-conversion factors outside ``units.py``."""

    prefix = "UNIT"
    name = "unit-safety"
    description = (
        "SI scaling floats (UNIT001) and 2**30-style size factors "
        "(UNIT002) must come from repro.units helpers/constants"
    )

    def applies_to(self, path: Path) -> bool:
        """Library sources except units.py itself, tests, and this engine."""
        posix = path.as_posix()
        if "repro/analysis" in posix:
            # The lint engine documents the very constants it hunts.
            return False
        return (
            "repro/" in posix
            and not posix.endswith("repro/units.py")
            and "tests/" not in posix
        )

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        """Flag SI/power-of-two conversion constants used in mul/div."""
        tree = source.tree
        if tree is None:
            return []
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp) or not isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                continue
            for operand in (node.left, node.right):
                value = _si_operand(operand)
                if value is not None:
                    out.append(
                        Violation(
                            path=str(source.path),
                            line=operand.lineno,
                            col=operand.col_offset,
                            rule_id="UNIT001",
                            message=(
                                f"open-coded SI factor {value!r} — use a "
                                "repro.units helper (gb_per_s, ns, to_ghz, "
                                "…) or its named constant"
                            ),
                            severity=self.default_severity,
                        )
                    )
                exponent = _binary_pow_operand(operand)
                if exponent is not None:
                    out.append(
                        Violation(
                            path=str(source.path),
                            line=operand.lineno,
                            col=operand.col_offset,
                            rule_id="UNIT002",
                            message=(
                                f"open-coded binary size factor 2**{exponent} "
                                "— centralize byte-size conversions in "
                                "repro.units"
                            ),
                            severity=self.default_severity,
                        )
                    )
        return out
