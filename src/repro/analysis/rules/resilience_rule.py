"""RES — resilience hygiene: no silent exception swallows.

PR 4 gives the pipeline sanctioned places to absorb failure: the
:mod:`repro.resilience` package (fault injection, retry, checkpoint)
and :func:`repro.perf.parallel.fan_out`'s pool machinery, where broken
workers are part of the contract and every absorbed error is accounted
for in a per-item outcome.  Everywhere else, a handler that catches a
broad exception class and silently discards it hides exactly the
failures the resilience layer exists to surface:

* **RES001** — a ``try``/``except`` handler that catches a broad type
  (bare ``except``, ``Exception``, ``BaseException``) or the
  ever-tempting ``OSError``/``IOError`` and whose body merely discards
  control (``pass``, ``...``, ``continue``, ``break``, or a plain
  ``return``) without re-raising, warning, logging, or consulting the
  exception.  Genuine best-effort sites (a quarantine rename, a temp
  file cleanup) must carry an explicit
  ``# repro: noqa[RES001] - <why>`` so the suppression is auditable.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List

from ..core import Rule, SourceFile, Violation, register

#: Exception names whose silent discard is flagged.  Narrow domain
#: types (``TraceError``, ``KeyError``...) are a deliberate decision by
#: the author; these broad ones are where real failures go to die.
_BROAD_TYPES = {"Exception", "BaseException", "OSError", "IOError"}

#: Sub-paths sanctioned to absorb failures (the resilience layer
#: itself, and the pool machinery whose contract is per-item recovery).
_SANCTIONED = ("repro/resilience/", "repro/perf/parallel.py")


def _caught_broad(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch one of the broad exception types?"""
    node = handler.type
    if node is None:  # bare ``except:``
        return True
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in types:
        if isinstance(item, ast.Name) and item.id in _BROAD_TYPES:
            return True
        if isinstance(item, ast.Attribute) and item.attr in _BROAD_TYPES:
            return True
    return False


def _is_silent_discard(handler: ast.ExceptHandler) -> bool:
    """Is the handler body pure control-flow with no handling evidence?

    ``pass``/``...``/``continue``/``break`` and plain value returns
    discard the failure; any other statement (a ``raise``, a
    ``warnings.warn`` or logger call, bookkeeping on a counter, use of
    the bound exception) counts as handling.
    """
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ``...``
        if isinstance(stmt, ast.Return) and _returns_plain_value(stmt, handler):
            continue
        return False
    return True


def _returns_plain_value(stmt: ast.Return, handler: ast.ExceptHandler) -> bool:
    """A return that never consults the caught exception."""
    if stmt.value is None or handler.name is None:
        return True
    return not any(
        isinstance(node, ast.Name) and node.id == handler.name
        for node in ast.walk(stmt.value)
    )


def _describe(handler: ast.ExceptHandler) -> str:
    if handler.type is None:
        return "bare except"
    return f"except {ast.unparse(handler.type)}"


@register
class ResilienceHygieneRule(Rule):
    """Forbid silent broad-exception swallows outside the resilience layer."""

    prefix = "RES"
    name = "resilience-hygiene"
    description = (
        "no silent except Exception/OSError swallows (RES001) outside "
        "repro.resilience and the fan-out pool machinery"
    )

    def applies_to(self, path: Path) -> bool:
        """Library code only; the resilience layer itself is sanctioned."""
        posix = path.as_posix()
        if "repro/" not in posix or "tests/" in posix:
            return False
        return not any(part in posix for part in _SANCTIONED)

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        """Flag broad handlers whose body silently discards the failure."""
        tree = source.tree
        if tree is None:
            return []
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not (_caught_broad(node) and _is_silent_discard(node)):
                continue
            out.append(
                Violation(
                    path=str(source.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id="RES001",
                    message=(
                        f"{_describe(node)} silently swallows the failure — "
                        "re-raise, warn, or record it (degraded-mode paths "
                        "collect DataQualityIssues); genuinely best-effort "
                        "sites need '# repro: noqa[RES001] - <why>'"
                    ),
                    severity=self.default_severity,
                )
            )
        return out
