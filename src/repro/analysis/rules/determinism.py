"""DET — determinism guard for the simulator and model code.

PR 1's result cache replays :class:`~repro.sim.stats.SimStats` bit for
bit, and the paper-table reproductions assert exact agreement across
runs.  Both properties die silently the moment wall-clock time or
process-global randomness leaks into the simulation path, so inside
:mod:`repro.sim`, :mod:`repro.perfmodel`, and :mod:`repro.workloads`:

* **DET001** — no wall-clock reads (``time.time()``, ``perf_counter()``,
  ``datetime.now()``, …).  Host-side observability metadata (e.g. the
  ``wall_s`` stat) must carry an explicit ``# repro: noqa[DET001]``.
* **DET002** — no process-global RNG (``random.random()``,
  ``random.randrange()``, …) and no *unseeded* ``random.Random()``.
  The same policy covers numpy since the generators vectorized: the
  legacy global API (``np.random.randint()``, ``np.random.seed()``, …)
  is forbidden outright, and ``numpy.random.Generator`` construction
  (``default_rng()``, bit generators like ``PCG64()``) is allowed only
  with an explicit seed argument.  The blessed patterns are an explicit
  ``rng`` parameter seeded from ``TraceSpec.seed`` and forked per
  thread via :func:`repro.workloads.generators.spawn_thread_rng`
  (scalar) or :func:`repro.workloads.generators.spawn_thread_generator`
  (vectorized).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ..core import Rule, Severity, SourceFile, Violation, register

#: Wall-clock attributes of the ``time`` module.
_TIME_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "localtime",
    "gmtime",
}

#: Wall-clock constructors on ``datetime``/``date`` classes.
_DATETIME_FUNCS = {"now", "utcnow", "today"}

#: ``random``-module functions that consume the hidden global state.
_RANDOM_FUNCS = {
    "random",
    "randrange",
    "randint",
    "randbytes",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "expovariate",
    "seed",
    "getrandbits",
    "triangular",
    "betavariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "lognormvariate",
}

#: ``numpy.random`` module-level functions backed by the hidden legacy
#: global ``RandomState`` (non-exhaustive is fine: any hit is a bug).
_NUMPY_GLOBAL_FUNCS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "seed",
    "get_state",
    "set_state",
    "shuffle",
    "permutation",
    "choice",
    "bytes",
    "uniform",
    "normal",
    "standard_normal",
    "poisson",
    "exponential",
    "beta",
    "gamma",
    "binomial",
    "lognormal",
    "laplace",
    "pareto",
    "weibull",
}

#: ``numpy.random`` bit-generator classes; unseeded construction pulls
#: OS entropy, which is exactly the nondeterminism this rule forbids.
_NUMPY_BIT_GENERATORS = {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}

#: Module roots whose imports/aliases the rule tracks.
_TRACKED_ROOTS = ("time", "random", "datetime", "numpy")

#: Package sub-paths the rule guards (deterministic by contract).
_GUARDED = ("repro/sim", "repro/perfmodel", "repro/workloads")


def _module_aliases(tree: ast.Module) -> Dict[str, Set[str]]:
    """Map local name -> set of module origins ('time'/'random'/'datetime').

    Tracks both ``import time as t`` (name ``t`` is the module) and
    ``from time import perf_counter as pc`` (name ``pc`` is a function,
    recorded as ``origin:attr``).
    """
    aliases: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                root = item.name.split(".")[0]
                if root in _TRACKED_ROOTS:
                    aliases.setdefault(item.asname or root, set()).add(root)
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            if root in _TRACKED_ROOTS:
                for item in node.names:
                    # The full module path distinguishes numpy.random
                    # members from numpy top-level ones; for the stdlib
                    # modules it equals the root.
                    aliases.setdefault(item.asname or item.name, set()).add(
                        f"{node.module}:{item.name}"
                    )
    return aliases


@register
class DeterminismRule(Rule):
    """Forbid wall-clock and global-RNG use in deterministic modules."""

    prefix = "DET"
    name = "determinism"
    description = (
        "no wall-clock (DET001) or process-global/unseeded RNG (DET002) "
        "inside repro.sim, repro.perfmodel, or repro.workloads"
    )

    def applies_to(self, path: Path) -> bool:
        """Only the deterministic packages (sim, perfmodel, workloads)."""
        posix = path.as_posix()
        return any(part in posix for part in _GUARDED)

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        """Flag wall-clock and unseeded-RNG calls in one AST walk."""
        tree = source.tree
        if tree is None:
            return []
        aliases = _module_aliases(tree)
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for rule_id, message in self._call_findings(node, aliases):
                out.append(
                    Violation(
                        path=str(source.path),
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=rule_id,
                        message=message,
                        severity=self.default_severity,
                    )
                )
        return out

    def _call_findings(
        self, node: ast.Call, aliases: Dict[str, Set[str]]
    ) -> Iterator[Tuple[str, str]]:
        func = node.func
        # module.attr() style: time.time(), random.random(), datetime.now()
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            origins = aliases.get(func.value.id, set())
            attr = func.attr
            if "time" in origins and attr in _TIME_FUNCS:
                yield (
                    "DET001",
                    f"wall-clock call time.{attr}() in deterministic module "
                    "(breaks bit-identical replay; noqa host-side metadata "
                    "explicitly)",
                )
            if "random" in origins:
                if attr in _RANDOM_FUNCS:
                    yield (
                        "DET002",
                        f"process-global RNG call random.{attr}() — "
                        "thread a seeded random.Random through an explicit "
                        "rng parameter instead",
                    )
                elif attr == "Random" and not node.args and not node.keywords:
                    yield (
                        "DET002",
                        "unseeded random.Random() — seed it from the trace "
                        "spec (or use workloads.generators.spawn_thread_rng)",
                    )
            # numpy.random members via a module alias: ``import
            # numpy.random as npr`` (origin 'numpy') or ``from numpy
            # import random as npr`` (origin 'numpy:random').
            if "numpy" in origins or "numpy:random" in origins:
                yield from self._numpy_rng_findings(
                    node, attr, f"{func.value.id}.{attr}()"
                )
            # ``import datetime; datetime.date.today()`` has no Name base
            # here (covered by the chained branch below); this one covers
            # ``from datetime import datetime/date`` class aliases.
            if attr in _DATETIME_FUNCS and (
                "datetime" in origins
                or "datetime:datetime" in origins
                or "datetime:date" in origins
            ):
                yield (
                    "DET001",
                    f"wall-clock call {func.value.id}.{attr}() in "
                    "deterministic module",
                )
        # chained module access: datetime.datetime.now()
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DATETIME_FUNCS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and "datetime" in aliases.get(func.value.value.id, set())
        ):
            yield (
                "DET001",
                f"wall-clock call datetime.{func.value.attr}.{func.attr}() "
                "in deterministic module",
            )
        # chained numpy access: np.random.randint(), np.random.default_rng()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and "numpy" in aliases.get(func.value.value.id, set())
        ):
            yield from self._numpy_rng_findings(
                node,
                func.attr,
                f"{func.value.value.id}.random.{func.attr}()",
            )
        # from-imports: perf_counter(), random(), now()
        if isinstance(func, ast.Name):
            for origin in aliases.get(func.id, set()):
                if ":" not in origin:
                    continue
                root, attr = origin.split(":", 1)
                if root == "time" and attr in _TIME_FUNCS:
                    yield (
                        "DET001",
                        f"wall-clock call {func.id}() (= time.{attr}) in "
                        "deterministic module",
                    )
                elif root == "random" and attr in _RANDOM_FUNCS:
                    yield (
                        "DET002",
                        f"process-global RNG call {func.id}() "
                        f"(= random.{attr})",
                    )
                elif (
                    root == "random"
                    and attr == "Random"
                    and not node.args
                    and not node.keywords
                ):
                    yield ("DET002", "unseeded Random() — seed it explicitly")
                elif root == "datetime" and attr in ("datetime", "date"):
                    # ``from datetime import datetime`` then datetime.now()
                    # is caught by the Attribute branch via this alias.
                    continue
                elif root == "numpy.random":
                    # ``from numpy.random import default_rng`` etc.
                    yield from self._numpy_rng_findings(
                        node, attr, f"{func.id}() (= numpy.random.{attr})"
                    )

    def _numpy_rng_findings(
        self, node: ast.Call, attr: str, shown: str
    ) -> Iterator[Tuple[str, str]]:
        """DET002 findings for one ``numpy.random`` member call.

        Legacy global-state functions are always wrong; Generator
        construction (``default_rng`` or a bit-generator class) is fine
        *iff* it receives an explicit seed argument.
        """
        if attr in _NUMPY_GLOBAL_FUNCS:
            yield (
                "DET002",
                f"legacy global numpy RNG call {shown} — use an explicitly "
                "seeded numpy.random.Generator (see "
                "workloads.generators.spawn_thread_generator)",
            )
        elif (
            attr == "default_rng" or attr in _NUMPY_BIT_GENERATORS
        ) and not (node.args or node.keywords):
            yield (
                "DET002",
                f"unseeded {shown} — numpy Generators are allowed only "
                "with an explicit seed (see "
                "workloads.generators.spawn_thread_generator)",
            )
