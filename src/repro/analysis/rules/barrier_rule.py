"""BARRIER — deferred-replay barriers before scalar residency reads.

PR 5's batch fast path queues :meth:`touch_batch` runs on
:class:`~repro.sim.cache.CacheArray` and :class:`~repro.sim.tlb.Tlb`
instead of reordering LRU lists immediately; the queued runs replay on
the next :meth:`flush_batch` (or any self-flushing mutator).  Between a
touch and its flush, the *membership* of each set is exact but the
*recency order* is stale — so any scalar read of residency state taken
in that window silently observes pre-batch LRU order.  ``probe_batch``
is exempt (membership-only by contract), but scalar reads are not:

* **BARRIER001** — a scalar residency read (``.probe(...)``,
  ``.resident_lines()``, ``.resident_pages``, or a direct ``._sets`` /
  ``._pages`` peek) whose receiver is not provably flushed on **every**
  path from function entry.  A receiver is flushed by ``.flush_batch()``
  or by the self-flushing mutators ``.access()`` / ``.fill()`` /
  ``.invalidate()``; the fact is killed by ``.touch_batch()`` and by
  rebinding the receiver's root name.

The check is a forward must-facts dataflow pass (branches intersect,
loop bodies run to a conservative two-pass fixpoint, ``except``
handlers assume nothing), built on
:class:`repro.analysis.core.FunctionDataflow`.  It is intraprocedural:
a flush performed by a callee does not count, which is the intended
contract — the barrier must be visible in the function that reads.
The batch machinery itself (``cache.py``, ``tlb.py``, ``batch.py``) is
out of scope: those files *implement* the pending queue and must read
around it.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple

from ..core import FunctionDataflow, Rule, SourceFile, Violation, iter_functions, register

#: Method calls that replay every pending batched touch on the receiver.
_FLUSHING_CALLS = frozenset({"flush_batch", "access", "fill", "invalidate"})

#: Method calls that enqueue deferred touches (stale LRU until flushed).
_STALING_CALLS = frozenset({"touch_batch"})

#: Scalar residency reads spelled as method calls.
_READ_CALLS = frozenset({"probe", "resident_lines"})

#: Scalar residency reads spelled as attribute access.
_READ_ATTRS = frozenset({"resident_pages", "_sets", "_pages"})

#: Files that implement the deferred-replay machinery itself.
_EXEMPT_FILES = frozenset({"cache.py", "tlb.py", "batch.py"})


def _root_name(node: ast.expr) -> Optional[str]:
    """The Name at the base of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _BarrierFlow(FunctionDataflow):
    """Tracks which receivers are flush-clean; records unguarded reads."""

    def __init__(self) -> None:
        self.findings: Set[Tuple[int, int, str]] = set()

    def flow_expr(self, node: ast.expr, facts: Set[object]) -> None:
        # Walk the whole expression tree: reads hide in call arguments,
        # boolean operands, comprehension conditions, ...
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                receiver = ast.unparse(sub.func.value)
                attr = sub.func.attr
                if attr in _READ_CALLS:
                    self._check_read(sub, receiver, f"{attr}()", facts)
                elif attr in _FLUSHING_CALLS:
                    facts.add(receiver)
                elif attr in _STALING_CALLS:
                    facts.discard(receiver)
            elif isinstance(sub, ast.Attribute) and sub.attr in _READ_ATTRS:
                # Skip the Attribute node serving as a call's func (the
                # Call branch above already classified it).
                if isinstance(sub.ctx, ast.Load):
                    self._check_read(sub, ast.unparse(sub.value), sub.attr, facts)

    def flow_bind(self, target: ast.expr, facts: Set[object]) -> None:
        root = _root_name(target)
        if root is not None:
            stale = [f for f in facts if isinstance(f, str) and _fact_root(f) == root]
            for fact in stale:
                facts.discard(fact)

    def _check_read(
        self, node: ast.AST, receiver: str, shown: str, facts: Set[object]
    ) -> None:
        if receiver not in facts:
            self.findings.add(
                (
                    node.lineno,
                    node.col_offset,
                    f"scalar residency read {receiver}.{shown} without a "
                    f"deferred-replay barrier: call {receiver}.flush_batch() "
                    "on every path from function entry first (batched "
                    "touch_batch runs leave LRU order stale until replayed)",
                )
            )


def _fact_root(fact: str) -> str:
    """Root identifier of a receiver string ('self.cores[i].l1' -> 'self')."""
    for i, ch in enumerate(fact):
        if not (ch.isalnum() or ch == "_"):
            return fact[:i]
    return fact


@register
class BarrierRule(Rule):
    """Require flush_batch() before scalar residency reads in repro.sim."""

    prefix = "BARRIER"
    name = "replay-barrier"
    description = (
        "scalar residency reads (.probe/.resident_lines/.resident_pages) in "
        "repro.sim must be preceded by flush_batch() on all paths (BARRIER001)"
    )

    def applies_to(self, path: Path) -> bool:
        """Simulator package only, minus the batch machinery itself."""
        return "repro/sim" in path.as_posix() and path.name not in _EXEMPT_FILES

    def check_file(self, source: SourceFile) -> Iterable[Violation]:
        """Run the must-flushed dataflow over every scope in the file."""
        tree = source.tree
        if tree is None:
            return []
        flow = _BarrierFlow()
        flow.analyze(tree.body)
        for func in iter_functions(tree):
            flow.analyze(func.body)
        out: List[Violation] = []
        for line, col, message in sorted(flow.findings):
            out.append(
                Violation(
                    path=str(source.path),
                    line=line,
                    col=col,
                    rule_id="BARRIER001",
                    message=message,
                    severity=self.default_severity,
                )
            )
        return out
