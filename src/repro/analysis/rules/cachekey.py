"""KEY — cache-key purity for the content-addressed sim-result cache.

:mod:`repro.perf.cache` memoizes whole simulations under a SHA-256 of
their physical inputs.  The digest stays correct only while **every**
field of every hashed dataclass is reachable from the digest function;
a newly added field that the digest ignores silently *aliases* cache
entries (two different simulations, one stored result).  Two checks:

* **KEY001** (structural) — walk the dataclass graph actually hashed
  (``SimConfig`` -> ``MachineSpec`` -> ``CacheSpec``/``VectorSpec``/
  ``MemorySpec``) and assert ``_canonical`` emits every field of every
  dataclass as a key.  ``_canonical`` iterates ``dataclasses.fields``
  today, so this passes by construction — and starts failing the day
  someone rewrites it with manual enumeration.
* **KEY002** (behavioral) — the trace side of the key is
  :func:`repro.sim.coltrace.trace_digest`, a manual enumeration (it
  hashes raw array bytes for speed), so structure is not enough: for
  tiny fixture traces — one per representation, object ``Trace`` and
  ``ColumnarTrace`` — mutate each dataclass field in turn and assert
  the digest changes.  A field whose mutation leaves the digest
  unchanged is unreachable from the digest; a field the checker cannot
  mutate is reported as a warning so its author extends the mutation
  table rather than shipping an unverifiable key.  Numpy array fields
  are mutated element-wise (length-preserving, so the columnar classes'
  equal-length invariant holds).

Both checks run against the *live* modules, so the rule needs no
source-location heuristics: any drift between the dataclasses and the
digest code is caught on the next ``repro lint``.
"""

from __future__ import annotations

import dataclasses
import enum
import inspect
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Rule, Severity, SourceFile, Violation, register


def _source_location(obj: Any) -> Tuple[str, int]:
    """Best-effort (path, line) of a live function/module for reporting."""
    try:
        path = inspect.getsourcefile(obj) or "<unknown>"
        line = inspect.getsourcelines(obj)[1]
        return path, line
    except (OSError, TypeError):  # repro: noqa[RES001] - source lookup is best-effort
        return "<unknown>", 1


def _mutation_candidates(value: Any) -> List[Any]:
    """Plausible replacement values for one field, in preference order.

    Several are offered because the owning dataclass (or an ancestor in
    the object graph) may reject some via its own validation; the first
    candidate that survives construction all the way up is used.
    """
    if isinstance(value, bool):
        return [not value]
    if isinstance(value, enum.Enum):
        return [m for m in type(value) if m is not value]
    if isinstance(value, np.ndarray):
        # Length-preserving only: the columnar trace classes enforce
        # equal column lengths, so resizing one column can never survive
        # construction.  (Also returns before the generic != filter
        # below, which is ambiguous on arrays.)
        if value.size == 0:
            return []
        if np.issubdtype(value.dtype, np.integer):
            # The %-variant keeps small code domains (AccessKind) valid.
            return [value + 1, (value + 1) % 4]
        if np.issubdtype(value.dtype, np.floating):
            return [value + 1.0, value * 0.5 + 0.25]
        return []
    if isinstance(value, int):
        raw: List[Any] = [value + 1, value + 2, max(0, value - 1), value * 2 + 1]
    elif isinstance(value, float):
        raw = [value + 1.0, value * 0.5 + 0.25]
    elif isinstance(value, str):
        raw = [value + "_mut"]
    elif isinstance(value, tuple) and value:
        raw = [value[:-1], value + (value[-1],)]
    elif value is None:
        raw = [1]
    else:
        raw = []
    return [c for c in raw if c != value]


def _field_mutants(obj: Any) -> Iterator[Tuple[str, List[Any]]]:
    """Yield ``(field_path, candidate_copies)`` for each field of ``obj``.

    Each candidate is a fully reconstructed copy of ``obj`` differing in
    exactly one (possibly nested) field.  Candidates that a dataclass's
    own validation rejects are filtered out at every nesting level, so
    an empty candidate list means the field is unverifiable as-is.
    Tuple-of-dataclass fields recurse into their first element and also
    offer a shortened tuple (the element *count* must be keyed too).
    """

    def _wrap(field_name: str, sub_values: Iterable[Any]) -> List[Any]:
        wrapped = []
        for sub in sub_values:
            try:
                wrapped.append(dataclasses.replace(obj, **{field_name: sub}))
            except Exception:  # repro: noqa[RES001] - probe mutants may not validate
                continue
        return wrapped

    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            for sub_path, sub_candidates in _field_mutants(value):
                yield f"{f.name}.{sub_path}", _wrap(f.name, sub_candidates)
            continue
        if (
            isinstance(value, tuple)
            and value
            and dataclasses.is_dataclass(value[0])
            and not isinstance(value[0], type)
        ):
            for sub_path, sub_candidates in _field_mutants(value[0]):
                yield (
                    f"{f.name}[0].{sub_path}",
                    _wrap(f.name, ((sc,) + value[1:] for sc in sub_candidates)),
                )
            if len(value) > 1:
                yield f"len({f.name})", _wrap(f.name, [value[:-1]])
            continue
        yield f.name, _wrap(f.name, _mutation_candidates(value))


def check_canonical_coverage(
    root: Any,
    canonical: Callable[[Any], Any],
    *,
    report_path: str,
    report_line: int,
) -> Iterator[Violation]:
    """KEY001: every dataclass field in ``root``'s graph reaches canonical."""
    stack = [(type(root).__name__, root)]
    seen: set = set()
    while stack:
        label, obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if not (dataclasses.is_dataclass(obj) and not isinstance(obj, type)):
            continue
        try:
            doc = canonical(obj)
        except Exception as exc:
            yield Violation(
                path=report_path,
                line=report_line,
                col=0,
                rule_id="KEY001",
                message=f"_canonical failed on {label}: {exc}",
            )
            continue
        if not isinstance(doc, dict):
            yield Violation(
                path=report_path,
                line=report_line,
                col=0,
                rule_id="KEY001",
                message=(
                    f"_canonical({label}) is not a field dict — cache keys "
                    "cannot be audited"
                ),
            )
            continue
        for f in dataclasses.fields(obj):
            if f.name not in doc:
                yield Violation(
                    path=report_path,
                    line=report_line,
                    col=0,
                    rule_id="KEY001",
                    message=(
                        f"{label}.{f.name} is missing from the canonical "
                        "cache-key form — new entries would alias old ones"
                    ),
                )
            value = getattr(obj, f.name)
            children = (
                value
                if isinstance(value, tuple)
                else (value,)
            )
            for child in children:
                if dataclasses.is_dataclass(child) and not isinstance(child, type):
                    stack.append((f"{label}.{f.name}", child))


def check_digest_sensitivity(
    fixture: Any,
    digest: Callable[[Any], str],
    *,
    report_path: str,
    report_line: int,
    rule_id: str = "KEY002",
) -> Iterator[Violation]:
    """KEY002: mutating any field of ``fixture`` must change ``digest``."""
    try:
        baseline = digest(fixture)
    except Exception as exc:
        yield Violation(
            path=report_path,
            line=report_line,
            col=0,
            rule_id=rule_id,
            message=f"digest failed on the audit fixture: {exc}",
        )
        return
    for field_path, candidates in _field_mutants(fixture):
        if not candidates:
            yield Violation(
                path=report_path,
                line=report_line,
                col=0,
                rule_id=rule_id,
                severity=Severity.WARNING,
                message=(
                    f"{type(fixture).__name__}.{field_path} could not be "
                    "mutated for the aliasing audit — extend "
                    "_mutation_candidates so the field stays verifiable"
                ),
            )
            continue
        mutated_digest: Optional[str] = None
        for mutant in candidates:
            try:
                mutated_digest = digest(mutant)
                break
            except Exception:  # repro: noqa[RES001] - try the next mutant
                continue
        if mutated_digest is None:
            yield Violation(
                path=report_path,
                line=report_line,
                col=0,
                rule_id=rule_id,
                severity=Severity.WARNING,
                message=(
                    f"digest failed on every mutation of {field_path}; "
                    "field unverifiable"
                ),
            )
            continue
        if mutated_digest == baseline:
            yield Violation(
                path=report_path,
                line=report_line,
                col=0,
                rule_id=rule_id,
                message=(
                    f"{type(fixture).__name__}.{field_path} does not change "
                    "the cache digest — entries differing only in this "
                    "field would alias"
                ),
            )


@register
class CacheKeyRule(Rule):
    """Audit the live sim-result cache key for field coverage."""

    prefix = "KEY"
    name = "cache-key-purity"
    description = (
        "every field of the dataclasses hashed by perf/cache.py must reach "
        "the digest (KEY001 structural, KEY002 behavioral)"
    )

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Violation]:
        """Run the structural and behavioral cache-key audits."""
        # Only audit when the cache module is part of the linted tree (or
        # no repro sources are involved at all, e.g. direct rule tests).
        if sources and not any(
            "repro/" in str(s.path).replace("\\", "/") for s in sources
        ):
            return []
        try:
            from ...machines.registry import get_machine
            from ...perf import cache as cache_mod
            from ...sim import coltrace as coltrace_mod
            from ...sim.coltrace import ColumnarTrace
            from ...sim.hierarchy import SimConfig
            from ...sim.trace import Access, AccessKind, ThreadTrace, Trace
        except Exception as exc:  # pragma: no cover - import breakage
            return [
                Violation(
                    path="src/repro/perf/cache.py",
                    line=1,
                    col=0,
                    rule_id="KEY001",
                    message=f"cannot import cache machinery for audit: {exc}",
                )
            ]
        out: List[Violation] = []

        config = SimConfig(machine=get_machine("skl"), sim_cores=1)
        path, line = _source_location(cache_mod._canonical)
        out.extend(
            check_canonical_coverage(
                config, cache_mod._canonical, report_path=path, report_line=line
            )
        )

        trace = Trace(
            threads=(
                ThreadTrace(
                    thread_id=0,
                    accesses=(
                        Access(0, AccessKind.LOAD, 1.0),
                        Access(64, AccessKind.STORE, 2.0),
                    ),
                ),
                ThreadTrace(
                    thread_id=1,
                    accesses=(Access(128, AccessKind.SWPF_L2, 0.5),),
                ),
            ),
            routine="lint-audit",
            line_bytes=64,
        )
        path, line = _source_location(coltrace_mod.trace_digest)
        # Both representations are digested by the same function; audit
        # each so every field of the object *and* columnar trace classes
        # provably reaches the perf-cache key.
        out.extend(
            check_digest_sensitivity(
                trace,
                coltrace_mod.trace_digest,
                report_path=path,
                report_line=line,
            )
        )
        out.extend(
            check_digest_sensitivity(
                ColumnarTrace.from_trace(trace),
                coltrace_mod.trace_digest,
                report_path=path,
                report_line=line,
            )
        )

        # Behavioral spot-check for the batch-stepping flag: it selects
        # an execution strategy whose results are bit-identical, which
        # makes it exactly the field a future "doesn't affect results"
        # cleanup might drop from the key — but entries must still never
        # alias across the flag (wall_s/batch_accesses differ, and the
        # equivalence guarantee itself must stay falsifiable from cached
        # data).
        path, line = _source_location(cache_mod.digest_for)
        flipped = dataclasses.replace(config, batch=not config.batch)
        if cache_mod.digest_for(trace, config) == cache_mod.digest_for(
            trace, flipped
        ):
            out.append(
                Violation(
                    path=path,
                    line=line,
                    col=0,
                    rule_id="KEY002",
                    message=(
                        "SimConfig.batch does not change the cache digest "
                        "— batch and event-path entries would alias"
                    ),
                )
            )
        return out
