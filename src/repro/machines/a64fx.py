"""Fujitsu A64FX — paper Table III row 3.

Parameters:

* 48 compute cores fixed at 1.8 GHz (the chip's default),
* HBM2, 1024 GB/s theoretical peak,
* 12 L1 MSHRs and ~20 L2 MSHRs per core [23],
* SVE 512-bit with gather/scatter and predication,
* **no SMT** (the paper notes "A64FX does not support SMT"),
* **256 B cache lines** — the "large cache lines" the paper had to extend
  X-Mem for.  This is load-bearing: with ``cls=256`` the paper's per-core
  occupancies fall out of Little's law exactly (e.g. ISx base:
  649 GB/s x 188 ns / 256 B / 48 cores = 9.93 ≈ the quoted 9.92),
* no L3: memory traffic is L2 misses (``BUS_READ/WRITE_TOTAL_MEM``).

Loaded-latency calibration: idle ≈ 140 ns, gentle rise to ≈188 ns at 63 %
utilization, then a sharp HBM2 queueing knee (280 ns at 77 %).
"""

from __future__ import annotations

from .spec import MachineSpec, make_machine

#: (utilization, loaded latency ns) control points fitted to the paper.
A64FX_LATENCY_CALIBRATION = (
    (0.00, 140.0),
    (0.01, 142.0),
    (0.07, 144.0),
    (0.10, 146.0),
    (0.26, 156.0),
    (0.41, 165.0),
    (0.55, 176.0),
    (0.63, 188.0),
    (0.70, 225.0),
    (0.77, 280.0),
    (0.85, 345.0),
    (1.00, 430.0),
)


def a64fx() -> MachineSpec:
    """Build the A64FX machine spec used throughout the paper's evaluation."""
    return make_machine(
        name="a64fx",
        vendor="Fujitsu",
        isa_family="arm",
        cores=48,
        frequency_ghz=1.8,
        smt_ways=1,
        line_bytes=256,
        l1_kib=64,
        l1_mshrs=12,
        l2_kib=640,
        l2_mshrs=20,
        vector_isa="SVE",
        vector_bits=512,
        mem_technology="HBM2",
        peak_bw_gbs=1024.0,
        idle_latency_ns=140.0,
        achievable_fraction=0.80,
        latency_calibration=A64FX_LATENCY_CALIBRATION,
        # 48 cores x 1.8 GHz x 32 DP flops/cycle (2x 512-bit FMA pipes)
        peak_gflops=48 * 1.8 * 32,
        prefetch_streams=16,
        memory_traffic_boundary="l2_miss",
        l1_assoc=4,
        l2_assoc=16,
    )
