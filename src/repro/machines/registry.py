"""Lookup of machine specs by name.

The registry is intentionally tiny: the paper evaluates on exactly three
machines.  Users can register their own machines (e.g. to model an
HBM2e/3 part, paper Section IV-G) with :func:`register_machine`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..errors import ConfigurationError, UnknownMachineError
from .a64fx import a64fx
from .future import hbm2e_concept, hbm3_concept
from .knl import knights_landing_7250
from .skl import skylake_8160
from .spec import MachineSpec

_FACTORIES: Dict[str, Callable[[], MachineSpec]] = {
    "skl": skylake_8160,
    "knl": knights_landing_7250,
    "a64fx": a64fx,
    # Concept parts for the paper's §IV-G outlook; not in Table III and
    # therefore not returned by paper_machines().
    "hbm2e": hbm2e_concept,
    "hbm3": hbm3_concept,
}

#: Aliases accepted by :func:`get_machine`.
_ALIASES: Dict[str, str] = {
    "skylake": "skl",
    "xeon-8160": "skl",
    "knights-landing": "knl",
    "xeon-phi-7250": "knl",
    "fujitsu-a64fx": "a64fx",
}


def machine_names() -> Tuple[str, ...]:
    """Canonical names of all registered machines."""
    return tuple(sorted(_FACTORIES))


def get_machine(name: str) -> MachineSpec:
    """Return a fresh :class:`MachineSpec` for ``name`` (case-insensitive).

    Raises :class:`~repro.errors.UnknownMachineError` for unknown names.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise UnknownMachineError(name, machine_names()) from None
    return factory()


def register_machine(
    name: str, factory: Callable[[], MachineSpec], *, overwrite: bool = False
) -> None:
    """Register a user-defined machine factory under ``name``."""
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("machine name must be non-empty")
    if key in _FACTORIES and not overwrite:
        raise ConfigurationError(
            f"machine {key!r} already registered (pass overwrite=True to replace)"
        )
    _FACTORIES[key] = factory


def paper_machines() -> Tuple[MachineSpec, ...]:
    """The three machines of paper Table III, in paper order."""
    return (get_machine("skl"), get_machine("knl"), get_machine("a64fx"))
