"""Machine models: the paper's Table III platforms as parametric specs."""

from .a64fx import A64FX_LATENCY_CALIBRATION, a64fx
from .future import hbm2e_concept, hbm3_concept, mshr_bound_fraction
from .knl import KNL_LATENCY_CALIBRATION, knights_landing_7250
from .registry import (
    get_machine,
    machine_names,
    paper_machines,
    register_machine,
)
from .skl import SKL_LATENCY_CALIBRATION, skylake_8160
from .spec import CacheSpec, MachineSpec, MemorySpec, VectorSpec, make_machine

__all__ = [
    "A64FX_LATENCY_CALIBRATION",
    "CacheSpec",
    "KNL_LATENCY_CALIBRATION",
    "MachineSpec",
    "MemorySpec",
    "SKL_LATENCY_CALIBRATION",
    "VectorSpec",
    "a64fx",
    "get_machine",
    "hbm2e_concept",
    "hbm3_concept",
    "mshr_bound_fraction",
    "knights_landing_7250",
    "machine_names",
    "make_machine",
    "paper_machines",
    "register_machine",
    "skylake_8160",
]
