"""Intel Xeon Phi 7250 ("Knights Landing", KNL) — paper Table III row 2.

Parameters:

* 68 cores at a fixed 1.4 GHz; the paper uses **64** of them ("it is not
  always possible to partition the problem among 68 cores ... and also to
  allocate some resources for the OS"), so ``cores_used=64``,
* MCDRAM in flat mode, 400 GB/s theoretical peak (all data in MCDRAM),
* 12 L1 MSHRs [35] and 32 L2 MSHRs [36] per core,
* AVX-512, 4-way hyperthreading, 64 B lines,
* the L2 hardware prefetcher tracks at most **16 streams** [39] — the
  paper uses this to explain HPCG's weak 4-way SMT gain,
* KNL has no L3, so "memory traffic" is L2 misses (the
  ``OFFCORE_RESPONSE...MCDRAM/DDR`` counters).

Loaded-latency calibration reconciles the (noisy, slightly non-monotone)
KNL latencies quoted across Tables IV–IX into one monotone curve:
idle ≈ 160 ns up to ≈238 ns at 86 % utilization.
"""

from __future__ import annotations

from .spec import MachineSpec, make_machine

#: (utilization, loaded latency ns) control points fitted to the paper.
KNL_LATENCY_CALIBRATION = (
    (0.00, 160.0),
    (0.07, 172.0),
    (0.20, 180.0),
    (0.31, 183.0),
    (0.42, 185.0),
    (0.51, 186.0),
    (0.58, 188.0),
    (0.63, 191.0),
    (0.69, 199.0),
    (0.74, 207.0),
    (0.86, 238.0),
    (1.00, 265.0),
)


def knights_landing_7250() -> MachineSpec:
    """Build the KNL machine spec used throughout the paper's evaluation."""
    return make_machine(
        name="knl",
        vendor="Intel",
        isa_family="x86",
        cores=68,
        cores_used=64,
        frequency_ghz=1.4,
        smt_ways=4,
        line_bytes=64,
        l1_kib=32,
        l1_mshrs=12,
        l2_kib=512,
        l2_mshrs=32,
        vector_isa="AVX-512",
        vector_bits=512,
        mem_technology="MCDRAM",
        peak_bw_gbs=400.0,
        idle_latency_ns=160.0,
        achievable_fraction=0.87,
        latency_calibration=KNL_LATENCY_CALIBRATION,
        # 64 used cores x 1.4 GHz x 32 DP flops/cycle = 2867 GF/s, the
        # horizontal roof in paper Figure 2.
        peak_gflops=64 * 1.4 * 32,
        prefetch_streams=16,
        memory_traffic_boundary="l2_miss",
        l1_assoc=8,
        l2_assoc=16,
    )
