"""Hypothetical HBM2e/3-class machines — the paper's §IV-G outlook.

Section IV-G argues that MSHRQ occupancy is the reliable ("full proof")
certificate of compute-boundedness, and that the argument only gets
stronger on upcoming memory systems: "In upcoming processors with
HBM2e/3, L2 MSHRQ becomes full prior to achieving peak bandwidth even
for streaming applications."

These machine models make that claim testable.  The key ratio is the
bandwidth the L2 MSHR file can sustain at loaded latency versus the
socket's peak:

    sustainable = cores * L2_MSHRs * line / latency

On A64FX (48 x 20 x 256B / ~200ns ≈ 1.2 TB/s vs 1.02 TB/s peak) the
file can just about feed the memory; on the HBM3 part below
(64 x 24 x 64B / ~250ns ≈ 0.39 TB/s vs 3.2 TB/s peak) it cannot come
close — the MSHR ceiling, not the memory, bounds every application, so
*any* routine that fills the file is memory-system bound and any that
does not is certified compute bound.
"""

from __future__ import annotations

from .spec import MachineSpec, make_machine

#: A speculative HBM2e part: ~1.6 TB/s socket, conventional 64B lines,
#: core counts and MSHR files scaled modestly from today's servers.
HBM2E_LATENCY_CALIBRATION = (
    (0.00, 130.0),
    (0.25, 150.0),
    (0.50, 175.0),
    (0.70, 215.0),
    (0.85, 290.0),
    (1.00, 420.0),
)

#: A speculative HBM3 part: ~3.2 TB/s socket.
HBM3_LATENCY_CALIBRATION = (
    (0.00, 120.0),
    (0.25, 140.0),
    (0.50, 165.0),
    (0.70, 205.0),
    (0.85, 280.0),
    (1.00, 410.0),
)


def hbm2e_concept() -> MachineSpec:
    """A near-future HBM2e-class socket."""
    return make_machine(
        name="hbm2e",
        vendor="Concept",
        isa_family="x86",
        cores=64,
        frequency_ghz=2.4,
        smt_ways=2,
        line_bytes=64,
        l1_kib=48,
        l1_mshrs=16,
        l2_kib=1024,
        l2_mshrs=24,
        vector_isa="AVX-512",
        vector_bits=512,
        mem_technology="HBM2e",
        peak_bw_gbs=1600.0,
        idle_latency_ns=130.0,
        achievable_fraction=0.85,
        latency_calibration=HBM2E_LATENCY_CALIBRATION,
        peak_gflops=64 * 2.4 * 32,
        prefetch_streams=24,
        memory_traffic_boundary="l2_miss",
    )


def hbm3_concept() -> MachineSpec:
    """A farther-future HBM3-class socket, deep in the MSHR-bound regime."""
    return make_machine(
        name="hbm3",
        vendor="Concept",
        isa_family="arm",
        cores=64,
        frequency_ghz=2.6,
        smt_ways=2,
        line_bytes=64,
        l1_kib=64,
        l1_mshrs=16,
        l2_kib=1024,
        l2_mshrs=24,
        vector_isa="SVE2",
        vector_bits=512,
        mem_technology="HBM3",
        peak_bw_gbs=3200.0,
        idle_latency_ns=120.0,
        achievable_fraction=0.85,
        latency_calibration=HBM3_LATENCY_CALIBRATION,
        peak_gflops=64 * 2.6 * 32,
        prefetch_streams=24,
        memory_traffic_boundary="l2_miss",
    )


def mshr_bound_fraction(machine: MachineSpec, *, loaded_latency_ns: float) -> float:
    """Peak-bandwidth fraction the full L2 MSHR file can sustain.

    Below 1.0 the machine is in the paper's §IV-G regime: the L2 MSHRQ
    fills before peak bandwidth is reachable, even for streaming code.
    """
    sustainable = machine.max_bw_from_mshrs(2, loaded_latency_ns)
    return sustainable / machine.memory.peak_bw_bytes
