"""Intel Xeon Platinum 8160 ("Skylake", SKL) — paper Table III row 1.

Parameters:

* 24 cores fixed at 2.1 GHz (the paper pins the frequency),
* six DDR4-2666 channels, 128 GB/s theoretical peak per socket,
* 10 L1 MSHRs (line-fill buffers) and 16 L2 MSHRs per core [34],
* AVX-512 with gather/scatter and mask predication,
* 2-way hyperthreading, 64 B cache lines,
* traffic past the L3 is what the OFFCORE_RESPONSE/L3_MISS counters see.

The ``latency_calibration`` control points reconstruct the loaded-latency
curve from every (bandwidth, latency) pair the paper quotes for SKL across
Tables IV–IX: idle ≈ 80 ns, ≈117 ns at 73 % utilization, rising steeply to
≈180 ns ("378 cycles") near saturation.
"""

from __future__ import annotations

from .spec import MachineSpec, make_machine

#: (utilization, loaded latency ns) control points fitted to the paper.
SKL_LATENCY_CALIBRATION = (
    (0.00, 80.0),
    (0.03, 82.0),
    (0.15, 87.0),
    (0.30, 93.0),
    (0.46, 100.0),
    (0.60, 107.0),
    (0.73, 117.0),
    (0.84, 147.0),
    (0.86, 171.0),
    (1.00, 185.0),
)


def skylake_8160() -> MachineSpec:
    """Build the SKL machine spec used throughout the paper's evaluation."""
    return make_machine(
        name="skl",
        vendor="Intel",
        isa_family="x86",
        cores=24,
        frequency_ghz=2.1,
        smt_ways=2,
        line_bytes=64,
        l1_kib=32,
        l1_mshrs=10,
        l2_kib=1024,
        l2_mshrs=16,
        vector_isa="AVX-512",
        vector_bits=512,
        mem_technology="DDR4",
        peak_bw_gbs=128.0,
        idle_latency_ns=80.0,
        achievable_fraction=0.87,
        latency_calibration=SKL_LATENCY_CALIBRATION,
        # 24 cores x 2.1 GHz x 32 DP flops/cycle (2x 512-bit FMA pipes)
        peak_gflops=24 * 2.1 * 32,
        prefetch_streams=16,
        hw_prefetcher_aggressive=True,
        memory_traffic_boundary="l3_miss",
        l1_assoc=8,
        l2_assoc=16,
    )
