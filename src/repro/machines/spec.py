"""Machine specifications (paper Table III substrate).

A :class:`MachineSpec` carries every architectural parameter the paper's
method consumes:

* core count and frequency (Table III),
* L1/L2 MSHR counts per core (Table III, with citations [23][34][35][36]),
* cache geometry including the **cache line size** — 64 B on the Intel
  parts, 256 B on A64FX, which is what makes Little's law per-core
  occupancies line up with the paper's tables,
* theoretical peak memory bandwidth plus the *achievable streams*
  fraction (the paper repeatedly distinguishes "peak achievable
  (streams) bandwidth" from theoretical peak),
* SMT ways, vector ISA, and the L2 prefetcher's stream-tracking limit
  (the paper invokes KNL's 16-stream limit to explain HPCG's weak 4-way
  hyperthreading gain).

Everything downstream (the recipe, the roofline ceilings, the simulator,
the fixed-point performance solver) reads from these specs, so the three
machine modules (:mod:`repro.machines.skl`, ``knl``, ``a64fx``) are the
single source of architectural truth.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import gb_per_s, ghz, ns, to_gb_per_s, to_ghz


@dataclass(frozen=True)
class CacheSpec:
    """One cache level.

    Attributes
    ----------
    level:
        1 for L1D, 2 for L2.  (L3, where present, only matters as the
        boundary past which traffic counts as "memory"; see
        :attr:`MachineSpec.memory_traffic_boundary`.)
    size_bytes:
        Capacity per core (private caches) or per tile.
    line_bytes:
        Cache line size.  All levels of one machine share it.
    mshrs:
        Miss Status Handling Registers at this level, per core.
    associativity:
        Set associativity, used by the trace simulator.
    """

    level: int
    size_bytes: int
    line_bytes: int
    mshrs: int
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.level not in (1, 2, 3):
            raise ConfigurationError(f"cache level must be 1..3, got {self.level}")
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache size and line size must be positive")
        if self.size_bytes % self.line_bytes:
            raise ConfigurationError(
                f"cache size {self.size_bytes} not a multiple of line {self.line_bytes}"
            )
        if self.mshrs < 0:
            raise ConfigurationError(f"mshrs must be >= 0, got {self.mshrs}")
        if self.associativity <= 0:
            raise ConfigurationError("associativity must be positive")

    @property
    def num_lines(self) -> int:
        """Total cache lines at this level."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return max(1, self.num_lines // self.associativity)


@dataclass(frozen=True)
class VectorSpec:
    """Vector ISA capability relevant to the paper's optimizations."""

    isa: str
    width_bits: int
    has_gather_scatter: bool = True
    has_predication: bool = True

    def lanes(self, element_bytes: int = 8) -> int:
        """SIMD lanes for a given element size (default double precision)."""
        if element_bytes <= 0:
            raise ConfigurationError("element size must be positive")
        return max(1, self.width_bits // (8 * element_bytes))


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory subsystem description."""

    technology: str
    peak_bw_bytes: float
    idle_latency_ns: float
    #: Fraction of theoretical peak reachable by streaming kernels;
    #: the paper's "peak achievable (streams) bandwidth".
    achievable_fraction: float = 0.87
    channels: int = 6

    def __post_init__(self) -> None:
        if self.peak_bw_bytes <= 0:
            raise ConfigurationError("peak bandwidth must be positive")
        if self.idle_latency_ns <= 0:
            raise ConfigurationError("idle latency must be positive")
        if not 0.0 < self.achievable_fraction <= 1.0:
            raise ConfigurationError(
                f"achievable fraction must be in (0, 1], got {self.achievable_fraction}"
            )

    @property
    def achievable_bw_bytes(self) -> float:
        """Streams-achievable bandwidth in bytes/s."""
        return self.peak_bw_bytes * self.achievable_fraction


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine model (one paper Table III row).

    The latency *curve* (loaded latency as a function of bandwidth
    utilization) is described by ``latency_calibration`` — a tuple of
    ``(utilization, latency_ns)`` control points fitted to the values
    the paper quotes across Tables IV–IX.  :mod:`repro.memory` turns
    these into the machine's canonical
    :class:`~repro.memory.latency_model.LatencyModel`.
    """

    name: str
    vendor: str
    isa_family: str  # "x86" or "arm"
    cores: int
    frequency_hz: float
    smt_ways: int
    l1: CacheSpec
    l2: CacheSpec
    vector: VectorSpec
    memory: MemorySpec
    #: Streams the L2 hardware prefetcher can track concurrently, per core.
    prefetch_streams: int = 16
    #: Whether the hardware prefetcher is aggressive enough that software
    #: prefetching rarely adds anything (paper: SNAP on SKL gained 1%
    #: because SKL's prefetcher was "good enough").
    hw_prefetcher_aggressive: bool = False
    #: Cores actually used in runs (paper uses 64 of KNL's 68).
    cores_used: Optional[int] = None
    #: (utilization, latency_ns) control points of the loaded-latency curve.
    latency_calibration: Tuple[Tuple[float, float], ...] = ()
    #: Peak double-precision GFLOP/s for the whole socket (roofline top).
    peak_gflops: float = 0.0
    #: Where counter-visible "memory traffic" begins: "l3_miss" on parts
    #: with an L3 (SKL), "l2_miss" on parts without (KNL, A64FX).
    memory_traffic_boundary: str = "l3_miss"

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("core count must be positive")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.smt_ways < 1:
            raise ConfigurationError("smt_ways must be >= 1")
        if self.l1.level != 1 or self.l2.level != 2:
            raise ConfigurationError("l1/l2 specs must carry levels 1 and 2")
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigurationError("L1 and L2 line sizes must match")
        if self.cores_used is not None and not 0 < self.cores_used <= self.cores:
            raise ConfigurationError(
                f"cores_used must be in 1..{self.cores}, got {self.cores_used}"
            )
        if self.memory_traffic_boundary not in ("l3_miss", "l2_miss"):
            raise ConfigurationError(
                "memory_traffic_boundary must be 'l3_miss' or 'l2_miss'"
            )
        for u, lat in self.latency_calibration:
            if not 0.0 <= u <= 1.05:
                raise ConfigurationError(f"calibration utilization {u} out of range")
            if lat <= 0:
                raise ConfigurationError(f"calibration latency {lat} must be positive")

    # -- derived quantities -------------------------------------------------

    @property
    def active_cores(self) -> int:
        """Cores used in loaded runs (= ``cores_used`` or all cores)."""
        return self.cores_used if self.cores_used is not None else self.cores

    @property
    def line_bytes(self) -> int:
        """Cache line size (shared by L1/L2)."""
        return self.l1.line_bytes

    @property
    def frequency_ghz(self) -> float:
        """Core frequency in GHz."""
        return to_ghz(self.frequency_hz)

    @property
    def peak_bw_gbs(self) -> float:
        """Theoretical peak memory bandwidth in GB/s."""
        return to_gb_per_s(self.memory.peak_bw_bytes)

    def mshr_limit(self, level: int) -> int:
        """Per-core MSHR count at cache ``level`` (1 or 2)."""
        if level == 1:
            return self.l1.mshrs
        if level == 2:
            return self.l2.mshrs
        raise ConfigurationError(f"no MSHR file at level {level}")

    def max_bw_from_mshrs(self, level: int, latency_ns: float) -> float:
        """Bandwidth ceiling (bytes/s) imposed by the MSHRs at ``level``.

        This is the paper's Figure 2 extra roofline: with ``n`` MSHRs per
        core and loaded latency ``lat``, at most
        ``cores * n * line / lat`` bytes/s can be in flight (Little's law
        solved for bandwidth).
        """
        if latency_ns <= 0:
            raise ConfigurationError("latency must be positive")
        per_core = self.mshr_limit(level) * self.line_bytes / ns(latency_ns)
        return per_core * self.active_cores

    def describe(self) -> str:
        """One-line human description, Table III style."""
        return (
            f"{self.name}: {self.cores} cores @ {self.frequency_ghz:.1f}GHz, "
            f"{self.peak_bw_gbs:.0f} GB/s {self.memory.technology}, "
            f"L1 MSHRs {self.l1.mshrs}, L2 MSHRs {self.l2.mshrs}, "
            f"{self.vector.isa} {self.vector.width_bits}b, "
            f"SMT x{self.smt_ways}, {self.line_bytes}B lines"
        )

    def with_frequency(self, frequency_hz: float) -> "MachineSpec":
        """A copy of this spec at a different fixed core frequency."""
        return dataclasses.replace(self, frequency_hz=frequency_hz)


def make_machine(
    *,
    name: str,
    vendor: str,
    isa_family: str,
    cores: int,
    frequency_ghz: float,
    smt_ways: int,
    line_bytes: int,
    l1_kib: int,
    l1_mshrs: int,
    l2_kib: int,
    l2_mshrs: int,
    vector_isa: str,
    vector_bits: int,
    mem_technology: str,
    peak_bw_gbs: float,
    idle_latency_ns: float,
    achievable_fraction: float,
    latency_calibration: Sequence[Tuple[float, float]],
    peak_gflops: float,
    prefetch_streams: int = 16,
    cores_used: Optional[int] = None,
    memory_traffic_boundary: str = "l3_miss",
    l1_assoc: int = 8,
    l2_assoc: int = 16,
    hw_prefetcher_aggressive: bool = False,
) -> MachineSpec:
    """Build a :class:`MachineSpec` from human-friendly units."""
    return MachineSpec(
        name=name,
        vendor=vendor,
        isa_family=isa_family,
        cores=cores,
        frequency_hz=ghz(frequency_ghz),
        smt_ways=smt_ways,
        l1=CacheSpec(1, l1_kib * 1024, line_bytes, l1_mshrs, l1_assoc),
        l2=CacheSpec(2, l2_kib * 1024, line_bytes, l2_mshrs, l2_assoc),
        vector=VectorSpec(vector_isa, vector_bits),
        memory=MemorySpec(
            technology=mem_technology,
            peak_bw_bytes=gb_per_s(peak_bw_gbs),
            idle_latency_ns=idle_latency_ns,
            achievable_fraction=achievable_fraction,
        ),
        prefetch_streams=prefetch_streams,
        cores_used=cores_used,
        latency_calibration=tuple((float(u), float(l)) for u, l in latency_calibration),
        peak_gflops=peak_gflops,
        memory_traffic_boundary=memory_traffic_boundary,
        hw_prefetcher_aggressive=hw_prefetcher_aggressive,
    )
