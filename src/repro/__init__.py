"""repro: reproduction of "Performance Analysis and Optimization with
Little's Law" (ISPASS 2022).

Public API highlights
---------------------
* :mod:`repro.machines` — the paper's Table III platforms.
* :mod:`repro.memory` — loaded-latency models and per-machine profiles.
* :mod:`repro.sim` — trace-driven cache/MSHR simulator (counter oracle).
* :mod:`repro.xmem` — X-Mem-style characterization (profile measurement).
* :mod:`repro.core` — the paper's contribution: Little's-law MLP,
  classification, and the Figure-1 optimization recipe.
* :mod:`repro.roofline` — roofline with the paper's MSHR ceiling.
* :mod:`repro.tma` — Top-Down analysis baseline.
* :mod:`repro.workloads` / :mod:`repro.optim` / :mod:`repro.perfmodel` —
  the six case-study applications, optimization transforms, and the
  fixed-point performance solver that regenerates Tables IV–IX.
* :mod:`repro.experiments` — per-table/figure harnesses and paper data.
"""

__version__ = "1.0.0"

from .machines import MachineSpec, get_machine, machine_names, paper_machines
from .memory import LatencyProfile

__all__ = [
    "LatencyProfile",
    "MachineSpec",
    "get_machine",
    "machine_names",
    "paper_machines",
    "__version__",
]
