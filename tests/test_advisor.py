"""The automated Figure-1 loop (repro.core.advisor)."""

import pytest

from repro.core import Advisor
from repro.machines import get_machine
from repro.workloads import get_workload


def _run(workload_name, machine_name, **kwargs):
    return Advisor(
        get_workload(workload_name), get_machine(machine_name), **kwargs
    ).run()


class TestTrajectories:
    def test_isx_skl_stops_immediately(self):
        """Full L1 MSHRQ + saturated bandwidth: nothing to do."""
        result = _run("isx", "skl")
        assert result.steps == ()
        assert result.stop_reason == "recipe says stop"
        assert result.cumulative_speedup == 1.0

    def test_isx_knl_finds_the_l2_prefetch_unlock(self):
        result = _run("isx", "knl")
        assert any(step.step == "l2_prefetch" for step in result.steps)
        assert result.cumulative_speedup > 1.3
        assert result.final_state.binding_level == 2

    def test_isx_a64fx_prefetch_then_stop(self):
        result = _run("isx", "a64fx")
        assert [s.step for s in result.steps] == ["l2_prefetch"]

    def test_pennant_knl_vect_then_smt_stops_at_l1_wall(self):
        """The advisor must not take 4-way SMT at n=11.34/12."""
        result = _run("pennant", "knl")
        steps = [s.step for s in result.steps]
        assert steps[0] == "vectorize"
        assert "smt2" in steps
        assert "smt4" not in steps
        assert result.cumulative_speedup > 5.0

    def test_comd_knl_takes_all_smt_levels(self):
        result = _run("comd", "knl")
        steps = [s.step for s in result.steps]
        assert steps == ["vectorize", "smt2", "smt4"]

    def test_minighost_takes_tiling_not_smt(self):
        for machine in ("skl", "knl", "a64fx"):
            result = _run("minighost", machine)
            steps = [s.step for s in result.steps]
            assert "loop_tiling" in steps
            assert "smt2" not in steps

    def test_hpcg_a64fx_single_vectorize(self):
        result = _run("hpcg", "a64fx")
        assert [s.step for s in result.steps] == ["vectorize"]
        assert result.cumulative_speedup == pytest.approx(1.71, abs=0.05)


class TestMechanics:
    def test_iteration_cap_respected(self):
        result = _run("comd", "knl", max_iterations=1)
        assert len(result.steps) <= 1

    def test_steps_record_decisions(self):
        result = _run("pennant", "skl")
        for step in result.steps:
            assert step.decision.mlp.n_avg >= 0
            assert step.predicted_speedup >= 1.04  # KEEP_THRESHOLD

    def test_render(self):
        text = _run("isx", "knl").render()
        assert "Advisor trajectory" in text
        assert "l2_prefetch" in text

    def test_every_pair_terminates(self):
        from repro.machines import paper_machines
        from repro.workloads import ALL_WORKLOADS

        for workload in ALL_WORKLOADS:
            for machine in paper_machines():
                result = Advisor(workload, machine).run()
                assert result.stop_reason != "iteration cap reached"
