"""Workload models: calibrations, plans, and trace generators."""

import pytest

from repro.core import AccessPattern
from repro.errors import ConfigurationError
from repro.optim import validate_sequence
from repro.sim import SimConfig, run_trace
from repro.workloads import ALL_WORKLOADS, get_workload
from repro.workloads.base import TraceSpec


class TestInventory:
    def test_six_workloads(self):
        assert len(ALL_WORKLOADS) == 6

    def test_lookup_by_name(self):
        assert get_workload("ISx").routine == "count_local_keys"
        with pytest.raises(KeyError):
            get_workload("linpack")

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_calibrated_for_all_three_machines(self, workload):
        assert set(workload.machines()) == {"skl", "knl", "a64fx"}

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_row_plans_are_valid_sequences(self, workload):
        for machine_name in workload.machines():
            for source_steps, step in workload.row_plan(machine_name):
                steps = list(source_steps) + ([step] if step else [])
                validate_sequence(steps)

    def test_unknown_machine_calibration(self):
        with pytest.raises(ConfigurationError):
            get_workload("isx").calibration("epyc")


class TestBaseStates:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_base_state_fields(self, workload, skl):
        state = workload.base_state(skl)
        assert state.label == "base"
        assert state.traffic_factor == 1.0
        assert state.smt_ways == 1

    def test_random_workloads_bind_l1(self, skl):
        assert get_workload("isx").base_state(skl).binding_level == 1
        assert get_workload("pennant").base_state(skl).binding_level == 1

    def test_streaming_workloads_bind_l2(self, skl):
        assert get_workload("hpcg").base_state(skl).binding_level == 2
        assert get_workload("minighost").base_state(skl).binding_level == 2

    def test_state_for_applies_steps(self, knl):
        workload = get_workload("isx")
        state = workload.state_for(knl, ["vectorize", "smt2", "l2_prefetch"])
        assert state.binding_level == 2  # shifted by l2_prefetch
        assert state.smt_ways == 2
        assert state.demand_mlp == pytest.approx(20.0)


class TestTraceGenerators:
    """Each generator's statistical signature, verified on the simulator."""

    def _run(self, workload, machine, steps=(), n=1500):
        trace = workload.generate_trace(
            machine, steps=steps, spec=TraceSpec(threads=2, accesses_per_thread=n)
        )
        return run_trace(
            trace, SimConfig(machine=machine, sim_cores=2, window_per_core=16)
        )

    def test_isx_random_signature(self, skl):
        stats = self._run(get_workload("isx"), skl)
        assert stats.memory.prefetch_fraction < 0.2  # prefetcher blind
        assert stats.avg_occupancy(1) > 5  # L1 MSHRs busy

    def test_hpcg_streaming_signature(self, skl):
        stats = self._run(get_workload("hpcg"), skl)
        assert stats.memory.prefetch_fraction > 0.3  # prefetcher engaged
        assert stats.avg_occupancy(2) > stats.avg_occupancy(1)

    def test_minighost_streaming_signature(self, skl):
        stats = self._run(get_workload("minighost"), skl)
        assert stats.memory.prefetch_fraction > 0.4

    def test_comd_low_traffic_signature(self, skl):
        stats = self._run(get_workload("comd"), skl)
        # Compute-dominated: low occupancies (warmup of the hot
        # footprint inflates a short run slightly), mostly cache hits.
        assert stats.avg_occupancy(2) < 3.0
        assert stats.l1.miss_rate < 0.4
        # Far below the memory-bound workloads' pegged L1 file.
        assert stats.avg_occupancy(1) < 0.5 * skl.l1.mshrs

    def test_pennant_gather_signature(self, skl):
        stats = self._run(get_workload("pennant"), skl)
        assert stats.memory.prefetch_fraction < 0.5

    def test_snap_prefetch_step_adds_swpf(self, skl):
        base = self._run(get_workload("snap"), skl)
        pref = self._run(get_workload("snap"), skl, steps=("sw_prefetch",))
        assert base.sw_prefetches_issued == 0
        assert pref.sw_prefetches_issued > 0

    def test_isx_l2_prefetch_step_emits_swpf_l2(self, knl):
        stats = self._run(get_workload("isx"), knl, steps=("l2_prefetch",))
        assert stats.sw_prefetches_issued > 0

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_traces_respect_machine_line_size(self, workload, a64fx):
        trace = workload.generate_trace(
            a64fx, spec=TraceSpec(threads=1, accesses_per_thread=50)
        )
        assert trace.line_bytes == 256

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_traces_are_deterministic(self, workload, skl):
        spec = TraceSpec(threads=1, accesses_per_thread=100, seed=9)
        a = workload.generate_trace(skl, spec=spec)
        b = workload.generate_trace(skl, spec=spec)
        assert a.threads[0].accesses == b.threads[0].accesses
