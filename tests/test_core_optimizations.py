"""The Section III-C optimization catalog."""

from repro.core import (
    AccessPattern,
    CATALOG,
    OptimizationKind,
    applicable_to,
    info,
    mlp_increasing,
    occupancy_reducing,
)


class TestCatalogCompleteness:
    def test_every_kind_has_an_entry(self):
        assert set(CATALOG) == set(OptimizationKind)

    def test_every_entry_has_guidance(self):
        for entry in CATALOG.values():
            assert entry.guidance
            assert entry.applicable_patterns


class TestMlpProperties:
    def test_mlp_increasing_set(self):
        kinds = {i.kind for i in mlp_increasing()}
        assert OptimizationKind.VECTORIZATION in kinds
        assert OptimizationKind.SMT in kinds
        assert OptimizationKind.SW_PREFETCH_L2 in kinds
        assert OptimizationKind.LOOP_TILING not in kinds

    def test_occupancy_reducing_set(self):
        kinds = {i.kind for i in occupancy_reducing()}
        assert OptimizationKind.LOOP_TILING in kinds
        assert OptimizationKind.LOOP_FUSION in kinds
        assert OptimizationKind.VECTORIZATION not in kinds

    def test_only_l2_prefetch_shifts_binding(self):
        shifters = [i.kind for i in CATALOG.values() if i.shifts_binding_to_l2]
        assert shifters == [OptimizationKind.SW_PREFETCH_L2]


class TestApplicability:
    def test_l2_prefetch_not_for_pure_streaming(self):
        """The L2-prefetch trick targets random-access routines (ISx)."""
        streaming = {i.kind for i in applicable_to(AccessPattern.STREAMING)}
        assert OptimizationKind.SW_PREFETCH_L2 not in streaming

    def test_tiling_not_for_pure_random(self):
        random_kinds = {i.kind for i in applicable_to(AccessPattern.RANDOM)}
        assert OptimizationKind.LOOP_TILING not in random_kinds

    def test_vectorization_universal(self):
        for pattern in AccessPattern:
            assert OptimizationKind.VECTORIZATION in {
                i.kind for i in applicable_to(pattern)
            }

    def test_info_lookup(self):
        assert info(OptimizationKind.SMT).name == "smt"
