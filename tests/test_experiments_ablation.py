"""Ablation library functions (repro.experiments.ablation)."""

import pytest

from repro.core import recipe as recipe_module
from repro.experiments import (
    DEFAULT_THRESHOLDS,
    latency_curve_perturbation,
    prefetch_distance_sweep,
    scaled_latency_curves,
    threshold_sweep,
)
from repro.machines import get_machine


class TestThresholdSweep:
    def test_default_point_is_clean(self):
        scores = threshold_sweep(settings=(DEFAULT_THRESHOLDS,))
        assert scores[DEFAULT_THRESHOLDS].disagree == 0

    def test_thresholds_restored_after_sweep(self):
        before = recipe_module.FULL_RATIO
        threshold_sweep(settings=((0.5, 0.4, 0.5),))
        assert recipe_module.FULL_RATIO == before

    def test_extreme_thresholds_do_change_outcomes(self):
        """Sanity: the knob is actually connected."""
        scores = threshold_sweep(settings=((0.30, 0.10, 0.30),))
        score = scores[(0.30, 0.10, 0.30)]
        assert score.disagree > 0


class TestCurvePerturbation:
    def test_context_scales_and_restores(self):
        import importlib

        skl_mod = importlib.import_module("repro.machines.skl")
        original = skl_mod.SKL_LATENCY_CALIBRATION
        with scaled_latency_curves(2.0):
            machine = get_machine("skl")
            assert machine.latency_calibration[0][1] == pytest.approx(
                2.0 * original[0][1]
            )
        assert skl_mod.SKL_LATENCY_CALIBRATION == original
        assert get_machine("skl").latency_calibration[0][1] == pytest.approx(
            original[0][1]
        )

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            with scaled_latency_curves(0.0):
                pass

    def test_mild_perturbation_is_stable(self):
        result = latency_curve_perturbation(1.05)
        assert result.total_rows >= 28
        assert result.stability >= 0.9


class TestPrefetchDistanceSweep:
    def test_crossover_shape(self):
        points = prefetch_distance_sweep(
            distances=(0, 64), accesses_per_thread=2000
        )
        base, far = points
        assert base.distance == 0 and far.distance == 64
        assert far.l1_full_fraction < base.l1_full_fraction
        assert far.bandwidth_gbs > base.bandwidth_gbs
