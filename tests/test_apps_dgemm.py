"""dgemm app: correctness + the unroll-and-jam recommendation chain."""

import pytest

from repro.apps import DgemmApp
from repro.core import OptimizationKind, RoutineAnalyzer
from repro.errors import ConfigurationError
from repro.sim import SimConfig, run_trace


class TestDgemmKernel:
    def test_blocked_matches_numpy(self):
        assert DgemmApp(n=48, block=12).verify()

    def test_rejects_nondivisible_block(self):
        with pytest.raises(ConfigurationError):
            DgemmApp(n=50, block=12)


class TestDgemmSignature:
    @pytest.fixture(scope="class")
    def stats(self, skl):
        app = DgemmApp()
        trace = app.extract_trace(skl)
        return run_trace(
            trace, SimConfig(machine=skl, sim_cores=2, window_per_core=14)
        )

    def test_low_mshr_occupancy(self, skl, stats):
        """Blocked GEMM: most data in cache, occupancy near zero —
        the situation the paper says 'can be inferred from a low MSHRQ
        occupancy'."""
        assert stats.avg_occupancy(1) < 1.0
        assert stats.avg_occupancy(2) < 2.0

    def test_recipe_recommends_unroll_and_jam(self, skl, stats):
        """The paper's chain: low occupancy -> register tiling applies."""
        report = RoutineAnalyzer(skl).analyze_run(stats)
        assert report.mlp.n_avg < 1.0
        benefit = report.decision.benefit_of(OptimizationKind.UNROLL_AND_JAM)
        assert benefit.expects_speedup
