"""TMA baseline: category tree and the documented weaknesses."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim import SimConfig, run_trace, trace_from_addresses
from repro.tma import TmaAnalysis, TmaBreakdown, TmaCategory
from repro.workloads import get_workload
from repro.workloads.base import TraceSpec


def _random_run(machine, n=800):
    rng = random.Random(4)
    line = machine.line_bytes
    trace = trace_from_addresses(
        [[rng.randrange(1 << 22) * line for _ in range(n)] for _ in range(2)],
        line_bytes=line,
        gap_cycles=2.0,
    )
    return run_trace(trace, SimConfig(machine=machine, sim_cores=2, window_per_core=16))


class TestCategories:
    def test_levels(self):
        assert TmaCategory.RETIRING.level == 1
        assert TmaCategory.BACKEND_MEMORY.level == 2
        assert TmaCategory.MEMORY_BANDWIDTH.level == 3

    def test_parents(self):
        assert TmaCategory.MEMORY_BANDWIDTH.parent is TmaCategory.BACKEND_MEMORY
        assert TmaCategory.RETIRING.parent is None

    def test_breakdown_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            TmaBreakdown({TmaCategory.RETIRING: 1.5})

    def test_breakdown_render(self):
        text = TmaBreakdown({TmaCategory.RETIRING: 0.5}).render()
        assert "retiring" in text


class TestAnalysis:
    def test_level1_sums_to_one(self, skl):
        report = TmaAnalysis(skl).analyze(_random_run(skl))
        level1 = sum(report.breakdown.level1().values())
        assert level1 == pytest.approx(1.0, abs=1e-6)

    def test_memory_bound_dominates_random_workload(self, skl):
        report = TmaAnalysis(skl).analyze(_random_run(skl))
        assert report.breakdown[TmaCategory.BACKEND_MEMORY] > 0.4

    def test_bw_plus_latency_equals_memory_bound(self, skl):
        report = TmaAnalysis(skl).analyze(_random_run(skl))
        assert report.breakdown[TmaCategory.MEMORY_BANDWIDTH] + report.breakdown[
            TmaCategory.MEMORY_LATENCY
        ] == pytest.approx(report.breakdown[TmaCategory.BACKEND_MEMORY], abs=1e-9)

    def test_rejects_empty_run(self, skl):
        from repro.sim.stats import SimStats

        with pytest.raises(ConfigurationError):
            TmaAnalysis(skl).analyze(SimStats())


class TestMisleadingLatencyMetric:
    def test_streaming_latency_underreported(self, skl):
        """The hpcg phenomenon: derived latency << true loaded latency."""
        workload = get_workload("hpcg")
        trace = workload.generate_trace(
            skl, spec=TraceSpec(threads=2, accesses_per_thread=2500)
        )
        stats = run_trace(
            trace, SimConfig(machine=skl, sim_cores=2, window_per_core=16)
        )
        report = TmaAnalysis(skl).analyze(stats)
        assert report.latency_underreported
        assert "misleading" in report.render() or "(!)" in report.render()
