"""Calibration hygiene: every workload effect is resolvable & documented."""

import pytest

from repro.machines import paper_machines
from repro.optim import lookup_effect
from repro.workloads import ALL_WORKLOADS


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
class TestEffectTables:
    def test_every_planned_step_resolves(self, workload):
        """Each row plan's steps must have an effect for that machine."""
        for machine in paper_machines():
            if machine.name not in workload.machines():
                continue
            for source_steps, step in workload.row_plan(machine.name):
                for name in list(source_steps) + ([step] if step else []):
                    effect = lookup_effect(workload.effects, name, machine.name)
                    assert effect is not None

    def test_every_effect_has_a_rationale(self, workload):
        """Calibrated factors must carry their paper-grounded reasons."""
        for key, effect in workload.effects.items():
            assert effect.rationale.strip(), f"{workload.name}:{key} undocumented"

    def test_smt_effects_set_ways(self, workload):
        for key, effect in workload.effects.items():
            step = key.split("@")[0]
            if step == "smt2":
                assert effect.smt_ways == 2, key
            if step == "smt4":
                assert effect.smt_ways == 4, key

    def test_only_l2_prefetch_shifts_binding(self, workload):
        for key, effect in workload.effects.items():
            step = key.split("@")[0]
            if effect.shift_binding_to is not None:
                assert step == "l2_prefetch", key

    def test_base_demand_positive_and_sane(self, workload):
        for machine in paper_machines():
            cal = workload.calibration(machine.name)
            # Base occupancies never exceed the L2 file (tables confirm).
            assert 0 < cal.demand_mlp <= machine.l2.mshrs + 1

    def test_plans_end_in_terminal_or_opt(self, workload):
        """Every machine's plan mirrors a paper table structure."""
        for machine_name in workload.machines():
            plan = workload.row_plan(machine_name)
            assert plan, f"{workload.name}@{machine_name} has an empty plan"
            sources = [steps for steps, _ in plan]
            assert sources[0] == (), "plans must start from base"
