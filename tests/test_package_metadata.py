"""Package metadata consistency."""

from pathlib import Path

import repro

ROOT = Path(__file__).resolve().parent.parent


class TestVersion:
    def test_version_matches_pyproject(self):
        pyproject = (ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_version_matches_citation(self):
        citation = (ROOT / "CITATION.cff").read_text()
        assert f"version: {repro.__version__}" in citation


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_paper_machines_reachable_from_top_level(self):
        machines = repro.paper_machines()
        assert [m.name for m in machines] == ["skl", "knl", "a64fx"]


class TestDocumentationFiles:
    def test_required_documents_exist(self):
        for name in (
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/TUTORIAL.md",
            "docs/CALIBRATION.md",
        ):
            path = ROOT / name
            assert path.exists(), name
            assert len(path.read_text()) > 500, name

    def test_design_indexes_every_bench(self):
        """DESIGN.md's experiment index names each bench module."""
        design = (ROOT / "DESIGN.md").read_text()
        bench_dir = ROOT / "benchmarks"
        missing = [
            bench.name
            for bench in bench_dir.glob("bench_*.py")
            if bench.name not in design
        ]
        assert not missing, missing

    def test_experiments_mentions_every_table(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for table in ("Table IV", "Table V", "Table VI", "Table VII",
                      "Table VIII", "Table IX", "Figure 1", "Figure 2"):
            assert table in experiments, table
