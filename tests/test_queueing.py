"""The closed-form queueing fast path (repro.perfmodel.queueing).

Property tests pin the analytic model to its contract: the latency
curve is monotone non-decreasing in injection rate, solved operating
points never exceed the Eq. 2 achievable-bandwidth ceiling, and the
closed form agrees with the bisection solver — exactly over the same
curve, and at the unloaded/saturated limits against the machine's own
calibrated model — for every registry machine.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ProfileError
from repro.machines.registry import get_machine, machine_names
from repro.perf.cache import SimCache
from repro.perfmodel.queueing import (
    CALIBRATION_KIND,
    QueueingParams,
    analytic_profile,
    calibrate_from_model,
    calibrate_from_probes,
    calibration_digest,
    solve_operating_point_fast,
    state_eligibility,
    trace_eligibility,
)
from repro.perfmodel.solver import solve_operating_point
from repro.optim.transforms import WorkloadState
from repro.sim.coltrace import ColumnarThreadTrace, ColumnarTrace

MACHINES = tuple(machine_names())

machines_st = st.sampled_from(MACHINES)
demands = st.floats(min_value=0.01, max_value=200.0, allow_nan=False)
rates = st.floats(min_value=0.0, max_value=5e9, allow_nan=False)


def _params(name):
    return calibrate_from_model(get_machine(name))


class TestCurveProperties:
    @given(machine=machines_st, r1=rates, r2=rates)
    def test_latency_monotone_in_injection_rate(self, machine, r1, r2):
        spec = get_machine(machine)
        params = _params(machine)
        lo, hi = sorted((r1, r2))
        assert params.latency_at_rate(hi, spec.line_bytes) >= params.latency_at_rate(
            lo, spec.line_bytes
        )

    @given(machine=machines_st, rate=rates)
    def test_latency_never_below_unloaded(self, machine, rate):
        spec = get_machine(machine)
        params = _params(machine)
        assert (
            params.latency_at_rate(rate, spec.line_bytes)
            >= params.unloaded_latency_ns
        )

    @given(machine=machines_st)
    def test_unloaded_latency_matches_machine_model(self, machine):
        from repro.memory.latency_model import model_for_machine

        spec = get_machine(machine)
        params = _params(machine)
        assert params.idle_latency_ns == pytest.approx(
            model_for_machine(spec).latency_ns(0.0)
        )


class TestSolveProperties:
    @given(machine=machines_st, demand=demands, level=st.sampled_from([1, 2]))
    @settings(max_examples=200)
    def test_respects_bandwidth_ceiling(self, machine, demand, level):
        spec = get_machine(machine)
        point = solve_operating_point_fast(spec, demand, level)
        # Eq. 2: bandwidth can never exceed the achievable ceiling.
        assert point.bandwidth_bytes <= spec.memory.achievable_bw_bytes * (
            1.0 + 1e-9
        )
        assert point.iterations == 0
        assert point.residual < 1e-9

    @given(machine=machines_st, demand=demands, level=st.sampled_from([1, 2]))
    @settings(max_examples=200)
    def test_agrees_with_bisection_over_same_curve(self, machine, demand, level):
        spec = get_machine(machine)
        params = _params(machine)
        fast = solve_operating_point_fast(spec, demand, level, params=params)
        slow = solve_operating_point(spec, demand, level, curve=params)
        assert fast.bandwidth_bytes == pytest.approx(
            slow.bandwidth_bytes, rel=1e-6
        )
        assert fast.latency_ns == pytest.approx(slow.latency_ns, rel=1e-6)
        assert fast.bandwidth_capped == slow.bandwidth_capped

    @pytest.mark.parametrize("machine", MACHINES)
    def test_unloaded_limit_agrees_with_solver(self, machine):
        # Near zero demand both routes sit on the flat part of their
        # curves at the machine's idle latency.
        spec = get_machine(machine)
        fast = solve_operating_point_fast(spec, 1e-3, 1)
        slow = solve_operating_point(spec, 1e-3, 1)
        assert fast.latency_ns == pytest.approx(slow.latency_ns, rel=1e-3)
        assert fast.bandwidth_bytes == pytest.approx(
            slow.bandwidth_bytes, rel=1e-3
        )

    @pytest.mark.parametrize("machine", MACHINES)
    def test_saturated_limit_agrees_with_solver(self, machine):
        # Demand far above the MSHR limit: both routes pin n at the
        # binding file's size and land on the same operating point
        # (HBM-generation machines stay MSHR-bound below the ceiling —
        # that is the model's point — so agreement, not capping, is the
        # invariant here).
        spec = get_machine(machine)
        params = _params(machine)
        fast = solve_operating_point_fast(spec, 1e4, 2, params=params)
        slow = solve_operating_point(spec, 1e4, 2, curve=params)
        assert fast.n_sustained == float(spec.mshr_limit(2))
        assert fast.bandwidth_bytes == pytest.approx(
            slow.bandwidth_bytes, rel=1e-6
        )
        assert fast.latency_ns == pytest.approx(slow.latency_ns, rel=1e-6)
        assert fast.bandwidth_capped == slow.bandwidth_capped

    @pytest.mark.parametrize("machine", ["skl", "knl"])
    def test_capped_regime_matches_default_solver(self, machine):
        # skl/knl genuinely saturate the achievable ceiling at the L2
        # limit; deep in that regime latency is backed out of Little's
        # law, so fast and slow agree even across *different* curves.
        spec = get_machine(machine)
        fast = solve_operating_point_fast(spec, 1e4, 2)
        slow = solve_operating_point(spec, 1e4, 2)
        assert fast.bandwidth_capped and slow.bandwidth_capped
        assert fast.bandwidth_bytes == pytest.approx(slow.bandwidth_bytes)
        assert fast.latency_ns == pytest.approx(slow.latency_ns, rel=1e-9)

    @given(machine=machines_st, d1=demands, d2=demands)
    @settings(max_examples=100)
    def test_bandwidth_monotone_in_demand(self, machine, d1, d2):
        spec = get_machine(machine)
        lo, hi = sorted((d1, d2))
        p_lo = solve_operating_point_fast(spec, lo, 1)
        p_hi = solve_operating_point_fast(spec, hi, 1)
        assert p_hi.bandwidth_bytes >= p_lo.bandwidth_bytes * (1.0 - 1e-9)

    def test_rejects_bad_inputs(self):
        spec = get_machine("skl")
        with pytest.raises(ConfigurationError):
            solve_operating_point_fast(spec, 0.0, 1)
        with pytest.raises(ConfigurationError):
            solve_operating_point_fast(spec, 1.0, 1, cores=0)
        with pytest.raises(ConfigurationError):
            solve_operating_point_fast(
                spec, 1.0, 1, params=_params("knl")
            )


class TestSolverResidualDiagnostics:
    @pytest.mark.parametrize("machine", MACHINES)
    def test_bisection_residual_small(self, machine):
        spec = get_machine(machine)
        for demand in (0.5, 5.0, 50.0):
            point = solve_operating_point(spec, demand, 1)
            assert point.residual < 1e-3
            assert point.iterations >= 1


class TestAnalyticProfile:
    def test_profile_shape_and_source(self):
        spec = get_machine("skl")
        profile = analytic_profile(spec)
        assert profile.source == "analytic"
        assert profile.machine_name == "skl"
        assert len(profile.points) == 12
        assert profile.idle_latency_ns == pytest.approx(
            _params("skl").unloaded_latency_ns
        )

    def test_profile_levels_validated(self):
        with pytest.raises(ConfigurationError):
            analytic_profile(get_machine("skl"), levels=1)


class TestCalibration:
    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            QueueingParams("m", -1.0, 1.0, 100.0, 10.0)
        with pytest.raises(ConfigurationError):
            QueueingParams("m", 1e9, 2e9, 100.0, 10.0)
        with pytest.raises(ConfigurationError):
            QueueingParams("m", 1e9, 1e9, 0.0, 10.0)
        with pytest.raises(ConfigurationError):
            QueueingParams("m", 1e9, 1e9, 100.0, -1.0)

    def test_dict_round_trip(self):
        params = _params("knl")
        assert QueueingParams.from_dict(params.to_dict()) == params

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ProfileError):
            QueueingParams.from_dict({"machine_name": "x"})

    def test_latency_rejects_bad_utilization(self):
        params = _params("skl")
        with pytest.raises(ConfigurationError):
            params.latency_ns(-0.1)
        with pytest.raises(ConfigurationError):
            params.latency_ns(math.nan)

    def test_probe_calibration_cached(self, tmp_path):
        spec = get_machine("skl")
        cache = SimCache(tmp_path, enabled=True)
        first = calibrate_from_probes(spec, cache=cache)
        assert first.source == "probes" and first.probes == 5
        before = cache.counters.snapshot()
        second = calibrate_from_probes(spec, cache=cache)
        assert second == first
        # The warm call is one payload hit, zero new simulations.
        delta = cache.counters.diff(before)
        assert delta.hits == 1 and delta.stores == 0

    def test_corrupt_calibration_recovers(self, tmp_path):
        spec = get_machine("skl")
        cache = SimCache(tmp_path, enabled=True)
        first = calibrate_from_probes(spec, cache=cache)
        digest = calibration_digest(spec)
        path = cache.payload_path_for(digest, kind=CALIBRATION_KIND)
        path.write_text("{definitely not json")
        with pytest.warns(UserWarning, match="corrupt calibration"):
            second = calibrate_from_probes(spec, cache=cache)
        assert second == first
        assert path.with_suffix(".corrupt").exists()

    def test_digest_depends_on_probe_plan(self):
        spec = get_machine("skl")
        assert calibration_digest(spec) != calibration_digest(
            spec, probe_gaps=(100.0, 10.0)
        )


class TestEligibility:
    def _state(self, **overrides):
        base = dict(
            workload="isx",
            machine_name="skl",
            routine="histogram",
            pattern="random",
            random_fraction=0.95,
            binding_level=1,
            demand_mlp=10.5,
        )
        base.update(overrides)
        return WorkloadState(**base)

    def test_plain_state_eligible(self):
        decision = state_eligibility(self._state())
        assert decision.eligible and bool(decision)
        assert decision.reason == ""

    def test_smt_state_falls_back(self):
        decision = state_eligibility(self._state(smt_ways=2))
        assert not decision
        assert "SMT" in decision.reason

    def test_prefetch_dominated_falls_back(self):
        decision = state_eligibility(self._state(random_fraction=0.02))
        assert not decision
        assert "prefetch-dominated" in decision.reason

    def _trace(self, gaps):
        thread = ColumnarThreadTrace(
            thread_id=0,
            addr=[64 * i for i in range(len(gaps))],
            kind=[0] * len(gaps),
            gap_cycles=gaps,
        )
        return ColumnarTrace(threads=(thread,), routine="t", line_bytes=64)

    def test_steady_trace_eligible(self):
        assert trace_eligibility(self._trace([10.0] * 64)).eligible

    def test_bursty_trace_falls_back(self):
        gaps = [0.0] * 63 + [100000.0]
        decision = trace_eligibility(self._trace(gaps))
        assert not decision.eligible
        assert "pathological" in decision.reason


class TestRuntimeFastMode:
    def test_fast_model_records_route(self):
        from repro.perfmodel.runtime import RuntimeModel

        spec = get_machine("skl")
        model = RuntimeModel(spec, fast=True)
        state = TestEligibility()._state()
        pred = model.predict(state)
        assert pred.solved_fast and pred.fallback_reason == ""
        assert pred.point.iterations == 0

    def test_fast_model_falls_back_with_reason(self):
        from repro.perfmodel.runtime import RuntimeModel

        spec = get_machine("skl")
        model = RuntimeModel(spec, fast=True)
        state = TestEligibility()._state(smt_ways=2)
        pred = model.predict(state)
        assert not pred.solved_fast
        assert "SMT" in pred.fallback_reason
        assert pred.point.iterations > 0
