"""Every example script runs to completion (subprocess smoke tests)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_example_inventory():
    """The README promises at least these examples."""
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "characterize_machine.py",
        "optimize_isx_knl.py",
        "roofline_vs_recipe.py",
        "tma_vs_mlp.py",
        "auto_advisor.py",
        "ingest_measurements.py",
        "real_kernels.py",
    }


def test_real_kernels():
    result = _run("real_kernels.py")
    assert result.returncode == 0, result.stderr
    assert "kernel verified = True" in result.stdout
    assert "classified" in result.stdout


def test_quickstart(tmp_path):
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "count_local_keys" in result.stdout
    assert "sw_prefetch_l2" in result.stdout


def test_characterize_machine(tmp_path):
    result = _run("characterize_machine.py", str(tmp_path))
    assert result.returncode == 0, result.stderr
    assert (tmp_path / "skl_profile.json").exists()
    assert (tmp_path / "a64fx_profile.json").exists()


def test_optimize_isx_knl():
    result = _run("optimize_isx_knl.py")
    assert result.returncode == 0, result.stderr
    assert "speedup" in result.stdout
    assert "migrated" in result.stdout


def test_roofline_vs_recipe():
    result = _run("roofline_vs_recipe.py")
    assert result.returncode == 0, result.stderr
    assert "L1-MSHR ceiling" in result.stdout


def test_tma_vs_mlp():
    result = _run("tma_vs_mlp.py")
    assert result.returncode == 0, result.stderr
    assert "TMA" in result.stdout


def test_auto_advisor():
    result = _run("auto_advisor.py")
    assert result.returncode == 0, result.stderr
    assert "Advisor trajectory" in result.stdout
    assert "GPU analysis" in result.stdout


def test_ingest_measurements():
    result = _run("ingest_measurements.py")
    assert result.returncode == 0, result.stderr
    assert "setCornerDiv" in result.stdout
