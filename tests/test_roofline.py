"""Roofline model + the paper's MSHR ceiling extension (Figure 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.roofline import (
    ExtendedRoofline,
    Roofline,
    RooflinePoint,
    extended_roofline_for,
    log_intensity_grid,
    mshr_ceiling,
)


class TestClassicRoofline:
    def test_memory_bound_region(self, knl):
        roof = Roofline.for_machine(knl)
        assert roof.attainable_gflops(1.0) == pytest.approx(400.0)
        assert roof.bound_kind(1.0) == "memory"

    def test_compute_bound_region(self, knl):
        roof = Roofline.for_machine(knl)
        assert roof.attainable_gflops(100.0) == pytest.approx(knl.peak_gflops)
        assert roof.bound_kind(100.0) == "compute"

    def test_ridge_point(self, knl):
        roof = Roofline.for_machine(knl)
        assert roof.ridge_intensity == pytest.approx(knl.peak_gflops / 400.0)

    def test_headroom(self, knl):
        roof = Roofline.for_machine(knl)
        point = RooflinePoint("app", 1.0, 100.0)
        assert roof.headroom(point) == pytest.approx(4.0)

    def test_series(self, knl):
        roof = Roofline.for_machine(knl)
        series = roof.series([0.1, 1.0, 10.0])
        assert len(series) == 3
        assert series[0][1] < series[1][1]

    def test_rejects_nonpositive_intensity(self, knl):
        with pytest.raises(ConfigurationError):
            Roofline.for_machine(knl).attainable_gflops(0.0)

    def test_log_grid(self):
        grid = log_intensity_grid(0.01, 100.0, 5)
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(100.0)
        with pytest.raises(ConfigurationError):
            log_intensity_grid(0.0, 1.0)


class TestMshrCeiling:
    def test_knl_l1_ceiling_is_256gbs(self, knl):
        """Paper Figure 2: the dotted line at 256 GB/s."""
        ceiling = mshr_ceiling(knl, 1, 192.0)
        assert ceiling.bandwidth_gbs == pytest.approx(256.0, rel=0.01)
        assert ceiling.mshrs_per_core == 12

    def test_l2_ceiling_above_l1(self, knl):
        l1 = mshr_ceiling(knl, 1, 190.0)
        l2 = mshr_ceiling(knl, 2, 190.0)
        assert l2.bandwidth_gbs > l1.bandwidth_gbs

    def test_label_mentions_level(self, knl):
        assert "L1" in mshr_ceiling(knl, 1, 190.0).label


class TestExtendedRoofline:
    def test_ceiling_tightens_bound(self, knl):
        ext = extended_roofline_for(knl, 190.0, levels=(1,))
        classic = ext.roofline.attainable_gflops(1.0)
        bounded = ext.attainable_gflops(1.0)
        assert bounded < classic

    def test_explains_stall_for_isx_base(self, knl):
        """Point O: far under the classic roof, on the L1 ceiling."""
        ext = extended_roofline_for(knl, 190.0, levels=(1,))
        ceiling_bw = ext.ceilings[0].bandwidth_gbs
        point = RooflinePoint("isx", 0.03, 0.95 * ceiling_bw * 0.03)
        assert ext.explains_stall(point)

    def test_no_stall_explanation_when_far_below_ceiling(self, knl):
        ext = extended_roofline_for(knl, 190.0, levels=(1,))
        point = RooflinePoint("comd", 0.03, 0.1)
        assert ext.binding_ceiling(point) is None

    def test_series_includes_both_bounds(self, knl):
        ext = extended_roofline_for(knl, 190.0)
        series = ext.series([0.1, 1.0])
        for _, classic, extended in series:
            assert extended <= classic
