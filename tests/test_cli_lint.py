"""End-to-end tests for the ``repro lint`` CLI command."""

import json

from repro.cli import main


def _seed_violations(tmp_path):
    """A fixture tree with one DET001, one DET002, and one UNIT001."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import random\n"
        "import time\n"
        "t0 = time.time()\n"
        "r = random.Random()\n"
        "bw = t0 * 1e9\n"
    )
    return tmp_path


def test_lint_repo_tree_is_clean():
    assert main(["lint", "src", "tests"]) == 0


def test_lint_seeded_violations_fail(tmp_path, capsys):
    code = main(["lint", str(_seed_violations(tmp_path))])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "DET002" in out
    assert "UNIT001" in out
    assert "error(s)" in out


def test_lint_select_subset(tmp_path, capsys):
    target = _seed_violations(tmp_path)
    assert main(["lint", "--select", "UNIT", str(target)]) == 1
    out = capsys.readouterr().out
    assert "UNIT001" in out
    assert "DET001" not in out
    # The DET violations alone also fail under a DET-only run.
    assert main(["lint", "--select", "det", str(target)]) == 1


def test_lint_json_format(tmp_path, capsys):
    code = main(["lint", "--format", "json", str(_seed_violations(tmp_path))])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert doc["error_count"] >= 3
    assert {v["rule_id"] for v in doc["violations"]} >= {
        "DET001",
        "DET002",
        "UNIT001",
    }


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for prefix in ("DET", "UNIT", "KEY", "SLOT", "SPEC"):
        assert prefix in out


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_ignore_rules(tmp_path, capsys):
    target = _seed_violations(tmp_path)
    # Ignoring DET leaves only the UNIT001 finding.
    assert main(["lint", "--ignore", "DET", str(target)]) == 1
    out = capsys.readouterr().out
    assert "UNIT001" in out
    assert "DET001" not in out and "DET002" not in out
    # Ignoring everything the fixture trips yields a clean run.
    assert main(["lint", "--ignore", "DET,UNIT", str(target)]) == 0


def test_lint_ignore_applies_after_select(tmp_path, capsys):
    target = _seed_violations(tmp_path)
    assert main(["lint", "--select", "DET,UNIT", "--ignore", "det", str(target)]) == 1
    out = capsys.readouterr().out
    assert "UNIT001" in out
    assert "DET001" not in out


def test_lint_strict_promotes_warnings(capsys):
    # The repo's future-machines file carries SPEC003 warning-severity
    # findings (MSHR-bound by design): exit 0 normally, 1 under --strict.
    target = "src/repro/machines/future.py"
    assert main(["lint", "--select", "SPEC", target]) == 0
    capsys.readouterr()
    assert main(["lint", "--select", "SPEC", "--strict", target]) == 1
    assert "SPEC003" in capsys.readouterr().out


def test_lint_strict_clean_tree_still_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", "--strict", str(clean)]) == 0


def test_lint_json_round_trip(tmp_path):
    """The JSON document reconstructs the exact violation set."""
    from pathlib import Path

    from repro.analysis import LintRunner, Severity, Violation, to_json_doc

    result = LintRunner().run([Path(_seed_violations(tmp_path))])
    assert result.violations
    doc = json.loads(json.dumps(to_json_doc(result)))
    rebuilt = [
        Violation(
            path=v["path"],
            line=v["line"],
            col=v["col"],
            rule_id=v["rule_id"],
            message=v["message"],
            severity=Severity(v["severity"]),
        )
        for v in doc["violations"]
    ]
    assert rebuilt == result.violations
    assert doc["error_count"] == len(result.errors)
    assert doc["violation_count"] == len(result.violations)
