"""End-to-end tests for the ``repro lint`` CLI command."""

import json

from repro.cli import main


def _seed_violations(tmp_path):
    """A fixture tree with one DET001, one DET002, and one UNIT001."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import random\n"
        "import time\n"
        "t0 = time.time()\n"
        "r = random.Random()\n"
        "bw = t0 * 1e9\n"
    )
    return tmp_path


def test_lint_repo_tree_is_clean():
    assert main(["lint", "src", "tests"]) == 0


def test_lint_seeded_violations_fail(tmp_path, capsys):
    code = main(["lint", str(_seed_violations(tmp_path))])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "DET002" in out
    assert "UNIT001" in out
    assert "error(s)" in out


def test_lint_select_subset(tmp_path, capsys):
    target = _seed_violations(tmp_path)
    assert main(["lint", "--select", "UNIT", str(target)]) == 1
    out = capsys.readouterr().out
    assert "UNIT001" in out
    assert "DET001" not in out
    # The DET violations alone also fail under a DET-only run.
    assert main(["lint", "--select", "det", str(target)]) == 1


def test_lint_json_format(tmp_path, capsys):
    code = main(["lint", "--format", "json", str(_seed_violations(tmp_path))])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert doc["error_count"] >= 3
    assert {v["rule_id"] for v in doc["violations"]} >= {
        "DET001",
        "DET002",
        "UNIT001",
    }


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for prefix in ("DET", "UNIT", "KEY", "SLOT", "SPEC"):
        assert prefix in out


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
    assert "clean" in capsys.readouterr().out
