"""Shared fixtures: machines, small sim configs, cached latency profiles."""

from __future__ import annotations

import pytest

from repro.machines import get_machine
from repro.memory import LatencyProfile, model_for_machine
from repro.sim import SimConfig


@pytest.fixture(scope="session", autouse=True)
def _hermetic_sim_cache(tmp_path_factory):
    """Point the sim cache at a per-session temp dir.

    Keeps the test run hermetic: no reads of (possibly stale) user-level
    cache entries, no pollution of ``~/.cache``.  Within the session the
    cache still works, so repeated simulations of identical inputs hit.

    An explicitly exported ``REPRO_CACHE_DIR`` is honored instead — CI
    sets it to a workspace path persisted between runs (entries are
    digest-verified on load, so stale or corrupt files are just misses).
    """
    import os

    from repro.perf.cache import configure_cache

    explicit = os.environ.get("REPRO_CACHE_DIR")
    cache_dir = explicit if explicit else tmp_path_factory.mktemp("repro-sim-cache")
    configure_cache(cache_dir=cache_dir, enabled=True)
    yield


@pytest.fixture(scope="session")
def skl():
    return get_machine("skl")


@pytest.fixture(scope="session")
def knl():
    return get_machine("knl")


@pytest.fixture(scope="session")
def a64fx():
    return get_machine("a64fx")


@pytest.fixture(scope="session")
def all_machines(skl, knl, a64fx):
    return (skl, knl, a64fx)


@pytest.fixture(scope="session")
def skl_profile(skl):
    """Model-derived SKL latency profile (fast, deterministic)."""
    return LatencyProfile.from_model(
        skl.name, skl.memory.peak_bw_bytes, model_for_machine(skl)
    )


@pytest.fixture
def small_skl_config(skl):
    """A 2-core SKL slice sized for fast unit tests."""
    return SimConfig(machine=skl, sim_cores=2, threads_per_core=1, window_per_core=16)


@pytest.fixture(scope="session")
def xmem_skl_profile(skl):
    """A real (measured) X-Mem profile for SKL; shared across tests."""
    from repro.xmem import XMemConfig, characterize_machine

    return characterize_machine(
        skl, XMemConfig(levels=8, accesses_per_thread=1500)
    )
