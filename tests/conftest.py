"""Shared fixtures: machines, small sim configs, cached latency profiles."""

from __future__ import annotations

import pytest

from repro.machines import get_machine
from repro.memory import LatencyProfile, model_for_machine
from repro.sim import SimConfig


@pytest.fixture(scope="session")
def skl():
    return get_machine("skl")


@pytest.fixture(scope="session")
def knl():
    return get_machine("knl")


@pytest.fixture(scope="session")
def a64fx():
    return get_machine("a64fx")


@pytest.fixture(scope="session")
def all_machines(skl, knl, a64fx):
    return (skl, knl, a64fx)


@pytest.fixture(scope="session")
def skl_profile(skl):
    """Model-derived SKL latency profile (fast, deterministic)."""
    return LatencyProfile.from_model(
        skl.name, skl.memory.peak_bw_bytes, model_for_machine(skl)
    )


@pytest.fixture
def small_skl_config(skl):
    """A 2-core SKL slice sized for fast unit tests."""
    return SimConfig(machine=skl, sim_cores=2, threads_per_core=1, window_per_core=16)


@pytest.fixture(scope="session")
def xmem_skl_profile(skl):
    """A real (measured) X-Mem profile for SKL; shared across tests."""
    from repro.xmem import XMemConfig, characterize_machine

    return characterize_machine(
        skl, XMemConfig(levels=8, accesses_per_thread=1500)
    )
