"""The calibration-point merge guard of TabulatedLatencyModel."""

import pytest

from repro.errors import ProfileError
from repro.memory import TabulatedLatencyModel


class TestNearDuplicateMerging:
    def test_subnormal_spacing_is_merged_not_overflowed(self):
        """The hypothesis-found case: near-coincident control points
        must not blow up interpolation slopes."""
        model = TabulatedLatencyModel(
            [(0.0, 1.0), (2.2e-311, 2.0), (0.5, 2.5), (1.0, 3.0)]
        )
        value = model.latency_ns(5e-324)
        assert 1.0 <= value <= 3.0
        # Monotone across the merged region.
        assert model.latency_ns(0.25) >= value

    def test_merge_keeps_higher_latency(self):
        model = TabulatedLatencyModel([(0.0, 1.0), (1e-12, 5.0), (1.0, 10.0)])
        # The two left points merge; the survivor carries latency 5.
        assert model.latency_ns(0.0) == pytest.approx(5.0)

    def test_all_points_collapsing_rejected(self):
        with pytest.raises(ProfileError):
            TabulatedLatencyModel([(0.0, 1.0), (1e-12, 2.0)])

    def test_normal_calibrations_unaffected(self):
        model = TabulatedLatencyModel([(0.0, 80.0), (0.5, 100.0), (1.0, 180.0)])
        assert len(model.points) == 3
        assert model.latency_ns(0.25) == pytest.approx(90.0)
