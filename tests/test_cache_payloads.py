"""Payload store, persistent tallies, and stats scan (repro.perf.cache).

The generic ``(kind, digest)`` payload store hosts the queueing-model
calibrations beside the SimStats shards; these tests pin its layout
(never colliding with the two-hex sim shards), quarantine behavior,
the append-only tallies ledger, and the ``repro cache stats`` scan.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CacheKeyError
from repro.perf.cache import (
    CacheCounters,
    SimCache,
    collect_stats,
    read_tallies,
    stable_digest,
)

DIGEST = stable_digest({"payload": "unit"})


@pytest.fixture
def cache(tmp_path):
    return SimCache(tmp_path, enabled=True)


class TestPayloadStore:
    def test_round_trip(self, cache):
        doc = {"a": 1, "b": [1.5, 2.5]}
        cache.store_payload(DIGEST, doc, kind="calibration")
        assert cache.load_payload(DIGEST, kind="calibration") == doc
        assert cache.counters.hits == 1 and cache.counters.stores == 1

    def test_missing_is_miss(self, cache):
        assert cache.load_payload(DIGEST, kind="calibration") is None
        assert cache.counters.misses == 1

    def test_kind_namespaces_are_disjoint(self, cache):
        cache.store_payload(DIGEST, {"k": "one"}, kind="calibration")
        assert cache.load_payload(DIGEST, kind="other-kind") is None
        assert cache.load_payload(DIGEST, kind="calibration") == {"k": "one"}

    def test_layout_never_collides_with_sim_shards(self, cache):
        path = cache.payload_path_for(DIGEST, kind="calibration")
        # kind dir sits beside the two-hex shard dirs, never inside them
        assert path.parent.parent.name == "calibration"
        assert path.parent.parent.parent == cache.cache_dir

    @pytest.mark.parametrize("bad", ["ab", "1f", "", "has space", ".dot", "a/b"])
    def test_invalid_kinds_rejected(self, cache, bad):
        with pytest.raises(CacheKeyError):
            cache.payload_path_for(DIGEST, kind=bad)

    def test_corrupt_payload_quarantined(self, cache):
        cache.store_payload(DIGEST, {"ok": True}, kind="calibration")
        path = cache.payload_path_for(DIGEST, kind="calibration")
        path.write_text("garbage{")
        with pytest.warns(UserWarning, match="corrupt calibration"):
            assert cache.load_payload(DIGEST, kind="calibration") is None
        assert path.with_suffix(".corrupt").exists()
        assert not path.exists()

    def test_wrong_digest_rejected(self, cache):
        path = cache.payload_path_for(DIGEST, kind="calibration")
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"schema": 3, "digest": "not-it", "payload": {}})
        )
        with pytest.warns(UserWarning):
            assert cache.load_payload(DIGEST, kind="calibration") is None

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = SimCache(tmp_path, enabled=False)
        cache.store_payload(DIGEST, {"a": 1}, kind="calibration")
        assert cache.load_payload(DIGEST, kind="calibration") is None
        assert not any(tmp_path.iterdir())


class TestTallies:
    def test_flush_appends_deltas(self, cache):
        cache.counters.hits += 2
        cache.counters.misses += 1
        cache.flush_tallies()
        cache.counters.hits += 3
        cache.flush_tallies()
        total = read_tallies(cache.cache_dir)
        assert (total.hits, total.misses) == (5, 1)

    def test_flush_skips_when_idle(self, cache):
        cache.flush_tallies()
        assert not (cache.cache_dir / "tallies.jsonl").exists()

    def test_torn_ledger_line_skipped(self, cache):
        cache.counters.hits += 1
        cache.flush_tallies()
        with open(cache.cache_dir / "tallies.jsonl", "a") as fh:
            fh.write('{"hits": 4, "mis')  # torn append
        total = read_tallies(cache.cache_dir)
        assert total.hits == 1

    def test_counters_diff_and_add(self):
        a = CacheCounters(hits=5, misses=3, stores=2, errors=1)
        b = a.snapshot()
        a.hits += 2
        assert a.diff(b).hits == 2
        b.add(CacheCounters(hits=1))
        assert b.hits == 6


class TestCollectStats:
    def test_scan_counts_both_stores(self, cache):
        cache.store_payload(DIGEST, {"a": 1}, kind="calibration")
        shard = cache.cache_dir / DIGEST[:2]
        shard.mkdir(parents=True, exist_ok=True)
        (shard / f"{DIGEST}.json").write_text("{}")
        (shard / "dead.corrupt").write_text("x")
        cache.counters.misses += 4
        stats = collect_stats(cache)
        assert stats.usage["sim"].entries == 1
        assert stats.usage["calibration"].entries == 1
        assert stats.total_entries == 2
        assert stats.total_bytes > 0
        assert stats.corrupt_entries == 1
        # collect_stats flushes the live counters into the ledger first.
        assert stats.tallies.misses == 4

    def test_scan_of_empty_dir(self, cache):
        stats = collect_stats(cache)
        assert stats.total_entries == 0
        assert stats.usage["sim"].entries == 0
