"""§III-H GPU extension: occupancy math and the occupancy advisor."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import (
    GpuAction,
    GpuAdvisor,
    GpuSpec,
    KernelDescriptor,
    a100_like,
    mshr_demand,
    occupancy,
    sustainable_bandwidth_bytes,
)


def _kernel(**overrides):
    defaults = dict(
        name="k",
        threads_per_block=256,
        registers_per_thread=32,
        shared_mem_per_block_bytes=0,
        mlp_per_warp=2.0,
    )
    defaults.update(overrides)
    return KernelDescriptor(**defaults)


class TestOccupancyCalculator:
    def test_warp_slot_limited(self):
        report = occupancy(a100_like(), _kernel())
        assert report.limiter == "warp_slots"
        assert report.active_warps == 64

    def test_register_limited(self):
        report = occupancy(a100_like(), _kernel(registers_per_thread=128))
        # 65536 regs / (128*256) = 2 blocks x 8 warps = 16 warps.
        assert report.limiter == "registers"
        assert report.active_warps == 16

    def test_shared_memory_limited(self):
        report = occupancy(
            a100_like(), _kernel(shared_mem_per_block_bytes=96 * 1024)
        )
        # 164KiB/96KiB = 1 block x 8 warps.
        assert report.limiter == "shared_memory"
        assert report.active_warps == 8

    def test_block_slot_limited(self):
        report = occupancy(a100_like(), _kernel(threads_per_block=32))
        # 32 blocks x 1 warp = 32 < 64 warp slots.
        assert report.limiter == "block_slots"
        assert report.active_warps == 32

    def test_active_warps_never_exceed_slots(self):
        report = occupancy(a100_like(), _kernel(registers_per_thread=0))
        assert report.active_warps <= a100_like().max_warps_per_sm


class TestMshrDemand:
    def test_scales_with_occupancy_and_warp_mlp(self):
        gpu = a100_like()
        low = mshr_demand(gpu, _kernel(mlp_per_warp=1.0))
        high = mshr_demand(gpu, _kernel(mlp_per_warp=2.0))
        assert high == pytest.approx(2 * low)

    def test_poor_coalescing_inflates_demand(self):
        gpu = a100_like()
        good = mshr_demand(gpu, _kernel(coalescing=1.0))
        bad = mshr_demand(gpu, _kernel(coalescing=0.25))
        assert bad == pytest.approx(4 * good)

    def test_littles_law_bandwidth(self):
        gpu = a100_like()
        bw = sustainable_bandwidth_bytes(gpu, 10.0)
        assert bw == pytest.approx(108 * 10 * 128 / 450e-9)

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            sustainable_bandwidth_bytes(a100_like(), -1.0)


class TestGpuAdvisor:
    def test_register_hog_gets_register_advice(self):
        analysis = GpuAdvisor(a100_like()).analyze(
            _kernel(registers_per_thread=128)
        )
        actions = [r.action for r in analysis.recommendations]
        assert GpuAction.REDUCE_REGISTERS in actions

    def test_shared_mem_hog_gets_shared_mem_advice(self):
        analysis = GpuAdvisor(a100_like()).analyze(
            _kernel(shared_mem_per_block_bytes=96 * 1024, mlp_per_warp=1.0)
        )
        actions = [r.action for r in analysis.recommendations]
        assert GpuAction.REDUCE_SHARED_MEM in actions

    def test_full_mshrs_get_shared_memory_reuse_advice(self):
        """High occupancy -> '(increased) use of shared memory'."""
        analysis = GpuAdvisor(a100_like()).analyze(_kernel(mlp_per_warp=4.0))
        actions = [r.action for r in analysis.recommendations]
        assert GpuAction.USE_SHARED_MEMORY in actions
        assert analysis.mshr_fill_ratio > 0.9

    def test_uncoalesced_kernel_flagged_first(self):
        analysis = GpuAdvisor(a100_like()).analyze(_kernel(coalescing=0.2))
        assert analysis.recommendations[0].action is GpuAction.IMPROVE_COALESCING

    def test_balanced_kernel_no_action(self):
        gpu = a100_like()
        analysis = GpuAdvisor(gpu).analyze(
            _kernel(registers_per_thread=48, mlp_per_warp=1.5)
        )
        if not analysis.bandwidth_bound and 0.5 < analysis.mshr_fill_ratio < 0.9:
            assert analysis.recommendations[0].action is GpuAction.NONE

    def test_render(self):
        text = GpuAdvisor(a100_like()).analyze(_kernel()).render()
        assert "warps/SM" in text and "MSHR" in text


class TestValidation:
    def test_kernel_validation(self):
        with pytest.raises(ConfigurationError):
            _kernel(mlp_per_warp=0.0)
        with pytest.raises(ConfigurationError):
            _kernel(coalescing=0.0)

    def test_gpu_spec_validation(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(
                name="bad",
                sms=0,
                max_warps_per_sm=64,
                warp_size=32,
                registers_per_sm=65536,
                shared_mem_per_sm_bytes=1,
                max_blocks_per_sm=32,
                mshrs_per_sm=96,
                line_bytes=128,
                peak_bw_gbs=1555.0,
                loaded_latency_ns=450.0,
            )
