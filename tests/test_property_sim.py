"""Property-based tests on the simulator's core invariants.

The headline property: for ANY trace, the simulator's independently
integrated MSHR occupancy equals arrival rate × average latency — i.e.
Little's law is an emergent invariant of the discrete-event machinery,
not an assumption wired into the statistics.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import get_machine
from repro.sim import SimConfig, run_trace, trace_from_addresses

SKL = get_machine("skl")


def _trace_from_seed(seed: int, n: int, pattern: str, threads: int = 2):
    rng = random.Random(seed)
    lists = []
    for t in range(threads):
        addrs = []
        if pattern == "random":
            addrs = [rng.randrange(1 << 22) * 64 for _ in range(n)]
        elif pattern == "stream":
            base = t * (1 << 28)
            addrs = [base + i * 8 for i in range(n)]
        else:  # mixed
            base = t * (1 << 28)
            for i in range(n):
                if rng.random() < 0.5:
                    addrs.append(rng.randrange(1 << 22) * 64)
                else:
                    addrs.append(base + i * 8)
        lists.append(addrs)
    return trace_from_addresses(lists, line_bytes=64, gap_cycles=2.0)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n=st.integers(200, 900),
    pattern=st.sampled_from(["random", "stream", "mixed"]),
    window=st.integers(2, 24),
)
def test_littles_law_emerges_from_any_trace(seed, n, pattern, window):
    trace = _trace_from_seed(seed, n, pattern)
    cfg = SimConfig(machine=SKL, sim_cores=2, window_per_core=window)
    stats = run_trace(trace, cfg)
    if stats.memory.latency_count < 20:
        return  # nearly everything hit cache; nothing to check
    check = stats.littles_law_check(2)
    assert check["relative_error"] < 0.02


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n=st.integers(200, 900),
    pattern=st.sampled_from(["random", "stream", "mixed"]),
    window=st.integers(2, 24),
)
def test_occupancy_never_exceeds_capacity(seed, n, pattern, window):
    trace = _trace_from_seed(seed, n, pattern)
    cfg = SimConfig(machine=SKL, sim_cores=2, window_per_core=window)
    stats = run_trace(trace, cfg)
    for tracker in stats.l1_occupancy:
        assert tracker.peak <= SKL.l1.mshrs
    for tracker in stats.l2_occupancy:
        assert tracker.peak <= SKL.l2.mshrs


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n=st.integers(200, 700),
    pattern=st.sampled_from(["random", "stream", "mixed"]),
)
def test_byte_conservation(seed, n, pattern):
    """Memory traffic equals lines moved x line size; nothing vanishes."""
    trace = _trace_from_seed(seed, n, pattern)
    cfg = SimConfig(machine=SKL, sim_cores=2, window_per_core=16)
    stats = run_trace(trace, cfg)
    total = (
        stats.memory.demand_read_bytes
        + stats.memory.demand_write_bytes
        + stats.memory.prefetch_bytes
    )
    assert total == stats.memory.total_bytes
    assert total % 64 == 0
    assert stats.memory.requests * 64 == total


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**20), n=st.integers(200, 700))
def test_all_issued_accesses_retire(seed, n):
    trace = _trace_from_seed(seed, n, "mixed")
    cfg = SimConfig(machine=SKL, sim_cores=2, window_per_core=8)
    stats = run_trace(trace, cfg)
    issued = sum(c.issued_accesses for c in stats.cores)
    assert issued == trace.total_accesses
    assert all(c.finished for c in stats.cores)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**20), n=st.integers(200, 600))
def test_hits_plus_misses_equals_demand_lookups(seed, n):
    trace = _trace_from_seed(seed, n, "mixed")
    stats = run_trace(trace, SimConfig(machine=SKL, sim_cores=2, window_per_core=8))
    assert stats.l1.hits + stats.l1.misses == trace.total_accesses
