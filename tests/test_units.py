"""Unit conversions: the arithmetic everything else leans on."""

import pytest

from repro import units


class TestBandwidth:
    def test_gb_per_s_roundtrip(self):
        assert units.to_gb_per_s(units.gb_per_s(128.0)) == pytest.approx(128.0)

    def test_gb_per_s_is_decimal(self):
        assert units.gb_per_s(1.0) == 1e9


class TestLatency:
    def test_ns_roundtrip(self):
        assert units.to_ns(units.ns(145.0)) == pytest.approx(145.0)

    def test_paper_latency_cycle_conversion(self):
        # "180ns or 378 cycles" at SKL's 2.1 GHz (paper Section I).
        assert units.ns_to_cycles(180, 2.1) == pytest.approx(378)

    def test_cycles_to_ns_inverse(self):
        assert units.cycles_to_ns(units.ns_to_cycles(93.0, 1.4), 1.4) == pytest.approx(
            93.0
        )

    def test_cycles_to_ns_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            units.cycles_to_ns(100, 0.0)


class TestSecondsCycles:
    def test_seconds_to_cycles(self):
        assert units.seconds_to_cycles(1e-9, 2.1e9) == pytest.approx(2.1)

    def test_cycles_to_seconds_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(10, -1.0)


class TestUtilization:
    def test_basic_fraction(self):
        assert units.utilization(64.0, 128.0) == pytest.approx(0.5)

    def test_rejects_nonpositive_peak(self):
        with pytest.raises(ValueError):
            units.utilization(1.0, 0.0)

    def test_rejects_negative_observed(self):
        with pytest.raises(ValueError):
            units.utilization(-1.0, 10.0)

    def test_percent(self):
        assert units.percent(0.84) == pytest.approx(84.0)


class TestFrequency:
    def test_ghz_roundtrip(self):
        assert units.to_ghz(units.ghz(2.1)) == pytest.approx(2.1)
