"""Unit conversions: the arithmetic everything else leans on."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1e-12, max_value=1e12
)


class TestBandwidth:
    def test_gb_per_s_roundtrip(self):
        assert units.to_gb_per_s(units.gb_per_s(128.0)) == pytest.approx(128.0)

    def test_gb_per_s_is_decimal(self):
        assert units.gb_per_s(1.0) == 1e9


class TestLatency:
    def test_ns_roundtrip(self):
        assert units.to_ns(units.ns(145.0)) == pytest.approx(145.0)

    def test_paper_latency_cycle_conversion(self):
        # "180ns or 378 cycles" at SKL's 2.1 GHz (paper Section I).
        assert units.ns_to_cycles(180, 2.1) == pytest.approx(378)

    def test_cycles_to_ns_inverse(self):
        assert units.cycles_to_ns(units.ns_to_cycles(93.0, 1.4), 1.4) == pytest.approx(
            93.0
        )

    def test_cycles_to_ns_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            units.cycles_to_ns(100, 0.0)


class TestSecondsCycles:
    def test_seconds_to_cycles(self):
        assert units.seconds_to_cycles(1e-9, 2.1e9) == pytest.approx(2.1)

    def test_cycles_to_seconds_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(10, -1.0)


class TestUtilization:
    def test_basic_fraction(self):
        assert units.utilization(64.0, 128.0) == pytest.approx(0.5)

    def test_rejects_nonpositive_peak(self):
        with pytest.raises(ValueError):
            units.utilization(1.0, 0.0)

    def test_rejects_negative_observed(self):
        with pytest.raises(ValueError):
            units.utilization(-1.0, 10.0)

    def test_percent(self):
        assert units.percent(0.84) == pytest.approx(84.0)


class TestFrequency:
    def test_ghz_roundtrip(self):
        assert units.to_ghz(units.ghz(2.1)) == pytest.approx(2.1)


class TestReportScaling:
    def test_ns_to_us(self):
        assert units.ns_to_us(1500.0) == pytest.approx(1.5)

    def test_ns_to_ms(self):
        assert units.ns_to_ms(2.5e6) == pytest.approx(2.5)

    def test_chain_consistency(self):
        # us and ms views of one latency differ by exactly 1000x.
        lat = 123456.0
        assert units.ns_to_us(lat) == pytest.approx(
            units.ns_to_ms(lat) * units.KILO
        )


class TestConstants:
    def test_si_ladder(self):
        assert units.GIGA == 1e9
        assert units.MEGA == 1e6
        assert units.KILO == 1e3
        assert units.NANO == 1e-9
        assert units.GIGA * units.NANO == pytest.approx(1.0)


class TestRoundTripsExhaustive:
    """Property round-trips over the physically plausible range."""

    @given(finite_floats)
    def test_bandwidth_roundtrip(self, value):
        assert units.to_gb_per_s(units.gb_per_s(value)) == pytest.approx(
            value, rel=1e-12
        )

    @given(finite_floats)
    def test_latency_roundtrip(self, value):
        assert units.to_ns(units.ns(value)) == pytest.approx(value, rel=1e-12)

    @given(finite_floats)
    def test_frequency_roundtrip(self, value):
        assert units.to_ghz(units.ghz(value)) == pytest.approx(value, rel=1e-12)

    @given(finite_floats, st.floats(min_value=0.1, max_value=10.0))
    def test_cycle_roundtrip(self, lat_ns, freq_ghz):
        cycles = units.ns_to_cycles(lat_ns, freq_ghz)
        assert units.cycles_to_ns(cycles, freq_ghz) == pytest.approx(
            lat_ns, rel=1e-12
        )

    @given(finite_floats, st.floats(min_value=1e6, max_value=1e10))
    def test_seconds_cycles_roundtrip(self, seconds, hz):
        cycles = units.seconds_to_cycles(seconds, hz)
        assert units.cycles_to_seconds(cycles, hz) == pytest.approx(
            seconds, rel=1e-12
        )

    def test_paper_quoted_pairs_exact(self):
        # Latency/cycle pairs the paper quotes (Section I, Table IV).
        assert round(units.ns_to_cycles(180, 2.1)) == 378
        assert round(units.cycles_to_ns(378, 2.1)) == 180


class TestEdgeInputs:
    """NaN propagates; negative magnitudes scale but never crash."""

    def test_nan_propagates(self):
        for fn in (
            units.gb_per_s,
            units.to_gb_per_s,
            units.ns,
            units.to_ns,
            units.ghz,
            units.to_ghz,
            units.ns_to_us,
            units.ns_to_ms,
        ):
            assert math.isnan(fn(float("nan")))

    def test_nan_utilization_propagates(self):
        # NaN fails neither bound check (all comparisons are False).
        assert math.isnan(units.utilization(float("nan"), 10.0))

    def test_negative_values_scale_linearly(self):
        # Conversions are pure scalings: sign passes straight through
        # (validation is the caller's job, e.g. littles_law raises).
        assert units.gb_per_s(-2.0) == -2e9
        assert units.ns(-5.0) == -5e-9
        assert units.ns_to_us(-1500.0) == pytest.approx(-1.5)

    def test_zero_is_exact(self):
        assert units.gb_per_s(0.0) == 0.0
        assert units.to_ns(0.0) == 0.0
        assert units.seconds_to_cycles(0.0, 2.1e9) == 0.0

    def test_infinity_scales_to_infinity(self):
        assert units.to_gb_per_s(float("inf")) == float("inf")
        assert math.isinf(units.ghz(float("inf")))
